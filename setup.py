"""Setup shim: legacy editable installs on environments without `wheel`."""

from setuptools import setup

setup()
