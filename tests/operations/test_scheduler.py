"""Tests for the multi-timescale operator (Section X)."""

import pytest

from repro.filtering import PipelineConfig
from repro.operations import Cadence, MultiTimescaleOperator
from repro.operations.scheduler import DAY
from repro.synthetic import (
    EnterpriseConfig,
    EnterpriseSimulator,
    ImplantSpec,
)


@pytest.fixture(scope="module")
def three_day_run():
    """One 3-day trace fed day by day.

    The fast implant (120 s) is caught daily; the slow one beacons
    every 8 hours — three events per day are below the detector's
    four-event minimum, so only the merged 3-day coarse pass can see
    enough history.
    """
    implants = (
        ImplantSpec("fast", "zeus", n_infected=1, period=120.0),
        ImplantSpec("slow", "zeus", n_infected=1, period=28_800.0),
    )
    config = EnterpriseConfig(
        n_hosts=15,
        n_sites=30,
        duration=3 * DAY,
        session_rate=0.3 / 3600.0,
        implants=implants,
        seed=400,
    )
    records, truth = EnterpriseSimulator(config).generate()
    operator = MultiTimescaleOperator(
        PipelineConfig(local_whitelist_threshold=0.25, ranking_percentile=0.0),
        cadences=(
            Cadence("daily", every_days=1, window_days=1, time_scale=1.0),
            Cadence("3day", every_days=3, window_days=3, time_scale=60.0),
        ),
    )
    for day in range(3):
        start, end = day * DAY, (day + 1) * DAY
        operator.ingest_day(
            [r for r in records if start <= r.timestamp < end]
        )
    return operator, [truth]


class TestMultiTimescaleOperator:
    def test_daily_fires_every_day(self, three_day_run):
        operator, _truths = three_day_run
        daily = [run for run in operator.runs if run[0] == "daily"]
        assert [day for _n, day, _r in daily] == [1, 2, 3]

    def test_coarse_cadence_fires_on_schedule(self, three_day_run):
        operator, _truths = three_day_run
        coarse = [run for run in operator.runs if run[0] == "3day"]
        assert [day for _n, day, _r in coarse] == [3]

    def test_fast_implants_reported(self, three_day_run):
        operator, truths = three_day_run
        reported = set(operator.reported_destinations())
        fast = {
            d for t in truths
            for d, spec in t.implant_by_destination.items()
            if spec.name == "fast"
        }
        assert fast & reported

    def test_slow_implant_caught_by_coarse_pass(self, three_day_run):
        """A 4-hour beacon (6 events/day) needs the merged window."""
        operator, truths = three_day_run
        slow = {
            d for t in truths
            for d, spec in t.implant_by_destination.items()
            if spec.name == "slow"
        }
        coarse_reports = [
            case.destination
            for name, _day, report in operator.runs
            if name == "3day"
            for case in report.ranked_cases
        ]
        assert slow & set(coarse_reports)

    def test_novelty_shared_across_cadences(self, three_day_run):
        operator, _truths = three_day_run
        reported = operator.reported_destinations()
        assert len(reported) == len(set(reported))

    def test_days_fed_counter(self, three_day_run):
        operator, _truths = three_day_run
        assert operator.days_fed == 3

    def test_invalid_cadence(self):
        with pytest.raises(ValueError):
            Cadence("bad", every_days=0, window_days=1, time_scale=1.0)

    def test_requires_a_cadence(self):
        with pytest.raises(ValueError):
            MultiTimescaleOperator(cadences=())


def _toy_day(day, period=600.0):
    from repro.sources.proxy import ProxyLogRecord

    start = day * DAY
    return [
        ProxyLogRecord(
            timestamp=start + i * period,
            source_mac="mac1",
            source_ip="10.0.0.1",
            destination="c2.example.net",
            url="/poll",
        )
        for i in range(int(DAY / period))
    ]


class TestRollingStore:
    """The operator persists each day and evicts beyond its window."""

    def _operator(self, tmp_path, window_days=2):
        from repro.jobs import SummaryStore

        store = SummaryStore(tmp_path / "summaries")
        operator = MultiTimescaleOperator(
            PipelineConfig(ranking_percentile=0.0),
            cadences=(
                Cadence(
                    "daily",
                    every_days=1,
                    window_days=window_days,
                    time_scale=60.0,
                ),
            ),
            store=store,
        )
        return operator, store

    def test_each_day_lands_in_the_store(self, tmp_path):
        operator, store = self._operator(tmp_path)
        operator.ingest_day(_toy_day(0))
        assert store.days() == [0]
        assert store.load_day(0)[0].pair == ("mac1", "c2.example.net")

    def test_old_days_are_evicted(self, tmp_path):
        operator, store = self._operator(tmp_path, window_days=2)
        for day in range(4):
            operator.ingest_day(_toy_day(day))
        assert store.days() == [2, 3]
        assert operator.days_fed == 4

    def test_refed_day_is_idempotent(self, tmp_path):
        operator, store = self._operator(tmp_path)
        operator.ingest_day(_toy_day(0))
        before = store.load_day(0)[0].event_count
        # A crash-replayed day overwrites rather than doubles.
        store.append_day(0, store.load_day(0), replace=True)
        assert store.load_day(0)[0].event_count == before

    def test_in_memory_buffer_stays_bounded(self, tmp_path):
        operator, _store = self._operator(tmp_path, window_days=2)
        for day in range(5):
            operator.ingest_day(_toy_day(day))
        assert len(operator._daily_summaries) == 2
