"""Tests for global and local whitelists."""

import pytest

from repro.filtering.whitelist import GlobalWhitelist, LocalWhitelist


class TestGlobalWhitelist:
    def test_default_contains_popular_domains(self):
        wl = GlobalWhitelist()
        assert "google.com" in wl
        assert "evil-dga-xyz123.com" not in wl

    def test_subdomain_matching(self):
        wl = GlobalWhitelist(["example.com"])
        assert "cdn.example.com" in wl
        assert "a.b.example.com" in wl
        assert "example.org" not in wl

    def test_add_and_discard(self):
        wl = GlobalWhitelist([])
        assert "corp.internal.com" not in wl
        wl.add("corp.internal.com")
        assert "corp.internal.com" in wl
        wl.discard("corp.internal.com")
        assert "corp.internal.com" not in wl

    def test_len(self):
        assert len(GlobalWhitelist(["a.com", "b.com", "www.a.com"])) == 2


class TestLocalWhitelist:
    def build(self, threshold=0.1, min_sources=3):
        wl = LocalWhitelist(threshold, min_sources=min_sources)
        # 20 hosts; "popular.com" contacted by 10, "rare.com" by 1,
        # "pair.com" by 2.
        for i in range(20):
            wl.observe(f"host{i}", "filler.com" if i else "x.com")
        for i in range(10):
            wl.observe(f"host{i}", "popular.com")
        wl.observe("host0", "rare.com")
        wl.observe("host0", "pair.com")
        wl.observe("host1", "pair.com")
        return wl

    def test_population_size(self):
        assert self.build().population_size == 20

    def test_popularity(self):
        wl = self.build()
        assert wl.popularity("popular.com") == pytest.approx(0.5)
        assert wl.popularity("rare.com") == pytest.approx(0.05)
        assert wl.popularity("never-seen.com") == 0.0

    def test_contains_popular(self):
        wl = self.build()
        assert "popular.com" in wl
        assert "rare.com" not in wl

    def test_min_sources_guard(self):
        # pair.com has popularity 0.1 > threshold 0.05 but only 2 sources.
        wl = self.build(threshold=0.05, min_sources=3)
        assert "pair.com" not in wl
        wl2 = self.build(threshold=0.05, min_sources=2)
        assert "pair.com" in wl2

    def test_similar_sources(self):
        wl = self.build()
        assert wl.similar_sources("popular.com") == 10
        assert wl.similar_sources("never-seen.com") == 0

    def test_whitelisted_destinations(self):
        wl = self.build()
        assert "popular.com" in wl.whitelisted_destinations()
        assert "rare.com" not in wl.whitelisted_destinations()

    def test_empty_store_raises_on_contains(self):
        wl = LocalWhitelist()
        with pytest.raises(ValueError):
            "x.com" in wl

    def test_observe_pairs_chaining(self):
        wl = LocalWhitelist().observe_pairs([("h1", "d1"), ("h2", "d1")])
        assert wl.similar_sources("d1") == 2

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            LocalWhitelist(threshold=1.5)

    def test_persistence_roundtrip(self, tmp_path):
        wl = self.build()
        path = tmp_path / "local.json"
        wl.save(path)
        loaded = LocalWhitelist.load(path)
        assert loaded.population_size == wl.population_size
        assert loaded.popularity("popular.com") == wl.popularity("popular.com")
        assert "popular.com" in loaded
        assert "rare.com" not in loaded

    def test_loaded_whitelist_accepts_new_observations(self, tmp_path):
        wl = self.build()
        path = tmp_path / "local.json"
        wl.save(path)
        loaded = LocalWhitelist.load(path)
        loaded.observe("brand-new-host", "popular.com")
        assert loaded.similar_sources("popular.com") == 11


class TestGlobalWhitelistPersistence:
    def test_roundtrip(self, tmp_path):
        wl = GlobalWhitelist(["a.com", "b.org"])
        path = tmp_path / "global.json"
        wl.save(path)
        loaded = GlobalWhitelist.load(path)
        assert "cdn.a.com" in loaded
        assert "c.net" not in loaded
        assert len(loaded) == 2
