"""Tests for the novelty (change-detection) filter."""

from repro.filtering.novelty import NoveltyStore


class TestNoveltyStore:
    def test_fresh_destination_is_novel(self):
        store = NoveltyStore()
        assert store.is_novel("src1", "evil.com")

    def test_reported_destination_not_novel(self):
        store = NoveltyStore()
        store.record("src1", "evil.com")
        assert not store.is_novel("src1", "evil.com")
        # ... even from another source (destination-level suppression).
        assert not store.is_novel("src2", "evil.com")

    def test_check_and_record_first_wins(self):
        store = NoveltyStore()
        assert store.check_and_record("s1", "d1")
        assert not store.check_and_record("s2", "d1")
        assert store.check_and_record("s1", "d2")

    def test_suppressed_cases_logged(self):
        store = NoveltyStore()
        store.check_and_record("s1", "d1")
        store.check_and_record("s2", "d1")
        assert store.suppressed == [("s2", "d1")]

    def test_len_counts_pairs(self):
        store = NoveltyStore()
        store.record("s1", "d1")
        store.record("s2", "d2")
        assert len(store) == 2

    def test_persistence_roundtrip(self, tmp_path):
        store = NoveltyStore()
        store.record("s1", "d1")
        store.record("s2", "d2")
        path = tmp_path / "novelty.json"
        store.save(path)
        loaded = NoveltyStore.load(path)
        assert not loaded.is_novel("s1", "d1")
        assert not loaded.is_novel("anyone", "d2")
        assert loaded.is_novel("s1", "d3")
        assert len(loaded) == 2

    def test_reported_destinations_copy(self):
        store = NoveltyStore()
        store.record("s", "d")
        dests = store.reported_destinations
        dests.add("other")
        assert "other" not in store.reported_destinations
