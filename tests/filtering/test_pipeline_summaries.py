"""Pipeline behaviour on prebuilt summaries and report surfaces."""

import pytest

from repro.core.timeseries import ActivitySummary
from repro.filtering import BaywatchPipeline, PipelineConfig


def beacon_summary(source, destination, period=120.0, count=100, urls=()):
    return ActivitySummary.from_timestamps(
        source, destination, [i * period for i in range(count)], urls=urls
    )


@pytest.fixture
def pipeline():
    return BaywatchPipeline(
        PipelineConfig(local_whitelist_threshold=0.5, ranking_percentile=0.0)
    )


class TestRunSummaries:
    def test_detects_prebuilt_beacon(self, pipeline):
        import numpy as np

        rng = np.random.default_rng(0)
        summaries = [
            beacon_summary("mac1", "xqzwvkpj.com"),
            ActivitySummary.from_timestamps(
                "mac2", "www.dailynews-site.com",
                sorted(rng.uniform(0, 86_400, size=100)),
            ),
        ]
        report = pipeline.run_summaries(summaries)
        detected = {c.destination for c in report.detected_cases}
        assert "xqzwvkpj.com" in detected
        assert "www.dailynews-site.com" not in detected

    def test_reported_destinations_deduped_in_order(self, pipeline):
        summaries = [
            beacon_summary("mac1", "xqzwvkpj.com"),
            beacon_summary("mac2", "xqzwvkpj.com"),
            beacon_summary("mac3", "qqwjzkvx.net", period=300.0),
        ]
        report = pipeline.run_summaries(summaries)
        dests = report.reported_destinations
        assert len(dests) == len(set(dests))
        assert set(dests) <= {"xqzwvkpj.com", "qqwjzkvx.net"}

    def test_same_destination_consolidated(self, pipeline):
        summaries = [
            beacon_summary("mac1", "xqzwvkpj.com", count=50),
            beacon_summary("mac2", "xqzwvkpj.com", count=200),
        ]
        report = pipeline.run_summaries(summaries)
        ranked = [c for c in report.ranked_cases
                  if c.destination == "xqzwvkpj.com"]
        assert len(ranked) == 1
        # The strongest case (more events) represents the destination.
        assert ranked[0].summary.event_count == 200

    def test_token_filter_uses_summary_urls(self, pipeline):
        summaries = [
            beacon_summary(
                "mac1", "updates-provider.com",
                urls=tuple(["/v1/update/check"] * 10),
            ),
        ]
        report = pipeline.run_summaries(summaries)
        assert report.detected_cases  # detection fires...
        assert report.ranked_cases == []  # ...but tokens suppress it

    def test_empty_summaries(self, pipeline):
        report = pipeline.run_summaries([])
        assert report.ranked_cases == []
        assert report.population_size == 0


class TestOperationsDefaults:
    def test_default_cadences_shape(self):
        from repro.operations import DEFAULT_CADENCES

        names = [c.name for c in DEFAULT_CADENCES]
        assert names == ["daily", "weekly", "monthly"]
        scales = [c.time_scale for c in DEFAULT_CADENCES]
        assert scales == sorted(scales), "coarser cadence, coarser scale"
        windows = [c.window_days for c in DEFAULT_CADENCES]
        assert windows == sorted(windows)
