"""Tests for the weighted ranking filter."""

import pytest

from repro.core.detector import CandidatePeriod, DetectionResult
from repro.core.timeseries import ActivitySummary
from repro.filtering.case import BeaconingCase
from repro.filtering.ranking import (
    RankingWeights,
    lm_anomaly,
    percentile_cutoff,
    periodicity_strength,
    rank_cases,
    rank_score,
    rarity,
    regularity,
)


def make_case(
    *,
    period=300.0,
    acf=0.8,
    lm_score=-1.0,
    popularity=0.001,
    n_events=100,
    jitter=0.0,
    duration=86_400.0,
):
    timestamps = [i * period + (jitter * (i % 3 - 1)) for i in range(n_events)]
    summary = ActivitySummary.from_timestamps("src", "dst.com", timestamps)
    candidate = CandidatePeriod(
        period=period, frequency=1 / period, power=100.0, acf_score=acf, p_value=0.5
    )
    detection = DetectionResult(
        periodic=True,
        candidates=(candidate,),
        power_threshold=10.0,
        n_events=n_events,
        duration=duration,
        time_scale=1.0,
    )
    return BeaconingCase(
        summary=summary,
        detection=detection,
        popularity=popularity,
        similar_sources=1,
        lm_score=lm_score,
    )


class TestIndicators:
    def test_periodicity_strength_bounds(self):
        assert 0.0 <= periodicity_strength(make_case()) <= 1.0

    def test_clockwork_beats_jittery(self):
        assert periodicity_strength(make_case(jitter=0.0)) >= periodicity_strength(
            make_case(jitter=60.0)
        )

    def test_lm_anomaly_dga_beats_benign(self):
        weights = RankingWeights()
        dga = lm_anomaly(make_case(lm_score=-3.0), weights)
        benign = lm_anomaly(make_case(lm_score=-1.0), weights)
        assert dga > benign
        assert benign == 0.0

    def test_lm_extreme_bonus_applies(self):
        weights = RankingWeights(lm_extreme_bonus=0.5, lm_extreme_threshold=-2.2)
        below = lm_anomaly(make_case(lm_score=-2.3), weights)
        above = lm_anomaly(make_case(lm_score=-2.1), weights)
        assert below > above + 0.4

    def test_rarity_decays_with_popularity(self):
        assert rarity(make_case(popularity=0.0)) == 1.0
        assert rarity(make_case(popularity=0.5)) < 0.1

    def test_regularity_grows_with_cycles(self):
        few = regularity(make_case(period=40_000.0, duration=86_400.0))
        many = regularity(make_case(period=60.0, duration=86_400.0))
        assert many > few

    def test_no_detection_zero_strength(self):
        case = make_case()
        empty = BeaconingCase(
            summary=case.summary,
            detection=DetectionResult(
                periodic=False, candidates=(), power_threshold=1.0,
                n_events=4, duration=100.0, time_scale=1.0,
            ),
        )
        assert periodicity_strength(empty) == 0.0
        assert regularity(empty) == 0.0


class TestRankScore:
    def test_malicious_profile_outranks_benign_profile(self):
        malicious = make_case(lm_score=-3.0, popularity=0.0, acf=0.9)
        benign = make_case(lm_score=-1.0, popularity=0.2, acf=0.5)
        assert rank_score(malicious) > rank_score(benign)

    def test_weights_zeroing(self):
        case = make_case(lm_score=-3.0)
        no_lm = RankingWeights(lm=0.0, lm_extreme_bonus=0.0)
        assert rank_score(case, no_lm) < rank_score(case)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            RankingWeights(periodicity=-1.0)


class TestRankCases:
    def test_ordering_and_threshold(self):
        cases = [
            make_case(lm_score=-3.0, acf=0.9),  # clearly malicious profile
            make_case(lm_score=-1.0, acf=0.3, popularity=0.1),
            make_case(lm_score=-1.1, acf=0.4, popularity=0.05),
            make_case(lm_score=-2.8, acf=0.8),
        ]
        ranked = rank_cases(cases, percentile=0.5)
        assert len(ranked) <= len(cases)
        scores = [case.rank_score for case in ranked]
        assert scores == sorted(scores, reverse=True)
        assert ranked[0].lm_score in (-3.0, -2.8)

    def test_empty_input(self):
        assert rank_cases([]) == []

    def test_percentile_zero_keeps_all(self):
        cases = [make_case(), make_case(lm_score=-2.5)]
        assert len(rank_cases(cases, percentile=0.0)) == 2

    def test_single_case_kept(self):
        assert len(rank_cases([make_case()], percentile=0.99)) == 1

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            rank_cases([make_case()], percentile=1.5)


class TestPercentileCutoff:
    def test_plain_distribution(self):
        assert percentile_cutoff([0.0, 1.0], 0.5) == pytest.approx(0.5)

    def test_single_score_is_vacuous(self):
        assert percentile_cutoff([0.7], 0.9) == float("-inf")

    def test_nan_score_rejected(self):
        """One NaN used to poison np.quantile into a NaN threshold,
        against which every ``score >= cutoff`` comparison is False —
        the report came back silently empty instead of failing."""
        with pytest.raises(ValueError, match="NaN"):
            percentile_cutoff([0.5, float("nan"), 0.9], 0.9)

    def test_nan_rejected_even_with_one_score(self):
        with pytest.raises(ValueError, match="NaN"):
            percentile_cutoff([float("nan")], 0.9)
