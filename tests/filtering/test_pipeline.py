"""Integration tests for the 8-step pipeline."""

import pytest

from repro.filtering import (
    BaywatchPipeline,
    GlobalWhitelist,
    NoveltyStore,
    PipelineConfig,
)
from repro.synthetic import (
    EnterpriseConfig,
    EnterpriseSimulator,
    ImplantSpec,
)


@pytest.fixture(scope="module")
def enterprise():
    config = EnterpriseConfig(
        n_hosts=25,
        n_sites=50,
        duration=86_400.0 / 4,
        implants=(
            ImplantSpec("zbot", "zeus", n_infected=2, period=90.0),
            ImplantSpec("tdss", "tdss", n_infected=1),
        ),
        seed=21,
    )
    return EnterpriseSimulator(config).generate()


@pytest.fixture(scope="module")
def report(enterprise):
    records, _truth = enterprise
    pipeline = BaywatchPipeline(
        PipelineConfig(local_whitelist_threshold=0.15, ranking_percentile=0.5)
    )
    return pipeline.run_records(records)


class TestPipeline:
    def test_finds_all_malicious_destinations(self, enterprise, report):
        _records, truth = enterprise
        detected = {case.destination for case in report.detected_cases}
        assert truth.malicious_destinations <= detected

    def test_malicious_ranked_on_top(self, enterprise, report):
        _records, truth = enterprise
        top = report.reported_destinations[: len(truth.malicious_destinations)]
        assert set(top) == truth.malicious_destinations

    def test_funnel_monotonically_decreases(self, report):
        for _name, pairs_in, pairs_out in report.funnel.steps:
            assert pairs_out <= pairs_in

    def test_funnel_has_all_eight_steps(self, report):
        names = " ".join(name for name, _i, _o in report.funnel.steps)
        for marker in ("1 ", "2 ", "3-5", "6 ", "7 ", "8 "):
            assert marker in names

    def test_popular_services_whitelisted(self, enterprise, report):
        """High-adoption services (os updates, AV) never reach detection."""
        _records, truth = enterprise
        detected = {case.destination for case in report.detected_cases}
        assert "updates.osvendor.com" not in detected
        assert "sig.avshield.com" not in detected

    def test_funnel_text_renders(self, report):
        text = report.funnel.as_text()
        assert "global whitelist" in text

    def test_population_counted(self, enterprise, report):
        assert report.population_size == 25


class TestPipelineComponentsInjection:
    def test_global_whitelist_suppresses(self, enterprise):
        records, truth = enterprise
        malicious = sorted(truth.malicious_destinations)
        whitelist = GlobalWhitelist(list(malicious))
        pipeline = BaywatchPipeline(
            PipelineConfig(local_whitelist_threshold=0.15),
            global_whitelist=whitelist,
        )
        report = pipeline.run_records(records)
        detected = {case.destination for case in report.detected_cases}
        assert not (set(malicious) & detected)

    def test_novelty_suppresses_second_run(self, enterprise):
        records, truth = enterprise
        novelty = NoveltyStore()
        config = PipelineConfig(
            local_whitelist_threshold=0.15, ranking_percentile=0.0
        )
        first = BaywatchPipeline(config, novelty=novelty).run_records(records)
        second = BaywatchPipeline(config, novelty=novelty).run_records(records)
        first_dests = {case.destination for case in first.ranked_cases}
        second_dests = {case.destination for case in second.ranked_cases}
        assert truth.malicious_destinations <= first_dests
        assert not (truth.malicious_destinations & second_dests)

    def test_min_events_prefilter(self, enterprise):
        records, _truth = enterprise
        config = PipelineConfig(
            local_whitelist_threshold=0.15, min_events=10_000
        )
        report = BaywatchPipeline(config).run_records(records)
        assert report.detected_cases == []
