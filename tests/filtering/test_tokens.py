"""Tests for the URL token filter."""

from repro.filtering.tokens import BENIGN_TOKENS, TokenFilter, tokenize_url


class TestTokenizeUrl:
    def test_path_tokens(self):
        assert tokenize_url("/v2/check?build=17134") == ("v2", "check", "build", "17134")

    def test_case_folding(self):
        assert "update" in tokenize_url("/UPDATE/Check")

    def test_empty(self):
        assert tokenize_url("/") == ()


class TestTokenFilter:
    def test_update_urls_are_benign(self):
        f = TokenFilter()
        assert f.url_is_benign("/v2/update/check?build=10")
        assert f.url_is_benign("/signatures/latest/version.txt")
        assert f.url_is_benign("/ews/poll")

    def test_gate_urls_are_not_benign(self):
        f = TokenFilter()
        assert not f.url_is_benign("/gate.php")
        assert not f.url_is_benign("/a8f3bc0d")
        assert not f.url_is_benign("/images/logo.png")

    def test_case_verdict_by_fraction(self):
        f = TokenFilter(min_benign_fraction=0.5)
        assert f.is_likely_benign(["/update", "/update", "/other"])
        assert not f.is_likely_benign(["/update", "/x", "/y", "/z"])

    def test_no_urls_passes_through(self):
        assert not TokenFilter().is_likely_benign([])

    def test_custom_tokens(self):
        f = TokenFilter(benign_tokens={"telemetry"})
        assert f.url_is_benign("/telemetry/upload")
        assert not f.url_is_benign("/update/check")

    def test_default_tokens_exported(self):
        assert "heartbeat" in BENIGN_TOKENS
        assert "gate" not in BENIGN_TOKENS
