"""Tests for the BeaconingCase record."""

import pytest

from repro.core.detector import CandidatePeriod, DetectionResult
from repro.core.timeseries import ActivitySummary
from repro.filtering.case import BeaconingCase


def make_case(periods=(300.0, 60.0)):
    summary = ActivitySummary.from_timestamps(
        "mac9", "dst.example.com", [i * 60.0 for i in range(10)]
    )
    candidates = tuple(
        CandidatePeriod(p, 1 / p, 10.0, 0.9 - i * 0.1, 0.5)
        for i, p in enumerate(periods)
    )
    detection = DetectionResult(
        periodic=bool(candidates),
        candidates=candidates,
        power_threshold=1.0,
        n_events=10,
        duration=540.0,
        time_scale=1.0,
    )
    return BeaconingCase(summary=summary, detection=detection)


class TestBeaconingCase:
    def test_endpoint_properties(self):
        case = make_case()
        assert case.source == "mac9"
        assert case.destination == "dst.example.com"

    def test_dominant_vs_smallest_period(self):
        case = make_case(periods=(300.0, 60.0))
        assert case.dominant_period == 300.0
        assert case.smallest_period == 60.0
        assert case.periods == (300.0, 60.0)

    def test_no_periods(self):
        case = make_case(periods=())
        assert case.dominant_period is None
        assert case.smallest_period is None

    def test_with_rank_score_is_a_copy(self):
        case = make_case()
        scored = case.with_rank_score(3.5)
        assert scored.rank_score == 3.5
        assert case.rank_score == 0.0
        assert scored.summary is case.summary
