"""Tests for the benchmark reporting helpers."""

import pytest

from benchmarks.common import (
    ExperimentReport,
    ascii_series,
    check,
    relative_error,
)


class TestCheck:
    def test_values(self):
        assert check(True) == "yes"
        assert check(False) == "NO"


class TestRelativeError:
    def test_computation(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(90.0, 100.0) == pytest.approx(0.1)


class TestAsciiSeries:
    def test_monotone_decay_shape(self):
        strip = ascii_series([10, 8, 6, 4, 2, 0])
        assert strip[0] == "@"
        assert strip[-1] == " "
        assert len(strip) == 6

    def test_constant_series(self):
        strip = ascii_series([5, 5, 5])
        assert len(set(strip)) == 1

    def test_nan_rendering(self):
        strip = ascii_series([1.0, float("nan"), 0.0])
        assert strip[1] == "?"

    def test_all_nan(self):
        assert ascii_series([float("nan")] * 3) == "???"

    def test_width(self):
        strip = ascii_series([0, 1], width=3)
        assert len(strip) == 6


class TestExperimentReport:
    def test_table_and_persistence(self, tmp_path, monkeypatch, capsys):
        import benchmarks.common as common

        monkeypatch.setattr(common, "RESULTS_DIR", tmp_path)
        report = ExperimentReport("unit-test", "A test experiment")
        report.table(("col", "value"), [("a", 1), ("bb", 22)])
        report.paper_vs_measured([("claim", "value", check(True))])
        text = report.finish()
        assert "unit-test: A test experiment" in text
        assert "bb" in text
        assert (tmp_path / "unit-test.txt").read_text() == text
        assert "unit-test" in capsys.readouterr().out

    def test_finish_emits_json_sharing_bench_envelope(
        self, tmp_path, monkeypatch, capsys
    ):
        import json

        import benchmarks.common as common

        monkeypatch.setattr(common, "RESULTS_DIR", tmp_path)
        report = ExperimentReport("unit-json", "JSON emission")
        report.metric("per_pair_seconds", 0.0025, "s")
        report.metric("pairs_per_second", 400.0, "1/s", scope="batch")
        text = report.finish()
        payload = json.loads((tmp_path / "unit-json.json").read_text())
        for key in ("schema", "kind", "suite", "created", "fingerprint",
                    "results"):
            assert key in payload
        assert payload["kind"] == "experiment"
        assert payload["suite"] == "unit-json"
        assert payload["fingerprint"]["python"]
        assert payload["results"][0] == {
            "name": "per_pair_seconds", "value": 0.0025, "unit": "s",
        }
        assert payload["results"][1]["scope"] == "batch"
        assert payload["text"] == text
        capsys.readouterr()
