"""Interrupt→resume discipline for per-shard provenance checkpoints.

A sharded run writes ``provenance-NNNNN.jsonl`` next to each shard
checkpoint (before the shard file, which is the commit point), and a
resumed run reloads those instead of re-deriving verdicts.  These tests
pin the crash-tolerance contract: torn trailing lines are skipped,
resumed shards never duplicate verdict records, and the merged store of
an interrupted-then-resumed run is byte-identical to an uninterrupted
one.
"""

from pathlib import Path

import pytest

from repro.filtering import PipelineConfig
from repro.jobs import BaywatchRunner, IncompleteRunError
from repro.jobs.checkpoint import CheckpointStore
from repro.lm.domains import default_scorer
from repro.obs import (
    PROVENANCE_FILE,
    ProvenancePolicy,
    ProvenanceSchemaError,
    read_provenance,
)
from repro.obs.provenance import records_from_jsonl
from repro.synthetic import EnterpriseConfig, EnterpriseSimulator, ImplantSpec

CONFIG = dict(
    local_whitelist_threshold=0.2,
    ranking_percentile=0.5,
    provenance=ProvenancePolicy(sample_early_drops=1.0),
)


@pytest.fixture(scope="module")
def records():
    config = EnterpriseConfig(
        n_hosts=10,
        n_sites=20,
        duration=86_400.0 / 8,
        implants=(ImplantSpec("zbot", "zeus", n_infected=1, period=120.0),),
        seed=7,
    )
    trace, _truth = EnterpriseSimulator(config).generate()
    return trace


@pytest.fixture(scope="module")
def scorer():
    return default_scorer()


@pytest.fixture(scope="module")
def uninterrupted(records, scorer):
    return BaywatchRunner(
        PipelineConfig(**CONFIG), scorer=scorer
    ).run_sharded(records, shard_size=4)


def signature(prov_records):
    return [
        (r.source, r.destination, r.stage, r.kept, r.reason, r.near_miss,
         tuple(sorted(r.values.items(), key=lambda kv: kv[0])))
        for r in prov_records
    ]


def interrupt(records, scorer, checkpoint):
    with pytest.raises(IncompleteRunError):
        BaywatchRunner(PipelineConfig(**CONFIG), scorer=scorer).run_sharded(
            records, shard_size=4, checkpoint_dir=str(checkpoint),
            max_shards=2,
        )


def resume(records, scorer, checkpoint):
    return BaywatchRunner(
        PipelineConfig(**CONFIG), scorer=scorer
    ).run_sharded(
        records, shard_size=4, checkpoint_dir=str(checkpoint), resume=True
    )


def test_resume_tolerates_torn_trailing_provenance_line(
    records, scorer, uninterrupted, tmp_path
):
    checkpoint = tmp_path / "ckpt"
    interrupt(records, scorer, checkpoint)
    shards = sorted(checkpoint.glob("provenance-*.jsonl"))
    assert shards, "interrupted run left no provenance shards"
    # Simulate a writer killed mid-append: a torn, undecodable tail.
    with shards[0].open("a", encoding="utf-8") as handle:
        handle.write('{"v": 1, "source": "tru')
    report = resume(records, scorer, checkpoint)
    assert signature(report.provenance) == signature(uninterrupted.provenance)


def test_resumed_shards_do_not_duplicate_verdicts(
    records, scorer, tmp_path
):
    checkpoint = tmp_path / "ckpt"
    interrupt(records, scorer, checkpoint)
    report = resume(records, scorer, checkpoint)
    seen = set()
    for record in report.provenance:
        key = (record.source, record.destination, record.stage)
        assert key not in seen, f"duplicate verdict record {key}"
        seen.add(key)


def test_merged_store_matches_uninterrupted_run(
    records, scorer, uninterrupted, tmp_path
):
    checkpoint = tmp_path / "ckpt"
    interrupt(records, scorer, checkpoint)
    report = resume(records, scorer, checkpoint)
    assert signature(report.provenance) == signature(uninterrupted.provenance)
    # The merged on-disk store round-trips to the same verdicts.
    merged = read_provenance(checkpoint)
    assert signature(merged) == signature(uninterrupted.provenance)
    # Without the merged file (a run interrupted before the final
    # merge), the per-shard union still yields every detection-phase
    # verdict — the funnel-stage records only exist in the merged store.
    (checkpoint / PROVENANCE_FILE).unlink()
    union = read_provenance(checkpoint)
    detection_only = [
        r for r in uninterrupted.provenance
        if r.stage in ("spectral", "pruning", "acf")
    ]
    assert signature(union) == signature(detection_only)


def test_missing_provenance_shard_is_recomputed_on_resume(
    records, scorer, uninterrupted, tmp_path
):
    # An older checkpoint (or a crash between the two writes) can leave
    # a shard file without its provenance sidecar; resume re-derives the
    # verdicts from the checkpointed detections instead of dropping them.
    checkpoint = tmp_path / "ckpt"
    interrupt(records, scorer, checkpoint)
    shards = sorted(checkpoint.glob("provenance-*.jsonl"))
    assert shards
    shards[0].unlink()
    report = resume(records, scorer, checkpoint)
    assert signature(report.provenance) == signature(uninterrupted.provenance)


def test_newer_schema_provenance_shard_fails_with_clear_error(tmp_path):
    path = tmp_path / "provenance.jsonl"
    path.write_text(
        '{"v": 99, "source": "h", "destination": "d", "stage": "acf", '
        '"kept": true}\n',
        encoding="utf-8",
    )
    with pytest.raises(ProvenanceSchemaError, match="v99"):
        read_provenance(path)


def test_corrupt_provenance_record_fails_with_clear_error():
    # JSON-decodable but not a verdict record: that is corruption, not a
    # torn line, and must fail loudly rather than silently dropping.
    with pytest.raises(ProvenanceSchemaError):
        records_from_jsonl('{"v": 1, "unexpected": true}\n')


def test_clear_removes_provenance_artifacts(records, scorer, tmp_path):
    checkpoint = tmp_path / "ckpt"
    interrupt(records, scorer, checkpoint)
    store = CheckpointStore(str(checkpoint))
    assert sorted(checkpoint.glob("provenance-*.jsonl"))
    store.clear()
    assert not sorted(checkpoint.glob("provenance-*.jsonl"))
    assert not (checkpoint / PROVENANCE_FILE).exists()
