"""Tests for the persistent summary store."""

import pytest

from repro.core.timeseries import ActivitySummary
from repro.jobs import SummaryStore

DAY = 86_400.0


def day_summary(day, pair=("mac1", "evil.com"), period=300.0):
    start = day * DAY
    return ActivitySummary.from_timestamps(
        pair[0], pair[1],
        [start + i * period for i in range(20)],
    )


@pytest.fixture
def store(tmp_path):
    return SummaryStore(tmp_path / "summaries")


class TestSummaryStore:
    def test_append_and_load_day(self, store):
        assert store.append_day(0, [day_summary(0)]) == 1
        loaded = store.load_day(0)
        assert len(loaded) == 1
        assert loaded[0].pair == ("mac1", "evil.com")

    def test_days_listing(self, store):
        store.append_day(2, [day_summary(2)])
        store.append_day(0, [day_summary(0)])
        assert store.days() == [0, 2]

    def test_missing_day_is_empty(self, store):
        assert store.load_day(7) == []

    def test_window_merges_per_pair(self, store):
        for day in range(3):
            store.append_day(day, [day_summary(day)])
        window = store.load_window(end_day=2, window_days=3)
        assert len(window) == 1
        assert window[0].event_count == 60

    def test_window_clips_to_available_days(self, store):
        store.append_day(0, [day_summary(0)])
        store.append_day(1, [day_summary(1)])
        window = store.load_window(end_day=1, window_days=10)
        assert window[0].event_count == 40

    def test_window_excludes_out_of_range_days(self, store):
        for day in range(5):
            store.append_day(day, [day_summary(day)])
        window = store.load_window(end_day=4, window_days=2)
        assert window[0].event_count == 40  # days 3 and 4 only

    def test_window_rescales(self, store):
        store.append_day(0, [day_summary(0)])
        window = store.load_window(end_day=0, window_days=1, time_scale=60.0)
        assert window[0].time_scale == 60.0

    def test_multiple_pairs_sorted(self, store):
        store.append_day(0, [
            day_summary(0, pair=("mac2", "b.com")),
            day_summary(0, pair=("mac1", "a.com")),
        ])
        window = store.load_window(end_day=0, window_days=1)
        assert [s.pair for s in window] == [("mac1", "a.com"), ("mac2", "b.com")]

    def test_default_end_day_is_latest(self, store):
        store.append_day(0, [day_summary(0)])
        store.append_day(3, [day_summary(3)])
        window = store.load_window(window_days=1)
        assert window[0].first_timestamp >= 3 * DAY

    def test_clear(self, store):
        store.append_day(0, [day_summary(0)])
        store.clear()
        assert store.load_day(0) == []

    def test_empty_store_window(self, store):
        assert store.load_window() == []

    def test_detection_from_stored_window(self, store):
        """End to end: raw logs extracted once, detection from the store."""
        from repro.core import DetectorConfig, PeriodicityDetector

        for day in range(3):
            store.append_day(day, [day_summary(day)])
        window = store.load_window(window_days=3, time_scale=60.0)
        detector = PeriodicityDetector(DetectorConfig(seed=0))
        result = detector.detect_summary(window[0])
        assert result.periodic
        assert result.dominant_period == pytest.approx(300.0, rel=0.05)

    def test_has_day(self, store):
        assert not store.has_day(0)
        store.append_day(0, [day_summary(0)])
        assert store.has_day(0)
        assert not store.has_day(1)

    def test_append_replace_is_idempotent(self, store):
        """A resumed ingestion re-writing a day must not double counts."""
        store.append_day(0, [day_summary(0)])
        store.append_day(0, [day_summary(0)], replace=True)
        loaded = store.load_day(0)
        assert len(loaded) == 1
        assert loaded[0].event_count == 20

    def test_append_without_replace_accumulates(self, store):
        store.append_day(0, [day_summary(0, pair=("mac1", "a.com"))])
        store.append_day(0, [day_summary(0, pair=("mac2", "b.com"))])
        assert len(store.load_day(0)) == 2

    def test_negative_day_rejected(self, store):
        with pytest.raises(ValueError):
            store.append_day(-1, [day_summary(0)])
