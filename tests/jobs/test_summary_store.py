"""Tests for the persistent summary store."""

import pytest

from repro.core.timeseries import ActivitySummary
from repro.jobs import SummaryStore

DAY = 86_400.0


def day_summary(day, pair=("mac1", "evil.com"), period=300.0):
    start = day * DAY
    return ActivitySummary.from_timestamps(
        pair[0], pair[1],
        [start + i * period for i in range(20)],
    )


@pytest.fixture
def store(tmp_path):
    return SummaryStore(tmp_path / "summaries")


class TestSummaryStore:
    def test_append_and_load_day(self, store):
        assert store.append_day(0, [day_summary(0)]) == 1
        loaded = store.load_day(0)
        assert len(loaded) == 1
        assert loaded[0].pair == ("mac1", "evil.com")

    def test_days_listing(self, store):
        store.append_day(2, [day_summary(2)])
        store.append_day(0, [day_summary(0)])
        assert store.days() == [0, 2]

    def test_missing_day_is_empty(self, store):
        assert store.load_day(7) == []

    def test_window_merges_per_pair(self, store):
        for day in range(3):
            store.append_day(day, [day_summary(day)])
        window = store.load_window(end_day=2, window_days=3)
        assert len(window) == 1
        assert window[0].event_count == 60

    def test_window_clips_to_available_days(self, store):
        store.append_day(0, [day_summary(0)])
        store.append_day(1, [day_summary(1)])
        window = store.load_window(end_day=1, window_days=10)
        assert window[0].event_count == 40

    def test_window_excludes_out_of_range_days(self, store):
        for day in range(5):
            store.append_day(day, [day_summary(day)])
        window = store.load_window(end_day=4, window_days=2)
        assert window[0].event_count == 40  # days 3 and 4 only

    def test_window_rescales(self, store):
        store.append_day(0, [day_summary(0)])
        window = store.load_window(end_day=0, window_days=1, time_scale=60.0)
        assert window[0].time_scale == 60.0

    def test_multiple_pairs_sorted(self, store):
        store.append_day(0, [
            day_summary(0, pair=("mac2", "b.com")),
            day_summary(0, pair=("mac1", "a.com")),
        ])
        window = store.load_window(end_day=0, window_days=1)
        assert [s.pair for s in window] == [("mac1", "a.com"), ("mac2", "b.com")]

    def test_default_end_day_is_latest(self, store):
        store.append_day(0, [day_summary(0)])
        store.append_day(3, [day_summary(3)])
        window = store.load_window(window_days=1)
        assert window[0].first_timestamp >= 3 * DAY

    def test_clear(self, store):
        store.append_day(0, [day_summary(0)])
        store.clear()
        assert store.load_day(0) == []

    def test_evict_before_drops_old_days(self, store):
        for day in range(4):
            store.append_day(day, [day_summary(day)])
        assert store.evict_before(2) == 2
        assert store.days() == [2, 3]
        assert store.load_day(0) == []
        assert store.load_day(1) == []
        # Surviving days are intact.
        assert store.load_day(2)[0].event_count == 20

    def test_evict_before_is_idempotent(self, store):
        store.append_day(0, [day_summary(0)])
        store.append_day(1, [day_summary(1)])
        assert store.evict_before(1) == 1
        assert store.evict_before(1) == 0
        assert store.days() == [1]

    def test_fused_window_matches_composed_rescale(self, store):
        from repro.core.timeseries import merge, rescale

        for day in range(3):
            store.append_day(day, [
                day_summary(day),
                day_summary(day, pair=("mac2", "b.com"), period=450.0),
            ])
        fused = store.load_window(end_day=2, window_days=3, time_scale=600.0)
        composed = {}
        for day in range(3):
            for summary in store.load_day(day):
                composed.setdefault(summary.pair, []).append(summary)
        expected = sorted(
            (
                merge([
                    rescale(s, 600.0)
                    for s in sorted(group, key=lambda s: s.first_timestamp)
                ])
                for group in composed.values()
            ),
            key=lambda s: s.pair,
        )
        assert fused == expected

    def test_empty_store_window(self, store):
        assert store.load_window() == []

    def test_detection_from_stored_window(self, store):
        """End to end: raw logs extracted once, detection from the store."""
        from repro.core import DetectorConfig, PeriodicityDetector

        for day in range(3):
            store.append_day(day, [day_summary(day)])
        window = store.load_window(window_days=3, time_scale=60.0)
        detector = PeriodicityDetector(DetectorConfig(seed=0))
        result = detector.detect_summary(window[0])
        assert result.periodic
        assert result.dominant_period == pytest.approx(300.0, rel=0.05)

    def test_has_day(self, store):
        assert not store.has_day(0)
        store.append_day(0, [day_summary(0)])
        assert store.has_day(0)
        assert not store.has_day(1)

    def test_append_replace_is_idempotent(self, store):
        """A resumed ingestion re-writing a day must not double counts."""
        store.append_day(0, [day_summary(0)])
        store.append_day(0, [day_summary(0)], replace=True)
        loaded = store.load_day(0)
        assert len(loaded) == 1
        assert loaded[0].event_count == 20

    def test_append_without_replace_accumulates(self, store):
        store.append_day(0, [day_summary(0, pair=("mac1", "a.com"))])
        store.append_day(0, [day_summary(0, pair=("mac2", "b.com"))])
        assert len(store.load_day(0)) == 2

    def test_negative_day_rejected(self, store):
        with pytest.raises(ValueError):
            store.append_day(-1, [day_summary(0)])

    def test_has_day_does_not_scan_the_day_listing(self, store, monkeypatch):
        """The probe must stay O(1): no enumeration of every day dir."""
        store.append_day(0, [day_summary(0)])
        monkeypatch.setattr(
            store, "days",
            lambda: pytest.fail("has_day must not enumerate days"),
        )
        assert store.has_day(0)
        assert not store.has_day(1)


class TestPackedCodec:
    def summaries(self):
        return [
            day_summary(0),
            day_summary(0, pair=("mac2", "ünïcødé.example")),
            # Single-event summary: empty interval tuple.
            ActivitySummary("m", "d", 1.0, 123.456, (), ("http://d/x?y=1",)),
        ]

    def test_pack_unpack_roundtrip(self):
        from repro.jobs.summary_store import pack_summaries, unpack_summaries

        originals = self.summaries()
        restored = unpack_summaries(pack_summaries(originals))
        assert restored == originals
        # Same concrete field types as a normally constructed summary.
        assert all(type(v) is float for v in restored[0].intervals)
        assert isinstance(restored[0].urls, tuple)

    def test_pack_empty_batch(self):
        from repro.jobs.summary_store import pack_summaries, unpack_summaries

        assert unpack_summaries(pack_summaries([])) == []

    def test_unknown_pack_version_rejected(self):
        import struct

        from repro.jobs.summary_store import unpack_summaries

        with pytest.raises(ValueError, match="version"):
            unpack_summaries(struct.pack("<HQQ", 99, 0, 0))

    def test_packed_store_reads_legacy_pickle_day(self, tmp_path):
        """Stores written before the packed codec must load unchanged."""
        legacy = SummaryStore(tmp_path / "s", codec="pickle")
        legacy.append_day(0, [day_summary(0)])
        assert SummaryStore(tmp_path / "s").load_day(0) == [day_summary(0)]

    def test_day_appended_under_both_codecs_loads_fully(self, tmp_path):
        SummaryStore(tmp_path / "s", codec="pickle").append_day(
            0, [day_summary(0, pair=("mac1", "a.com"))]
        )
        SummaryStore(tmp_path / "s").append_day(
            0, [day_summary(0, pair=("mac2", "b.com"))]
        )
        loaded = SummaryStore(tmp_path / "s").load_day(0)
        assert sorted(s.pair for s in loaded) == [
            ("mac1", "a.com"), ("mac2", "b.com"),
        ]

    def test_packed_and_pickle_days_load_identically(self, tmp_path):
        summaries = self.summaries()
        packed = SummaryStore(tmp_path / "p")
        pickled = SummaryStore(tmp_path / "l", codec="pickle")
        packed.append_day(0, summaries)
        pickled.append_day(0, summaries)
        key = lambda s: s.pair  # noqa: E731
        assert sorted(packed.load_day(0), key=key) == sorted(
            pickled.load_day(0), key=key
        )

    def test_invalid_codec_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="codec"):
            SummaryStore(tmp_path / "s", codec="msgpack")


class TestResumedExtractionIdempotency:
    """Interrupt mid-``append_day``, resume with ``replace=True``.

    Whichever ingestion plane produced the summaries — the per-record
    object path or the columnar fold — a resumed extraction must not
    double interval counts: the partial day left by the interrupt is
    cleared before the full day lands.
    """

    @staticmethod
    def make_records(n=240):
        from repro.sources.proxy import ProxyLogRecord

        return [
            ProxyLogRecord(
                timestamp=float(30 * i),
                source_mac=f"aa:bb:cc:00:00:{i % 3:02x}",
                source_ip=f"10.0.0.{i % 3}",
                destination=f"site{i % 5}.example.com",
                url=f"http://site{i % 5}.example.com/p?q={i}",
                status=200,
                bytes_sent=100,
            )
            for i in range(n)
        ]

    @staticmethod
    def summarize(records, plane):
        if plane == "object":
            from repro.sources.proxy import records_to_summaries

            return records_to_summaries(records)
        from repro.sources.columnar import (
            records_to_chunks,
            summaries_from_chunks,
        )

        return summaries_from_chunks(records_to_chunks(records, chunk_size=64))

    @pytest.mark.parametrize("plane", ["object", "columnar"])
    def test_resume_with_replace_does_not_double_counts(self, store, plane):
        records = self.make_records()
        summaries = self.summarize(records, plane)
        # First attempt dies mid-append: only a prefix of the day's
        # summaries made it to disk before the interrupt.
        store.append_day(0, summaries[: len(summaries) // 2])
        assert store.has_day(0)
        # Resume re-extracts the same day and replaces it.
        written = store.append_day(0, summaries, replace=True)
        assert written == len(summaries)
        loaded = store.load_day(0)
        assert sorted(loaded, key=lambda s: s.pair) == sorted(
            summaries, key=lambda s: s.pair
        )
        total_events = sum(s.event_count for s in loaded)
        assert total_events == len(records)

    @pytest.mark.parametrize("plane", ["object", "columnar"])
    def test_blind_reappend_would_double_counts(self, store, plane):
        # The hazard replace=True exists to prevent: re-appending an
        # already-ingested day doubles every pair's history.
        summaries = self.summarize(self.make_records(), plane)
        store.append_day(0, summaries)
        store.append_day(0, summaries)
        merged = store.load_window(end_day=0, window_days=1)
        doubled = sum(s.event_count for s in merged)
        assert doubled > sum(s.event_count for s in summaries)

    def test_object_and_columnar_days_are_interchangeable(self, tmp_path):
        records = self.make_records()
        a = SummaryStore(tmp_path / "a")
        b = SummaryStore(tmp_path / "b")
        a.append_day(0, self.summarize(records, "object"))
        b.append_day(0, self.summarize(records, "columnar"))
        key = lambda s: s.pair  # noqa: E731
        assert sorted(a.load_day(0), key=key) == sorted(
            b.load_day(0), key=key
        )
