"""Checkpointed sharded execution: serialization, resume, quarantine."""

import json

import pytest

from repro.filtering import PipelineConfig
from repro.jobs import (
    BaywatchRunner,
    BeaconingDetectionJob,
    CheckpointMismatch,
    CheckpointStore,
    IncompleteRunError,
)
from repro.jobs.checkpoint import (
    case_from_dict,
    case_to_dict,
    quarantine_from_dict,
    quarantine_to_dict,
    run_fingerprint,
)
from repro.mapreduce import MapReduceEngine
from repro.mapreduce.engine import QuarantinedTask
from repro.synthetic import EnterpriseConfig, EnterpriseSimulator, ImplantSpec


@pytest.fixture(scope="module")
def enterprise():
    config = EnterpriseConfig(
        n_hosts=20,
        n_sites=40,
        duration=86_400.0 / 4,
        implants=(ImplantSpec("zbot", "zeus", n_infected=2, period=90.0),),
        seed=33,
    )
    return EnterpriseSimulator(config).generate()


@pytest.fixture(scope="module")
def pipeline_config():
    return PipelineConfig(local_whitelist_threshold=0.2, ranking_percentile=0.5)


def _report_signature(report):
    """Everything that must match between two equivalent runs."""
    return {
        "funnel": list(report.funnel.steps),
        "ranked": [
            (c.destination, round(c.rank_score, 9)) for c in report.ranked_cases
        ],
        "detected": sorted(
            (c.summary.source, c.destination) for c in report.detected_cases
        ),
        "population": report.population_size,
    }


class TestSerialization:
    def test_detection_case_roundtrip(self, enterprise, pipeline_config):
        records, _truth = enterprise
        runner = BaywatchRunner(pipeline_config)
        summaries = runner.extract(records)
        cases = runner.detect(summaries, frozenset())
        assert cases, "fixture produced no detection cases"
        for case in cases:
            restored = case_from_dict(
                json.loads(json.dumps(case_to_dict(case)))
            )
            assert restored == case

    def test_quarantine_tuple_key_roundtrip(self):
        entry = QuarantinedTask(
            phase="reduce", key=("h-3", "evil.example"), error="boom", attempts=2
        )
        restored = quarantine_from_dict(
            json.loads(json.dumps(quarantine_to_dict(entry)))
        )
        assert restored == entry

    def test_fingerprint_sensitive_to_inputs(self):
        pairs = [("a", "x"), ("b", "y")]
        base = run_fingerprint(pairs, config_repr="cfg", shard_size=4)
        assert base == run_fingerprint(pairs, config_repr="cfg", shard_size=4)
        assert base != run_fingerprint(pairs[:1], config_repr="cfg", shard_size=4)
        assert base != run_fingerprint(pairs, config_repr="other", shard_size=4)
        assert base != run_fingerprint(pairs, config_repr="cfg", shard_size=8)


class TestShardedEquivalence:
    def test_sharded_matches_unsharded(self, enterprise, pipeline_config):
        records, truth = enterprise
        plain = BaywatchRunner(pipeline_config).run(records)
        sharded = BaywatchRunner(pipeline_config).run_sharded(
            records, shard_size=7
        )
        assert _report_signature(sharded) == _report_signature(plain)
        detected = {c.destination for c in sharded.detected_cases}
        assert truth.malicious_destinations <= detected
        assert sharded.quarantined == []

    def test_shard_callback_and_gauge(self, enterprise, pipeline_config):
        from repro.obs import MetricsRegistry, scoped_registry

        records, _truth = enterprise
        completions = []
        registry = MetricsRegistry()
        with scoped_registry(registry):
            BaywatchRunner(pipeline_config).run_sharded(
                records,
                shard_size=7,
                on_shard_complete=lambda i, n: completions.append((i, n)),
            )
        assert completions, "no shard completions observed"
        n_shards = completions[0][1]
        assert [i for i, _n in completions] == list(range(n_shards))
        assert dict(registry.gauges())["runner.shards_total"] == n_shards

    def test_shard_size_validated(self, enterprise, pipeline_config):
        records, _truth = enterprise
        with pytest.raises(ValueError, match="shard_size"):
            BaywatchRunner(pipeline_config).run_sharded(records, shard_size=0)

    def test_max_shards_requires_checkpoint_dir(
        self, enterprise, pipeline_config
    ):
        records, _truth = enterprise
        with pytest.raises(ValueError, match="checkpoint_dir"):
            BaywatchRunner(pipeline_config).run_sharded(records, max_shards=1)


class TestInterruptResume:
    def test_interrupt_then_resume_is_identical(
        self, enterprise, pipeline_config, tmp_path
    ):
        records, _truth = enterprise
        ckpt = tmp_path / "ckpt"
        uninterrupted = BaywatchRunner(pipeline_config).run_sharded(
            records, shard_size=5
        )

        with pytest.raises(IncompleteRunError) as excinfo:
            BaywatchRunner(pipeline_config).run_sharded(
                records, shard_size=5, checkpoint_dir=str(ckpt), max_shards=2
            )
        assert excinfo.value.completed == 2
        assert excinfo.value.total > 2
        store = CheckpointStore(ckpt)
        assert store.completed_shards() == [0, 1]

        rerun = []
        resumed = BaywatchRunner(pipeline_config).run_sharded(
            records,
            shard_size=5,
            checkpoint_dir=str(ckpt),
            resume=True,
            on_shard_complete=lambda i, n: rerun.append(i),
        )
        # Only the shards missing from the checkpoint were re-run...
        assert min(rerun) == 2
        # ...and the assembled report is indistinguishable from the
        # uninterrupted one.
        assert _report_signature(resumed) == _report_signature(uninterrupted)

    def test_resume_counts_shards_resumed(
        self, enterprise, pipeline_config, tmp_path
    ):
        from repro.obs import MetricsRegistry, scoped_registry

        records, _truth = enterprise
        ckpt = tmp_path / "ckpt"
        runner = BaywatchRunner(pipeline_config)
        runner.run_sharded(records, shard_size=5, checkpoint_dir=str(ckpt))

        registry = MetricsRegistry()
        with scoped_registry(registry):
            BaywatchRunner(pipeline_config).run_sharded(
                records, shard_size=5, checkpoint_dir=str(ckpt), resume=True
            )
        counters = dict(registry.counters())
        assert counters["mapreduce.shards_resumed"] >= 1

    def test_leftover_tmp_file_is_not_a_shard(
        self, enterprise, pipeline_config, tmp_path
    ):
        """A SIGKILL mid-write leaves only a ``*.tmp`` file; resume must
        treat that shard as incomplete and re-run it."""
        records, _truth = enterprise
        ckpt = tmp_path / "ckpt"
        uninterrupted = BaywatchRunner(pipeline_config).run_sharded(
            records, shard_size=5
        )
        with pytest.raises(IncompleteRunError):
            BaywatchRunner(pipeline_config).run_sharded(
                records, shard_size=5, checkpoint_dir=str(ckpt), max_shards=2
            )
        # Simulate the kill-mid-write of the next shard.
        (ckpt / "shard-00002.jsonl.tmp").write_text('{"type": "cas', "utf-8")
        store = CheckpointStore(ckpt)
        assert not store.has_shard(2)

        resumed = BaywatchRunner(pipeline_config).run_sharded(
            records, shard_size=5, checkpoint_dir=str(ckpt), resume=True
        )
        assert _report_signature(resumed) == _report_signature(uninterrupted)

    def test_resume_against_changed_config_refuses(
        self, enterprise, pipeline_config, tmp_path
    ):
        records, _truth = enterprise
        ckpt = tmp_path / "ckpt"
        with pytest.raises(IncompleteRunError):
            BaywatchRunner(pipeline_config).run_sharded(
                records, shard_size=5, checkpoint_dir=str(ckpt), max_shards=1
            )
        changed = PipelineConfig(
            local_whitelist_threshold=0.9, ranking_percentile=0.5
        )
        with pytest.raises(CheckpointMismatch):
            BaywatchRunner(changed).run_sharded(
                records, shard_size=5, checkpoint_dir=str(ckpt), resume=True
            )

    def test_resume_against_changed_shard_size_refuses(
        self, enterprise, pipeline_config, tmp_path
    ):
        records, _truth = enterprise
        ckpt = tmp_path / "ckpt"
        with pytest.raises(IncompleteRunError):
            BaywatchRunner(pipeline_config).run_sharded(
                records, shard_size=5, checkpoint_dir=str(ckpt), max_shards=1
            )
        with pytest.raises(CheckpointMismatch):
            BaywatchRunner(pipeline_config).run_sharded(
                records, shard_size=9, checkpoint_dir=str(ckpt), resume=True
            )

    def test_fresh_run_clears_stale_checkpoint(
        self, enterprise, pipeline_config, tmp_path
    ):
        records, _truth = enterprise
        ckpt = tmp_path / "ckpt"
        with pytest.raises(IncompleteRunError):
            BaywatchRunner(pipeline_config).run_sharded(
                records, shard_size=5, checkpoint_dir=str(ckpt), max_shards=2
            )
        # resume=False (the default) starts over; stale shards vanish
        # and the run completes end to end.
        report = BaywatchRunner(pipeline_config).run_sharded(
            records, shard_size=5, checkpoint_dir=str(ckpt)
        )
        store = CheckpointStore(ckpt)
        assert len(store.completed_shards()) == len(
            set(store.completed_shards())
        )
        assert report.detected_cases


class _PoisonedDetectionJob(BeaconingDetectionJob):
    """Detection job that dies on one destination (module-level so
    worker processes can unpickle it)."""

    POISON_DESTINATION = None  # set via factory closure below

    def __init__(self, *args, poison_destination="", **kwargs):
        super().__init__(*args, **kwargs)
        self._poison_destination = poison_destination

    def map(self, key, value):
        if value.destination == self._poison_destination:
            raise RuntimeError(f"poisoned pair {key}")
        return super().map(key, value)


class TestQuarantineEndToEnd:
    def test_poison_pair_quarantined_batch_completes(
        self, enterprise, pipeline_config, tmp_path
    ):
        records, truth = enterprise
        ckpt = tmp_path / "ckpt"
        victim = sorted(truth.malicious_destinations)[0]

        def factory(*args, **kwargs):
            return _PoisonedDetectionJob(
                *args, poison_destination=victim, **kwargs
            )

        engine = MapReduceEngine(max_retries=1, quarantine=True)
        runner = BaywatchRunner(
            pipeline_config, engine=engine, detection_job_factory=factory
        )
        report = runner.run_sharded(
            records, shard_size=5, checkpoint_dir=str(ckpt)
        )

        # The batch completed; the poisoned pair is reported, not fatal.
        assert report.quarantined, "no quarantine entries in report"
        assert all(e.phase == "map" for e in report.quarantined)
        assert {e.key[1] for e in report.quarantined} == {victim}
        assert victim not in {c.destination for c in report.detected_cases}

        # The consolidated quarantine report landed on disk as JSONL.
        store = CheckpointStore(ckpt)
        persisted = store.read_quarantine()
        assert [e.key for e in persisted] == [e.key for e in report.quarantined]

    def test_poison_without_quarantine_aborts(
        self, enterprise, pipeline_config
    ):
        records, truth = enterprise
        victim = sorted(truth.malicious_destinations)[0]

        def factory(*args, **kwargs):
            return _PoisonedDetectionJob(
                *args, poison_destination=victim, **kwargs
            )

        runner = BaywatchRunner(
            pipeline_config,
            engine=MapReduceEngine(),
            detection_job_factory=factory,
        )
        with pytest.raises(RuntimeError, match="poisoned pair"):
            runner.run_sharded(records, shard_size=5)


class TestProgress:
    def test_progress_tracks_manifest_and_shards(
        self, enterprise, pipeline_config, tmp_path
    ):
        records, _truth = enterprise
        ckpt = tmp_path / "ckpt"
        runner = BaywatchRunner(pipeline_config)
        with pytest.raises(IncompleteRunError):
            runner.run_sharded(
                records, shard_size=5, checkpoint_dir=str(ckpt), max_shards=2
            )
        store = CheckpointStore(str(ckpt))
        progress = store.progress()
        assert progress["done"] == 2
        assert progress["completed"] == [0, 1]
        assert progress["n_shards"] > 2
        assert progress["remaining"] == progress["n_shards"] - 2
        assert progress["fingerprint"]

        BaywatchRunner(pipeline_config).run_sharded(
            records, shard_size=5, checkpoint_dir=str(ckpt), resume=True
        )
        progress = store.progress()
        assert progress["remaining"] == 0
        assert progress["done"] == progress["n_shards"]

    def test_progress_on_fresh_directory(self, tmp_path):
        progress = CheckpointStore(str(tmp_path)).progress()
        assert progress == {
            "n_shards": 0,
            "completed": [],
            "done": 0,
            "remaining": 0,
            "fingerprint": None,
        }

    def test_clear_keeps_the_event_journal(
        self, enterprise, pipeline_config, tmp_path
    ):
        """A fresh (non-resume) run clears shards but never the journal."""
        records, _truth = enterprise
        ckpt = tmp_path / "ckpt"
        runner = BaywatchRunner(pipeline_config)
        runner.run_sharded(records, shard_size=5, checkpoint_dir=str(ckpt))
        journal = ckpt / "events.jsonl"
        assert journal.exists()
        size_after_first = journal.stat().st_size
        CheckpointStore(str(ckpt)).clear()
        assert journal.exists()
        assert journal.stat().st_size == size_after_first
