"""Edge-path tests for the MapReduce runner."""

import pytest

from repro.filtering import PipelineConfig
from repro.jobs import BaywatchRunner
from repro.synthetic import ProxyLogRecord


@pytest.fixture
def runner():
    return BaywatchRunner(
        PipelineConfig(local_whitelist_threshold=0.2, ranking_percentile=0.0)
    )


class TestRunnerEdges:
    def test_empty_records(self, runner):
        report = runner.run([])
        assert report.ranked_cases == []
        assert report.detected_cases == []
        assert report.population_size == 0

    def test_single_pair_non_periodic(self, runner, rng):
        timestamps = sorted(rng.uniform(0, 86_400, size=50))
        records = [
            ProxyLogRecord(float(t), "mac1", "10.0.0.1", "rand.com", "/x")
            for t in timestamps
        ]
        report = runner.run(records)
        assert report.detected_cases == []

    def test_all_whitelisted(self, runner):
        records = [
            ProxyLogRecord(float(i * 60), "mac1", "10.0.0.1", "google.com", "/")
            for i in range(50)
        ]
        report = runner.run(records)
        assert report.detected_cases == []
        # Funnel records the global-whitelist drop.
        step = dict(
            (name, (i, o)) for name, i, o in report.funnel.steps
        )["1 global whitelist"]
        assert step == (1, 0)

    def test_phase_methods_on_empty(self, runner):
        assert runner.extract([]) == []
        ratios, counts, population = runner.popularity([])
        assert ratios == {} and counts == {} and population == 0
        assert runner.detect([], frozenset()) == []
        assert runner.rank([], {}, {}) == []

    def test_novelty_across_runs(self, rng):
        from repro.filtering import NoveltyStore

        records = [
            ProxyLogRecord(float(i * 60), "mac1", "10.0.0.1",
                           "xqzwvkpj.com", "/gate.php")
            for i in range(200)
        ]
        novelty = NoveltyStore()
        config = PipelineConfig(
            local_whitelist_threshold=0.2, ranking_percentile=0.0
        )
        first = BaywatchRunner(config, novelty=novelty).run(records)
        second = BaywatchRunner(config, novelty=novelty).run(records)
        assert len(first.ranked_cases) == 1
        assert second.ranked_cases == []
