"""Integration tests for the MapReduce-backed runner."""

import pytest

from repro.filtering import BaywatchPipeline, PipelineConfig
from repro.jobs import BaywatchRunner
from repro.mapreduce import MapReduceEngine
from repro.synthetic import EnterpriseConfig, EnterpriseSimulator, ImplantSpec


@pytest.fixture(scope="module")
def enterprise():
    config = EnterpriseConfig(
        n_hosts=20,
        n_sites=40,
        duration=86_400.0 / 4,
        implants=(ImplantSpec("zbot", "zeus", n_infected=2, period=90.0),),
        seed=33,
    )
    return EnterpriseSimulator(config).generate()


@pytest.fixture(scope="module")
def pipeline_config():
    return PipelineConfig(local_whitelist_threshold=0.2, ranking_percentile=0.5)


class TestRunner:
    def test_finds_malicious(self, enterprise, pipeline_config):
        records, truth = enterprise
        runner = BaywatchRunner(pipeline_config)
        report = runner.run(records)
        detected = {case.destination for case in report.detected_cases}
        assert truth.malicious_destinations <= detected

    def test_agrees_with_in_process_pipeline(self, enterprise, pipeline_config):
        records, _truth = enterprise
        runner_report = BaywatchRunner(pipeline_config).run(records)
        pipeline_report = BaywatchPipeline(pipeline_config).run_records(records)
        assert {c.destination for c in runner_report.detected_cases} == {
            c.destination for c in pipeline_report.detected_cases
        }
        assert [c.destination for c in runner_report.ranked_cases] == [
            c.destination for c in pipeline_report.ranked_cases
        ]

    def test_phases_run_individually(self, enterprise, pipeline_config):
        records, _truth = enterprise
        runner = BaywatchRunner(pipeline_config)
        summaries = runner.extract(records)
        assert len(summaries) > 10
        ratios, counts, population = runner.popularity(summaries)
        assert population == 20
        assert all(0.0 <= r <= 1.0 for r in ratios.values())

    def test_rescale_merge_phase(self, enterprise, pipeline_config):
        records, _truth = enterprise
        runner = BaywatchRunner(pipeline_config)
        summaries = runner.extract(records)
        coarse = runner.rescale_merge(summaries, 60.0)
        assert len(coarse) == len(summaries)
        assert all(s.time_scale == 60.0 for s in coarse)

    def test_rescaled_run_still_detects(self, enterprise, pipeline_config):
        """Coarse-granularity analysis (the long-window mode) still
        finds a 90 s beacon when analyzed at 30 s resolution."""
        records, truth = enterprise
        runner = BaywatchRunner(pipeline_config)
        report = runner.run(records, analysis_time_scale=30.0)
        detected = {case.destination for case in report.detected_cases}
        assert truth.malicious_destinations <= detected
