"""Tests for the individual MapReduce jobs (Section VII)."""

import pytest

from repro.core.timeseries import ActivitySummary
from repro.jobs import (
    BeaconingDetectionJob,
    DataExtractionJob,
    DestinationPopularityJob,
    RankingJob,
    RescaleMergeJob,
    popularity_table,
)
from repro.jobs.records import DetectionCase
from repro.mapreduce import MapReduceEngine
from repro.synthetic import ProxyLogRecord


@pytest.fixture
def engine():
    return MapReduceEngine()


def beacon_records(destination="evil.com", mac="mac1", period=60.0, count=50):
    return [
        ProxyLogRecord(i * period, mac, "10.0.0.1", destination, "/gate.php")
        for i in range(count)
    ]


class TestDataExtractionJob:
    def test_builds_summaries_per_pair(self, engine):
        records = beacon_records() + beacon_records("other.com", "mac2")
        output = engine.run(DataExtractionJob(), enumerate(records))
        assert len(output) == 2
        pairs = {pair for pair, _s in output}
        assert pairs == {("mac1", "evil.com"), ("mac2", "other.com")}

    def test_summary_contents(self, engine):
        output = engine.run(DataExtractionJob(), enumerate(beacon_records()))
        _pair, summary = output[0]
        assert summary.event_count == 50
        assert summary.intervals[0] == 60.0
        assert summary.urls[0] == "/gate.php"

    def test_url_cap(self, engine):
        job = DataExtractionJob(max_urls_per_pair=5)
        output = engine.run(job, enumerate(beacon_records(count=20)))
        _pair, summary = output[0]
        assert len(summary.urls) == 5

    def test_unsorted_timestamps_handled(self, engine):
        records = list(reversed(beacon_records(count=10)))
        output = engine.run(DataExtractionJob(), enumerate(records))
        _pair, summary = output[0]
        assert all(i >= 0 for i in summary.intervals)


class TestRescaleMergeJob:
    def test_merges_multiple_windows(self, engine):
        day1 = ActivitySummary.from_timestamps("m", "d", [0.0, 300.0, 600.0])
        day2 = ActivitySummary.from_timestamps(
            "m", "d", [86_400.0, 86_700.0, 87_000.0]
        )
        output = engine.run(
            RescaleMergeJob(60.0), [(s.pair, s) for s in (day1, day2)]
        )
        assert len(output) == 1
        _pair, merged = output[0]
        assert merged.time_scale == 60.0
        assert merged.event_count == 6

    def test_already_coarse_passes_through(self, engine):
        coarse = ActivitySummary.from_timestamps(
            "m", "d", [0.0, 300.0], time_scale=300.0
        )
        output = engine.run(RescaleMergeJob(60.0), [(coarse.pair, coarse)])
        _pair, merged = output[0]
        assert merged.time_scale == 300.0


class TestPopularityJob:
    def test_counts_distinct_sources(self, engine):
        summaries = [
            ActivitySummary.from_timestamps(f"mac{i}", "shared.com", [0.0, 1.0])
            for i in range(5)
        ] + [ActivitySummary.from_timestamps("mac0", "rare.com", [0.0, 1.0])]
        counts = dict(
            engine.run(
                DestinationPopularityJob(), [(s.pair, s) for s in summaries]
            )
        )
        assert counts["shared.com"] == 5
        assert counts["rare.com"] == 1

    def test_popularity_table(self):
        table = popularity_table([("a.com", 5), ("b.com", 1)], population=10)
        assert table["a.com"] == 0.5
        assert table["b.com"] == 0.1

    def test_popularity_table_zero_population(self):
        assert popularity_table([("a.com", 5)], 0) == {"a.com": 0.0}


class TestDetectionJob:
    def test_detects_beacon(self, engine):
        summary = ActivitySummary.from_timestamps(
            "m", "evil.com", [i * 60.0 for i in range(200)]
        )
        output = engine.run(
            BeaconingDetectionJob(), [(summary.pair, summary)]
        )
        assert len(output) == 1
        _pair, case = output[0]
        assert isinstance(case, DetectionCase)
        assert case.detection.dominant_period == pytest.approx(60.0, rel=0.05)

    def test_skips_whitelisted(self, engine):
        summary = ActivitySummary.from_timestamps(
            "m", "benign.com", [i * 60.0 for i in range(100)]
        )
        job = BeaconingDetectionJob(skip_destinations=frozenset({"benign.com"}))
        assert engine.run(job, [(summary.pair, summary)]) == []

    def test_skips_short_series(self, engine):
        summary = ActivitySummary.from_timestamps("m", "d", [0.0, 60.0, 120.0])
        job = BeaconingDetectionJob(min_events=4)
        assert engine.run(job, [(summary.pair, summary)]) == []

    def test_non_periodic_not_reported(self, engine, rng):
        timestamps = sorted(rng.uniform(0, 86_400, size=100))
        summary = ActivitySummary.from_timestamps("m", "d", timestamps)
        assert engine.run(BeaconingDetectionJob(), [(summary.pair, summary)]) == []

    def test_pickles_without_detector(self):
        import pickle

        job = BeaconingDetectionJob()
        job._get_detector()
        clone = pickle.loads(pickle.dumps(job))
        assert clone._detector is None


class TestRankingJob:
    def make_case(self, destination, urls=("/gate.php",), period=60.0):
        summary = ActivitySummary.from_timestamps(
            "m", destination, [i * period for i in range(50)], urls=urls
        )
        from repro.core.detector import CandidatePeriod, DetectionResult

        detection = DetectionResult(
            periodic=True,
            candidates=(
                CandidatePeriod(period, 1 / period, 50.0, 0.9, 0.5),
            ),
            power_threshold=5.0,
            n_events=50,
            duration=49 * period,
            time_scale=1.0,
        )
        return DetectionCase(summary=summary, detection=detection)

    def job(self, **kwargs):
        defaults = dict(
            popularity={"dga1.com": 0.01, "update.com": 0.01},
            similar_sources={"dga1.com": 1, "update.com": 1},
            lm_scores={"dga1.com": -3.0, "update.com": -1.0},
            percentile=0.0,
        )
        defaults.update(kwargs)
        return RankingJob(**defaults)

    def test_ranks_dga_above_benign(self, engine):
        cases = [self.make_case("update.com"), self.make_case("dga1.com")]
        output = engine.run(self.job(), [(c.pair, c) for c in cases])
        ranked = [case.summary.destination for _rank, case in sorted(output)]
        assert ranked[0] == "dga1.com"

    def test_token_filter_suppresses_updaters(self, engine):
        cases = [self.make_case("update.com", urls=("/v2/update/check",))]
        output = engine.run(self.job(), [(c.pair, c) for c in cases])
        assert output == []

    def test_novelty_suppresses_reported(self, engine):
        cases = [self.make_case("dga1.com")]
        job = self.job(reported_destinations=frozenset({"dga1.com"}))
        assert engine.run(job, [(c.pair, c) for c in cases]) == []

    def test_percentile_cut(self, engine):
        cases = [self.make_case(f"dga{i}.com") for i in range(10)]
        job = self.job(
            popularity={}, similar_sources={},
            lm_scores={f"dga{i}.com": -3.0 + i * 0.1 for i in range(10)},
            percentile=0.8,
        )
        output = engine.run(job, [(c.pair, c) for c in cases])
        assert 1 <= len(output) <= 3
