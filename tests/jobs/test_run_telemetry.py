"""Run telemetry integration: journal, status, and traces of sharded runs."""

import logging

import pytest

from repro.filtering import PipelineConfig
from repro.jobs import BaywatchRunner, CheckpointStore, IncompleteRunError
from repro.mapreduce import MapReduceEngine
from repro.obs import (
    JOURNAL_FILE,
    MetricsRegistry,
    build_status,
    build_trace_tree,
    clear_spans,
    pending_spans,
    read_events,
    render_trace_tree,
    scoped_registry,
    set_trace,
)
from repro.synthetic import EnterpriseConfig, EnterpriseSimulator, ImplantSpec


@pytest.fixture(scope="module")
def enterprise():
    config = EnterpriseConfig(
        n_hosts=20,
        n_sites=40,
        duration=86_400.0 / 4,
        implants=(ImplantSpec("zbot", "zeus", n_infected=2, period=90.0),),
        seed=33,
    )
    return EnterpriseSimulator(config).generate()


@pytest.fixture(scope="module")
def pipeline_config():
    return PipelineConfig(local_whitelist_threshold=0.2, ranking_percentile=0.5)


@pytest.fixture(autouse=True)
def _clean_trace_state():
    clear_spans()
    set_trace(None)
    yield
    clear_spans()
    set_trace(None)


def _events_of(kind, events):
    return [event for event in events if event["event"] == kind]


class TestJournalOfShardedRun:
    def test_journal_tells_the_run_story(
        self, enterprise, pipeline_config, tmp_path
    ):
        records, _truth = enterprise
        ckpt = tmp_path / "ckpt"
        runner = BaywatchRunner(pipeline_config)
        runner.run_sharded(
            records, shard_size=5, checkpoint_dir=str(ckpt), run_id="jrun01"
        )
        events = read_events(ckpt / JOURNAL_FILE)
        assert events, "sharded run with checkpoint_dir must journal"
        assert all(event["run_id"] == "jrun01" for event in events)
        assert len(_events_of("run_start", events)) == 1
        assert len(_events_of("run_finish", events)) == 1
        n_shards = _events_of("run_start", events)[0]["n_shards"]
        starts = _events_of("shard_start", events)
        finishes = _events_of("shard_finish", events)
        assert len(starts) == len(finishes) == n_shards
        assert {event["shard"] for event in finishes} == set(range(n_shards))
        for event in finishes:
            assert event["pairs"] > 0
            assert event["seconds"] >= 0
        # The stage graph journals funnel steps too.
        stages = {event["stage"] for event in _events_of("stage", events)}
        assert "step5_detection" in stages or len(stages) > 0

    def test_status_matches_checkpoint_manifest(
        self, enterprise, pipeline_config, tmp_path
    ):
        records, _truth = enterprise
        ckpt = tmp_path / "ckpt"
        runner = BaywatchRunner(pipeline_config)
        runner.run_sharded(records, shard_size=5, checkpoint_dir=str(ckpt))
        status = build_status(read_events(ckpt / JOURNAL_FILE))
        progress = CheckpointStore(str(ckpt)).progress()
        assert status["shards"]["total"] == progress["n_shards"]
        assert status["shards"]["done"] == progress["done"]
        assert progress["remaining"] == 0
        assert status["state"] == "finished"

    def test_journal_dir_without_checkpoints(
        self, enterprise, pipeline_config, tmp_path
    ):
        records, _truth = enterprise
        jdir = tmp_path / "journal-only"
        runner = BaywatchRunner(pipeline_config)
        runner.run_sharded(records, shard_size=5, journal_dir=str(jdir))
        events = read_events(jdir / JOURNAL_FILE)
        assert _events_of("run_finish", events)

    def test_no_journal_without_directories(
        self, enterprise, pipeline_config
    ):
        records, _truth = enterprise
        runner = BaywatchRunner(pipeline_config)
        report = runner.run_sharded(records, shard_size=5)
        assert report.ranked_cases  # runs fine, just unjournaled


class TestInterruptResumeJournal:
    def test_resume_appends_without_duplicate_finishes(
        self, enterprise, pipeline_config, tmp_path
    ):
        records, _truth = enterprise
        ckpt = tmp_path / "ckpt"
        runner = BaywatchRunner(pipeline_config)
        with pytest.raises(IncompleteRunError):
            runner.run_sharded(
                records, shard_size=5, checkpoint_dir=str(ckpt),
                max_shards=2, run_id="cycle1",
            )
        first_cycle = read_events(ckpt / JOURNAL_FILE)
        assert _events_of("run_suspended", first_cycle)
        finished_first = {
            event["shard"] for event in _events_of("shard_finish", first_cycle)
        }
        assert len(finished_first) == 2

        resumed_runner = BaywatchRunner(pipeline_config)
        resumed_runner.run_sharded(
            records, shard_size=5, checkpoint_dir=str(ckpt),
            resume=True, run_id="cycle2",
        )
        events = read_events(ckpt / JOURNAL_FILE)
        # Append-only: the first cycle's records are still at the front.
        assert events[: len(first_cycle)] == first_cycle
        assert _events_of("resumed", events)

        # No shard finishes twice across the whole journal; resumed
        # shards appear as shard_resumed instead.
        finishes = [e["shard"] for e in _events_of("shard_finish", events)]
        assert len(finishes) == len(set(finishes))
        resumed_shards = {
            event["shard"] for event in _events_of("shard_resumed", events)
        }
        assert resumed_shards == finished_first

        status = build_status(events)
        assert status["resumed"] is True
        assert status["state"] == "finished"
        assert status["shards"]["done"] == status["shards"]["total"]

    def test_resume_journals_cache_load(
        self, enterprise, pipeline_config, tmp_path
    ):
        records, _truth = enterprise
        ckpt = tmp_path / "ckpt"
        runner = BaywatchRunner(pipeline_config)
        with pytest.raises(IncompleteRunError):
            runner.run_sharded(
                records, shard_size=5, checkpoint_dir=str(ckpt), max_shards=1
            )
        BaywatchRunner(pipeline_config).run_sharded(
            records, shard_size=5, checkpoint_dir=str(ckpt), resume=True
        )
        events = read_events(ckpt / JOURNAL_FILE)
        assert _events_of("cache_persist", events)
        assert _events_of("cache_load", events)


class TestDistributedTrace:
    def test_parallel_run_stitches_one_tree_with_worker_spans(
        self, enterprise, pipeline_config, tmp_path
    ):
        records, _truth = enterprise
        # min_parallel_records=1 forces even small detection shards
        # through the worker pool, so detect spans genuinely run in
        # other processes.
        engine = MapReduceEngine(n_workers=2, min_parallel_records=1)
        runner = BaywatchRunner(pipeline_config, engine=engine)
        registry = MetricsRegistry()
        with scoped_registry(registry), engine:
            runner.run_sharded(
                records, shard_size=5,
                checkpoint_dir=str(tmp_path / "ckpt"), run_id="trace01",
            )
        spans = pending_spans()
        assert spans
        roots = build_trace_tree(spans)
        assert len(roots) == 1, "all spans must stitch under the run span"
        root = roots[0]
        assert root.record.name == "run"
        assert root.record.run_id == "trace01"

        engine_pid = root.record.pid
        worker_detects = [
            record for record in spans
            if record.name == "detect" and record.pid != engine_pid
        ]
        assert worker_detects, "worker-side detect spans must ship back"
        by_id = {record.span_id: record for record in spans}
        for record in worker_detects:
            # Walk to the root: the chain must terminate at the run span.
            node = record
            for _hop in range(100):
                if node.parent_id is None:
                    break
                node = by_id[node.parent_id]
            assert node.span_id == root.record.span_id

        text = render_trace_tree(spans)
        assert "trace01" in text
        assert "detect" in text

    def test_serial_run_records_no_spans_without_telemetry(
        self, enterprise, pipeline_config, tmp_path
    ):
        records, _truth = enterprise
        runner = BaywatchRunner(pipeline_config)
        runner.run_sharded(
            records, shard_size=5, checkpoint_dir=str(tmp_path / "ckpt")
        )
        assert pending_spans() == []

    def test_worker_heartbeats_reach_the_journal(
        self, enterprise, pipeline_config, tmp_path
    ):
        records, _truth = enterprise
        ckpt = tmp_path / "ckpt"
        engine = MapReduceEngine(n_workers=2, min_parallel_records=1)
        runner = BaywatchRunner(pipeline_config, engine=engine)
        with engine:
            runner.run_sharded(
                records, shard_size=5, checkpoint_dir=str(ckpt)
            )
        events = read_events(ckpt / JOURNAL_FILE)
        heartbeats = _events_of("heartbeat", events)
        assert heartbeats, "workers must heartbeat even without telemetry"
        engine_pid = _events_of("run_start", events)[0]["pid"]
        assert any(event["pid"] != engine_pid for event in heartbeats)


class TestEngineLogContext:
    def test_retry_warnings_carry_run_and_shard(self, caplog):
        engine = MapReduceEngine(max_retries=1, retry_backoff=0.0)
        engine.set_run_context(run_id="ctx01", shard=7)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return "ok"

        with caplog.at_level(logging.WARNING, logger="repro"):
            assert engine._attempt(flaky) == "ok"
        assert any(
            "run ctx01" in record.getMessage()
            and "shard 7" in record.getMessage()
            for record in caplog.records
        )

    def test_context_clears(self):
        engine = MapReduceEngine()
        engine.set_run_context(run_id="x", shard=1)
        assert engine._log_ctx() == "[run x shard 1] "
        engine.set_run_context()
        assert engine._log_ctx() == ""
