"""Tests for the columnar zero-copy ingestion plane.

The contract under test is *bit-identical parity*: for any event
stream, the chunked parser + vectorized fold must produce exactly the
summaries the per-record object path produces — same intervals, same
first timestamps, same URL samples, same ordering.
"""

import numpy as np
import pytest

from repro.sources.columnar import (
    ColumnTables,
    ColumnarAccumulator,
    RecordChunk,
    StringTable,
    chunks_to_records,
    read_log_chunks,
    records_to_chunks,
    summaries_from_chunks,
)
from repro.sources.proxy import (
    PairConfig,
    ProxyLogRecord,
    records_to_summaries,
    write_log,
)


def make_records(n=400, *, seed=7, sorted_times=True):
    rng = np.random.default_rng(seed)
    times = rng.uniform(0, 7200, size=n)
    if sorted_times:
        times = np.sort(times)
    records = []
    for i, ts in enumerate(times):
        host = f"host{i % 7}"
        records.append(
            ProxyLogRecord(
                timestamp=round(float(ts), 3),
                source_mac=f"aa:bb:cc:00:00:{i % 7:02x}",
                source_ip=f"10.0.0.{i % 7}",
                destination=f"site{i % 13}.example.com",
                url=f"http://site{i % 13}.example.com/p{i % 5}?q={i}",
                status=200 if i % 11 else 404,
                bytes_sent=100 + i,
            )
        )
    return records


class TestStringTable:
    def test_intern_is_stable(self):
        table = StringTable()
        a = table.intern("alpha")
        b = table.intern("beta")
        assert table.intern("alpha") == a
        assert a != b

    def test_intern_column_matches_intern(self):
        column = ["c", "a", "b", "a", "c", "c"]
        one = StringTable()
        expected = [one.intern(v) for v in column]
        two = StringTable()
        ids = two.intern_column(column)
        # Ids may differ between the two tables; decoded values must not.
        assert two.decode(ids) == one.decode(np.asarray(expected))
        assert two.decode(ids) == column

    def test_decode_roundtrip(self):
        table = StringTable()
        ids = table.intern_many(["x", "y", "x"])
        assert table.decode(np.asarray(ids)) == ["x", "y", "x"]


class TestChunkRoundtrip:
    def test_records_to_chunks_and_back(self):
        records = make_records(100)
        chunks = list(records_to_chunks(records, chunk_size=33))
        assert sum(len(c.data) for c in chunks) == 100
        assert list(chunks_to_records(chunks)) == records

    def test_file_parse_matches_object_parse(self, tmp_path):
        from repro.sources.proxy import read_log

        records = make_records(300)
        path = tmp_path / "log.tsv"
        write_log(records, path)
        via_objects = list(read_log(path))
        via_chunks = list(chunks_to_records(read_log_chunks(path, chunk_size=77)))
        assert via_chunks == via_objects

    def test_blank_lines_tolerated(self, tmp_path):
        records = make_records(20)
        path = tmp_path / "log.tsv"
        write_log(records, path)
        text = path.read_text()
        lines = text.splitlines()
        lines.insert(3, "")
        lines.insert(11, "")
        path.write_text("\n".join(lines) + "\n")
        parsed = list(chunks_to_records(read_log_chunks(path, chunk_size=7)))
        assert parsed == records


PARITY_CONFIGS = [
    {},
    {"time_scale": 30.0},
    {"aggregate_entities": True},
    {"keep_urls": False},
    {"max_urls_per_pair": 3},
    {"max_urls_per_pair": 0},
    {"time_scale": 60.0, "aggregate_entities": True, "max_urls_per_pair": 2},
]


class TestFoldParity:
    @pytest.mark.parametrize("config", PARITY_CONFIGS)
    def test_summaries_bit_identical_to_object_path(self, config):
        records = make_records(400)
        expected = records_to_summaries(records, **config)
        actual = summaries_from_chunks(
            records_to_chunks(records, chunk_size=113), **config
        )
        assert actual == expected

    def test_unsorted_stream_parity(self):
        records = make_records(400, sorted_times=False)
        expected = records_to_summaries(records)
        actual = summaries_from_chunks(records_to_chunks(records, chunk_size=97))
        assert actual == expected

    def test_single_chunk_parity(self):
        records = make_records(150)
        expected = records_to_summaries(records)
        actual = summaries_from_chunks(records_to_chunks(records))
        assert actual == expected

    @pytest.mark.parametrize(
        "pair_config",
        [
            PairConfig(source_feature="ip"),
            PairConfig(destination_feature="registered_domain"),
        ],
    )
    def test_pair_config_keying_matches(self, pair_config):
        records = make_records(300)
        expected = records_to_summaries(records, pair_config=pair_config)
        actual = summaries_from_chunks(
            records_to_chunks(records, chunk_size=64), pair_config=pair_config
        )
        assert actual == expected

    def test_incremental_observe_matches_batch(self):
        records = make_records(200)
        accumulator = ColumnarAccumulator()
        for chunk in records_to_chunks(records, chunk_size=41):
            accumulator.observe_chunk(chunk)
        assert accumulator.summaries() == records_to_summaries(records)

    def test_empty_stream(self):
        assert summaries_from_chunks([]) == []


class TestRecordChunk:
    def test_from_records_preserves_columns(self):
        records = make_records(50)
        tables = ColumnTables()
        chunk = RecordChunk.from_records(records, tables=tables)
        assert len(chunk.data) == 50
        np.testing.assert_allclose(
            chunk.data["timestamp"], [r.timestamp for r in records]
        )
        assert tables.domains.decode(chunk.data["destination"]) == [
            r.destination for r in records
        ]
