"""Tests for the DNS log source."""

import numpy as np
import pytest

from repro.core import DetectorConfig, PeriodicityDetector
from repro.sources.dns import (
    DnsLogRecord,
    dns_records_to_summaries,
    dns_view_of_proxy,
)
from repro.synthetic import BeaconSpec, ProxyLogRecord


def proxy_beacon(period=60.0, count=100, destination="evil.com", mac="mac1"):
    return [
        ProxyLogRecord(i * period, mac, "10.0.0.1", destination, "/gate")
        for i in range(count)
    ]


class TestDnsRecord:
    def test_roundtrip(self):
        record = DnsLogRecord(1.5, "client1", "www.example.com", "AAAA")
        assert DnsLogRecord.from_line(record.to_line()) == record

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            DnsLogRecord.from_line("a\tb")


class TestDnsSummaries:
    def test_groups_by_registered_domain(self):
        records = [
            DnsLogRecord(0.0, "c1", "a.evil.com"),
            DnsLogRecord(60.0, "c1", "b.evil.com"),
            DnsLogRecord(120.0, "c1", "c.evil.com"),
        ]
        summaries = dns_records_to_summaries(records)
        assert len(summaries) == 1
        assert summaries[0].destination == "evil.com"
        assert summaries[0].intervals == (60.0, 60.0)

    def test_exact_name_grouping(self):
        records = [
            DnsLogRecord(0.0, "c1", "a.evil.com"),
            DnsLogRecord(60.0, "c1", "b.evil.com"),
        ]
        summaries = dns_records_to_summaries(
            records, group_by_registered_domain=False
        )
        assert len(summaries) == 2


class TestDnsView:
    def test_caching_suppresses_queries(self):
        records = proxy_beacon(period=60.0, count=100)
        dns = dns_view_of_proxy(records, ttl=300.0)
        # Only every 5th request (300 / 60) triggers a lookup.
        assert len(dns) == pytest.approx(20, abs=2)

    def test_short_ttl_sees_everything(self):
        records = proxy_beacon(period=60.0, count=50)
        dns = dns_view_of_proxy(records, ttl=1.0)
        assert len(dns) == 50

    def test_shared_resolver_aggregates(self):
        records = proxy_beacon(mac="mac1") + proxy_beacon(mac="mac2")
        dns = dns_view_of_proxy(records, ttl=1.0, shared_resolver="resolver1")
        clients = {r.client for r in dns}
        assert clients == {"resolver1"}
        # Aggregation + caching: the resolver view has fewer queries
        # than the union of per-client views.
        cached = dns_view_of_proxy(records, ttl=300.0,
                                   shared_resolver="resolver1")
        assert len(cached) < len(dns)

    def test_beaconing_survives_the_dns_view(self):
        """A beacon slower than the TTL is still detectable in DNS."""
        records = [
            ProxyLogRecord(float(t), "mac1", "10.0.0.1", "evil.com", "/g")
            for t in np.arange(0.0, 86_400.0, 900.0)  # 15-minute beacon
        ]
        dns = dns_view_of_proxy(records, ttl=300.0)
        summaries = dns_records_to_summaries(dns)
        detector = PeriodicityDetector(DetectorConfig(seed=0))
        result = detector.detect_summary(summaries[0])
        assert result.periodic
        assert result.dominant_period == pytest.approx(900.0, rel=0.05)
