"""Tests for the NetFlow source."""

import pytest

from repro.core import DetectorConfig, PeriodicityDetector
from repro.sources.netflow import (
    NetflowRecord,
    netflow_records_to_summaries,
    netflow_view_of_proxy,
    resolve_domain,
)
from repro.synthetic import ProxyLogRecord


def proxy_beacon(period=60.0, count=200, destination="evil.com"):
    return [
        ProxyLogRecord(i * period, "mac1", "10.0.0.1", destination, "/g")
        for i in range(count)
    ]


class TestNetflowRecord:
    def test_roundtrip(self):
        record = NetflowRecord(1.0, "10.0.0.1", "203.0.113.7", 443, "tcp", 512, 4)
        assert NetflowRecord.from_line(record.to_line()) == record

    def test_destination_endpoint(self):
        record = NetflowRecord(1.0, "10.0.0.1", "203.0.113.7", 8080)
        assert record.destination == "203.0.113.7:8080"

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            NetflowRecord.from_line("1.0\tonly")


class TestResolveDomain:
    def test_deterministic(self):
        assert resolve_domain("evil.com") == resolve_domain("evil.com")

    def test_case_insensitive(self):
        assert resolve_domain("EVIL.com") == resolve_domain("evil.com")

    def test_in_test_net(self):
        assert resolve_domain("x.com").startswith("203.0.113.")


class TestNetflowView:
    def test_one_flow_per_request(self):
        records = proxy_beacon(count=50)
        flows = netflow_view_of_proxy(records)
        assert len(flows) == 50

    def test_names_are_gone(self):
        flows = netflow_view_of_proxy(proxy_beacon(count=5))
        assert all(flow.dst_ip.startswith("203.0.113.") for flow in flows)

    def test_beaconing_survives_the_flow_view(self):
        flows = netflow_view_of_proxy(proxy_beacon(period=120.0, count=300))
        summaries = netflow_records_to_summaries(flows)
        assert len(summaries) == 1
        detector = PeriodicityDetector(DetectorConfig(seed=0))
        result = detector.detect_summary(summaries[0])
        assert result.periodic
        assert result.dominant_period == pytest.approx(120.0, rel=0.05)

    def test_pairs_keyed_by_ip_and_port(self):
        flows = [
            NetflowRecord(0.0, "10.0.0.1", "203.0.113.7", 443),
            NetflowRecord(1.0, "10.0.0.1", "203.0.113.7", 80),
        ]
        summaries = netflow_records_to_summaries(flows)
        assert len(summaries) == 2
