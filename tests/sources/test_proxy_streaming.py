"""Streaming record-to-summary grouping (repro.sources.proxy).

The accumulator-based :func:`records_to_summaries` must be
observationally identical to materialize-then-group semantics — same
quantized intervals, same capped URL sample with arrival-order
tie-breaks, same deterministic pair ordering — while holding per-pair
aggregates instead of the record stream (sub-linear memory).
"""

import tracemalloc

import numpy as np
import pytest

from repro.core.timeseries import ActivitySummary
from repro.jobs import DataExtractionJob
from repro.mapreduce.engine import MapReduceEngine
from repro.sources.proxy import (
    ProxyLogRecord,
    SummaryAccumulator,
    records_to_summaries,
    summary_from_observations,
)


def record(ts, mac="aa:bb", dest="c2.example.net", url="/"):
    return ProxyLogRecord(
        timestamp=ts, source_mac=mac, source_ip="10.0.0.1",
        destination=dest, url=url,
    )


def reference_summaries(records, *, time_scale=1.0, max_urls=64):
    """Materialize-then-group semantics the streaming path must match."""
    grouped = {}
    for rec in records:
        grouped.setdefault((rec.source_mac, rec.destination), []).append(rec)
    out = []
    for (source, destination), pair_records in grouped.items():
        pair_records.sort(key=lambda r: r.timestamp)  # stable: arrival ties
        out.append(
            ActivitySummary.from_timestamps(
                source,
                destination,
                [r.timestamp for r in pair_records],
                time_scale=time_scale,
                urls=tuple(r.url for r in pair_records[:max_urls]),
            )
        )
    out.sort(key=lambda s: s.pair)
    return out


@pytest.fixture
def mixed_records():
    rng = np.random.default_rng(3)
    records = []
    for host in range(4):
        for site in range(3):
            times = np.sort(rng.uniform(0.0, 3_600.0, size=40))
            for i, ts in enumerate(times):
                records.append(
                    record(
                        float(ts),
                        mac=f"mac{host}",
                        dest=f"site{site}.net",
                        url=f"/h{host}/s{site}/{i}",
                    )
                )
    rng.shuffle(records)
    return records


class TestStreamingEquivalence:
    def test_matches_reference_grouping(self, mixed_records):
        streamed = records_to_summaries(iter(mixed_records), time_scale=60.0)
        reference = reference_summaries(mixed_records, time_scale=60.0)
        assert streamed == reference

    def test_accepts_one_shot_iterator(self):
        records = (record(60.0 * i) for i in range(10))
        [summary] = records_to_summaries(records)
        assert summary.event_count == 10
        assert summary.intervals == tuple([60.0] * 9)

    def test_url_cap_keeps_earliest_by_arrival(self):
        # Same timestamp everywhere: the cap must keep the first-arriving
        # URLs, exactly like a stable sort over the materialized list.
        records = [record(5.0, url=f"/u{i}") for i in range(20)]
        [summary] = records_to_summaries(iter(records), max_urls_per_pair=6)
        assert summary.urls == tuple(f"/u{i}" for i in range(6))

    def test_accumulator_len_counts_pairs(self, mixed_records):
        accumulator = SummaryAccumulator()
        for rec in mixed_records:
            accumulator.observe_record(rec)
        assert len(accumulator) == 12
        assert len(accumulator.summaries()) == 12

    def test_extraction_job_matches_streaming(self, mixed_records):
        engine = MapReduceEngine()
        output = engine.run(
            DataExtractionJob(time_scale=60.0), enumerate(mixed_records)
        )
        job_summaries = sorted((s for _pair, s in output), key=lambda s: s.pair)
        assert job_summaries == records_to_summaries(
            iter(mixed_records), time_scale=60.0
        )

    def test_summary_from_observations_matches_from_timestamps(self):
        observations = [(7.2, 0, "/a"), (1.4, 1, "/b"), (1.4, 2, "/c")]
        summary = summary_from_observations(
            "mac", "dest", observations, time_scale=1.0, max_urls=2
        )
        expected = ActivitySummary.from_timestamps(
            "mac", "dest", [1.4, 1.4, 7.2], time_scale=1.0,
            urls=("/b", "/c"),
        )
        assert summary == expected


class TestSubLinearMemory:
    def _peak_kb(self, records):
        tracemalloc.start()
        tracemalloc.reset_peak()
        records_to_summaries(iter(records))
        _size, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak / 1024.0

    def test_peak_memory_grows_sublinearly_in_record_count(self):
        def build(factor):
            # Extra events land in already-seen one-second bins, so the
            # accumulator state is invariant while records scale by factor.
            return [
                record(minute * 60.0 + repeat / (factor + 1.0),
                       mac=f"m{host}", url=f"/p{repeat}")
                for host in range(4)
                for minute in range(400)
                for repeat in range(factor)
            ]

        base, scaled = build(1), build(4)
        self._peak_kb(base)  # warm allocator/import noise out of the probe
        peak_1x = self._peak_kb(base)
        peak_4x = self._peak_kb(scaled)
        assert len(scaled) == 4 * len(base)
        assert peak_4x < 2.5 * peak_1x, (
            f"peak memory scaled with record count: {peak_1x:.0f} KiB at 1x "
            f"vs {peak_4x:.0f} KiB at 4x"
        )
