"""Public-API surface tests.

A downstream user should be able to rely on the names each package's
``__init__`` exports; these tests pin the surface so accidental removals
fail loudly, and verify that everything in ``__all__`` actually resolves
and carries a docstring.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.filtering",
    "repro.lm",
    "repro.ml",
    "repro.mapreduce",
    "repro.jobs",
    "repro.stages",
    "repro.synthetic",
    "repro.sources",
    "repro.operations",
    "repro.baselines",
    "repro.analysis",
    "repro.utils",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestPublicSurface:
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_package_documented(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__ and package.__doc__.strip()

    def test_public_callables_documented(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in package.__all__:
            obj = getattr(package, name)
            if getattr(obj, "__module__", "") == "typing":
                continue  # type aliases carry no docstring of their own
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, (
            f"{package_name} exports undocumented callables: {undocumented}"
        )


class TestKeyEntryPoints:
    def test_top_level_exports(self):
        import repro

        assert "PeriodicityDetector" in repro.__all__
        assert "BaywatchPipeline" in repro.__all__
        assert repro.__version__

    def test_detector_importable_from_top(self):
        from repro import DetectorConfig, PeriodicityDetector

        detector = PeriodicityDetector(DetectorConfig(seed=0))
        result = detector.detect([0.0, 60.0, 120.0, 180.0, 240.0, 300.0,
                                  360.0, 420.0, 480.0, 540.0])
        assert result.periodic
