"""Front-end parity: one stage graph, identical reports everywhere.

The same synthetic enterprise trace runs through every execution mode —
the in-process :class:`BaywatchPipeline`, the serial
:class:`BaywatchRunner`, a 2-worker engine, and an
interrupt-and-resume sharded run — and must produce *identical*
:class:`PipelineReport` contents: ranked cases, detected cases, funnel
rows, population, and quarantine list.  This is the acceptance test for
the shared :mod:`repro.stages` graph: any funnel-semantics fork between
front ends shows up here as a report mismatch.
"""

import pytest

from repro.filtering import BaywatchPipeline, PipelineConfig
from repro.jobs import BaywatchRunner, IncompleteRunError
from repro.lm.domains import default_scorer
from repro.mapreduce.engine import MapReduceEngine
from repro.synthetic import EnterpriseConfig, EnterpriseSimulator, ImplantSpec

CONFIG = dict(local_whitelist_threshold=0.2, ranking_percentile=0.5)


@pytest.fixture(scope="module")
def records():
    config = EnterpriseConfig(
        n_hosts=10,
        n_sites=20,
        duration=86_400.0 / 8,
        implants=(
            ImplantSpec("zbot", "zeus", n_infected=1, period=120.0),
            ImplantSpec("slowbeacon", "apt", n_infected=1, period=300.0),
        ),
        seed=11,
    )
    trace, _truth = EnterpriseSimulator(config).generate()
    return trace


@pytest.fixture(scope="module")
def scorer():
    return default_scorer()


def report_signature(report):
    """Everything that must agree across front ends, as plain data."""
    return {
        "ranked": [
            (c.source, c.destination, round(c.rank_score, 9))
            for c in report.ranked_cases
        ],
        "detected": sorted(
            (
                c.source,
                c.destination,
                round(c.popularity, 9),
                c.similar_sources,
                round(c.lm_score, 9),
            )
            for c in report.detected_cases
        ),
        "funnel": report.funnel.steps,
        "population": report.population_size,
        "quarantined": [q.key for q in report.quarantined],
    }


@pytest.fixture(scope="module")
def pipeline_report(records, scorer):
    return BaywatchPipeline(
        PipelineConfig(**CONFIG), scorer=scorer
    ).run_records(records)


def test_serial_runner_matches_pipeline(records, scorer, pipeline_report):
    runner_report = BaywatchRunner(
        PipelineConfig(**CONFIG), scorer=scorer
    ).run(records)
    assert report_signature(runner_report) == report_signature(pipeline_report)


def test_two_worker_engine_matches_pipeline(records, scorer, pipeline_report):
    with MapReduceEngine(n_workers=2, min_parallel_records=16) as engine:
        runner_report = BaywatchRunner(
            PipelineConfig(**CONFIG), engine=engine, scorer=scorer
        ).run(records)
    assert report_signature(runner_report) == report_signature(pipeline_report)


def test_thread_engine_matches_pipeline(records, scorer, pipeline_report):
    # Worker threads instead of worker processes: same stage graph, no
    # pickling, still bit-identical output.
    with MapReduceEngine(
        n_workers=2, executor="threads", min_parallel_records=16
    ) as engine:
        runner_report = BaywatchRunner(
            PipelineConfig(**CONFIG), engine=engine, scorer=scorer
        ).run(records)
    assert report_signature(runner_report) == report_signature(pipeline_report)


def test_executor_config_matches_pipeline(records, scorer, pipeline_report):
    # The PipelineConfig.executor knob alone (no explicit engine) must
    # select the backend and leave the report untouched.
    runner = BaywatchRunner(
        PipelineConfig(**CONFIG, executor="threads"), scorer=scorer
    )
    assert runner.engine.executor.name == "threads"
    with runner.engine:
        runner_report = runner.run(records)
    assert report_signature(runner_report) == report_signature(pipeline_report)


def test_shard_queue_engine_matches_pipeline(
    records, scorer, pipeline_report, tmp_path
):
    # The multi-host backend: the coordinator never computes a task
    # itself, two real worker processes drain the queue — and the
    # report is still bit-identical to the in-process pipeline.
    from repro.mapreduce.executors import ShardQueueExecutor
    from repro.mapreduce.testing import WorkerFleet

    queue = str(tmp_path / "ckpt" / "queue")
    executor = ShardQueueExecutor(queue, claim_ttl=5.0, poll_interval=0.02)
    with WorkerFleet(queue, 2, claim_ttl=5.0):
        with MapReduceEngine(
            n_workers=2, executor=executor, min_parallel_records=16
        ) as engine:
            report = BaywatchRunner(
                PipelineConfig(**CONFIG), engine=engine, scorer=scorer
            ).run_sharded(
                records,
                shard_size=4,
                checkpoint_dir=str(tmp_path / "ckpt"),
            )
    assert report_signature(report) == report_signature(pipeline_report)


def test_processes_checkpoint_resumes_under_shard_queue(
    records, scorer, pipeline_report, tmp_path
):
    # The executor is a mechanism, not an input: a run interrupted on
    # the process pool must resume on the shard queue (same checkpoint
    # fingerprint) and finish with the canonical report.
    from repro.mapreduce.testing import WorkerFleet

    checkpoint = str(tmp_path / "ckpt")
    interrupted = BaywatchRunner(
        PipelineConfig(**CONFIG, executor="processes"), scorer=scorer
    )
    with interrupted.engine, pytest.raises(IncompleteRunError):
        interrupted.run_sharded(
            records,
            shard_size=4,
            checkpoint_dir=checkpoint,
            max_shards=2,
        )
    resumed = BaywatchRunner(
        PipelineConfig(**CONFIG, executor="shard-queue"), scorer=scorer
    )
    queue = str(tmp_path / "ckpt" / "queue")
    with WorkerFleet(queue, 2, claim_ttl=5.0):
        with resumed.engine:
            report = resumed.run_sharded(
                records,
                shard_size=4,
                checkpoint_dir=checkpoint,
                resume=True,
            )
    assert report_signature(report) == report_signature(pipeline_report)


def test_interrupted_resumed_sharded_run_matches_pipeline(
    records, scorer, pipeline_report, tmp_path
):
    checkpoint = str(tmp_path / "ckpt")
    interrupted = BaywatchRunner(PipelineConfig(**CONFIG), scorer=scorer)
    with pytest.raises(IncompleteRunError):
        interrupted.run_sharded(
            records,
            shard_size=4,
            checkpoint_dir=checkpoint,
            max_shards=2,
        )
    resumed = BaywatchRunner(PipelineConfig(**CONFIG), scorer=scorer)
    report = resumed.run_sharded(
        records,
        shard_size=4,
        checkpoint_dir=checkpoint,
        resume=True,
    )
    assert report_signature(report) == report_signature(pipeline_report)


def test_pipeline_accepts_iterator_source(records, scorer, pipeline_report):
    streamed = BaywatchPipeline(
        PipelineConfig(**CONFIG), scorer=scorer
    ).run_records(iter(records))
    assert report_signature(streamed) == report_signature(pipeline_report)


def test_batched_pipeline_matches_serial_pipeline(
    records, scorer, pipeline_report
):
    # The batched detection executor must be invisible in the report:
    # the shape-grouped kernels are bit-for-bit equivalent to the
    # per-pair loop, whatever the chunking.
    batched = BaywatchPipeline(
        PipelineConfig(**CONFIG, detection_batch_size=5), scorer=scorer
    ).run_records(records)
    assert report_signature(batched) == report_signature(pipeline_report)


def verdict_signature(records):
    """Everything that must agree across executors, per verdict record."""
    return [
        (
            r.source,
            r.destination,
            r.stage,
            r.kept,
            r.reason,
            r.near_miss,
            tuple(sorted(r.values.items(), key=lambda kv: kv[0])),
        )
        for r in records
    ]


@pytest.mark.parametrize("sample", [1.0, 0.05])
def test_provenance_verdicts_identical_across_executors(
    records, scorer, tmp_path, sample
):
    # The same verdict chains — stage, kept/dropped, reason, near-miss
    # flag, and governing numbers — must come out of the in-process
    # pipeline, the batched pipeline, the serial runner, and an
    # interrupt-and-resumed sharded run, and survive the JSONL
    # round-trip through the checkpoint directory unchanged.
    from repro.obs import ProvenancePolicy, read_provenance

    policy = ProvenancePolicy(sample_early_drops=sample)
    config = dict(CONFIG, provenance=policy)

    base = BaywatchPipeline(
        PipelineConfig(**config), scorer=scorer
    ).run_records(records)
    assert base.provenance, "provenance-enabled run recorded nothing"
    base_sig = verdict_signature(base.provenance)

    batched = BaywatchPipeline(
        PipelineConfig(**config, detection_batch_size=8), scorer=scorer
    ).run_records(records)
    assert verdict_signature(batched.provenance) == base_sig

    runner = BaywatchRunner(
        PipelineConfig(**config), scorer=scorer
    ).run(records)
    assert verdict_signature(runner.provenance) == base_sig

    checkpoint = str(tmp_path / f"ckpt-{sample}")
    with pytest.raises(IncompleteRunError):
        BaywatchRunner(PipelineConfig(**config), scorer=scorer).run_sharded(
            records, shard_size=4, checkpoint_dir=checkpoint, max_shards=2
        )
    sharded = BaywatchRunner(
        PipelineConfig(**config), scorer=scorer
    ).run_sharded(
        records, shard_size=4, checkpoint_dir=checkpoint, resume=True
    )
    assert verdict_signature(sharded.provenance) == base_sig
    assert report_signature(sharded) == report_signature(base)

    from pathlib import Path

    merged = read_provenance(Path(checkpoint))
    assert verdict_signature(merged) == base_sig


def test_provenance_off_records_nothing(records, scorer, pipeline_report):
    assert pipeline_report.provenance == []


def test_batched_sharded_run_with_persisted_cache_matches_pipeline(
    records, scorer, pipeline_report, tmp_path
):
    from pathlib import Path

    from repro.core.permutation import ThresholdCache

    config = PipelineConfig(**CONFIG, detection_batch_size=7)
    checkpoint = str(tmp_path / "ckpt")
    interrupted = BaywatchRunner(config, scorer=scorer)
    with pytest.raises(IncompleteRunError):
        interrupted.run_sharded(
            records,
            shard_size=4,
            checkpoint_dir=checkpoint,
            max_shards=2,
        )
    # The interrupted run persisted its threshold-cache warmth next to
    # the shard checkpoints, and the file round-trips into a cache.
    cache_path = Path(checkpoint) / "threshold-cache.json"
    assert cache_path.is_file()
    assert ThresholdCache().load(cache_path) > 0

    resumed = BaywatchRunner(config, scorer=scorer)
    report = resumed.run_sharded(
        records,
        shard_size=4,
        checkpoint_dir=checkpoint,
        resume=True,
    )
    assert report_signature(report) == report_signature(pipeline_report)


def test_columnar_pipeline_matches_pipeline(records, scorer, pipeline_report):
    # The columnar ingestion plane feeds the same stage graph through
    # the vectorized fold; the report must be bit-identical to the
    # per-record object path.
    from repro.sources.columnar import records_to_chunks

    columnar = BaywatchPipeline(
        PipelineConfig(**CONFIG), scorer=scorer
    ).run_chunks(records_to_chunks(records, chunk_size=256))
    assert report_signature(columnar) == report_signature(pipeline_report)


def test_columnar_shm_sharded_run_matches_pipeline(
    records, scorer, pipeline_report, tmp_path
):
    # Columnar ingestion + shared-memory detection payloads across a
    # 2-worker engine: still the same report, and no /dev/shm residue.
    import os

    from repro.mapreduce.shm import SEGMENT_PREFIX
    from repro.sources.columnar import records_to_chunks

    with MapReduceEngine(n_workers=2, min_parallel_records=16) as engine:
        report = BaywatchRunner(
            PipelineConfig(**CONFIG, use_shared_memory=True),
            engine=engine,
            scorer=scorer,
        ).run_chunks_sharded(
            records_to_chunks(records, chunk_size=256),
            shard_size=4,
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
    assert report_signature(report) == report_signature(pipeline_report)
    if os.path.isdir("/dev/shm"):
        assert not [
            n for n in os.listdir("/dev/shm") if n.startswith(SEGMENT_PREFIX)
        ]


def test_checkpoint_resumes_across_data_planes(
    records, scorer, pipeline_report, tmp_path
):
    # Both ingestion planes produce bit-identical summaries, so their
    # sharded-run fingerprints agree: a checkpoint written by the
    # object plane must resume under the columnar plane (and finish
    # with the canonical report).
    from repro.sources.columnar import records_to_chunks

    checkpoint = str(tmp_path / "ckpt")
    with pytest.raises(IncompleteRunError):
        BaywatchRunner(PipelineConfig(**CONFIG), scorer=scorer).run_sharded(
            records, shard_size=4, checkpoint_dir=checkpoint, max_shards=2
        )
    report = BaywatchRunner(
        PipelineConfig(**CONFIG), scorer=scorer
    ).run_chunks_sharded(
        records_to_chunks(records, chunk_size=128),
        shard_size=4,
        checkpoint_dir=checkpoint,
        resume=True,
    )
    assert report_signature(report) == report_signature(pipeline_report)
