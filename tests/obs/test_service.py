"""Tests for status folding and the HTTP status service."""

import json
import re
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    STATUS_SCHEMA_VERSION,
    EventJournal,
    MetricsRegistry,
    StatusServer,
    build_status,
    render_status,
)


def _event(kind, **fields):
    return {"v": 1, "ts": fields.pop("ts", 100.0), "event": kind, **fields}


class TestBuildStatus:
    def test_empty_journal(self):
        status = build_status([])
        assert status["schema"] == STATUS_SCHEMA_VERSION
        assert status["state"] == "waiting"
        assert status["shards"] == {
            "total": 0, "done": 0, "running": 0, "states": {},
        }

    def test_running_run(self):
        status = build_status([
            _event("run_start", n_shards=4, run_id="r1", ts=10.0),
            _event("shard_start", shard=0, ts=11.0),
            _event("shard_finish", shard=0, pairs=100, detected=3,
                   seconds=2.0, ts=13.0),
            _event("shard_start", shard=1, ts=13.0),
        ])
        assert status["run_id"] == "r1"
        assert status["state"] == "running"
        assert status["shards"]["total"] == 4
        assert status["shards"]["done"] == 1
        assert status["shards"]["running"] == 1
        assert status["pairs"] == {"processed": 100, "detected": 3}
        assert status["throughput"]["pairs_per_second"] == pytest.approx(50.0)
        # 3 shards remain at ~2s each.
        assert status["throughput"]["eta_seconds"] == pytest.approx(6.0)
        assert status["last_event_ts"] == 13.0

    def test_finished_run(self):
        status = build_status([
            _event("run_start", n_shards=1),
            _event("shard_finish", shard=0, pairs=10, seconds=1.0),
            _event("run_finish"),
        ])
        assert status["state"] == "finished"
        assert status["throughput"]["eta_seconds"] == 0.0

    def test_resume_cycle_does_not_double_count_shards(self):
        """shard_finish (run 1) + shard_resumed (run 2) count once."""
        status = build_status([
            _event("run_start", n_shards=3),
            _event("shard_finish", shard=0, pairs=50, seconds=1.0),
            _event("run_suspended", completed=1, total=3),
            _event("run_start", n_shards=3),
            _event("resumed"),
            _event("shard_resumed", shard=0, pairs=50),
            _event("shard_finish", shard=1, pairs=50, seconds=1.0),
            _event("shard_finish", shard=2, pairs=50, seconds=1.0),
            _event("run_finish"),
        ])
        assert status["resumed"] is True
        assert status["state"] == "finished"
        assert status["shards"]["done"] == 3
        # Pairs are only counted from shard_finish events; the resumed
        # shard's pairs were counted by the run that computed it.
        assert status["pairs"]["processed"] == 150

    def test_suspended_run(self):
        status = build_status([
            _event("run_start", n_shards=5),
            _event("shard_finish", shard=0, pairs=10, seconds=1.0),
            _event("run_suspended", completed=1, total=5),
        ])
        assert status["state"] == "suspended"

    def test_issue_counters_and_heartbeats(self):
        status = build_status([
            _event("run_start", n_shards=2),
            _event("heartbeat", worker=111, ts=20.0),
            _event("heartbeat", worker=222, ts=21.0),
            _event("heartbeat", worker=111, ts=25.0),
            _event("retry", shard=0),
            _event("retry", shard=0),
            _event("pool_restart", reason="timeout"),
            _event("quarantine", key=["h", "d"]),
        ])
        assert status["workers"] == {"111": 25.0, "222": 21.0}
        assert status["retries"] == 2
        assert status["pool_restarts"] == 1
        assert status["quarantined"] == 1

    def test_render_status_mentions_the_essentials(self):
        status = build_status([
            _event("run_start", n_shards=2, run_id="r9"),
            _event("shard_finish", shard=0, pairs=10, detected=2,
                   seconds=1.0),
            _event("retry", shard=1),
        ])
        text = render_status(status)
        assert "r9" in text
        assert "1/2" in text
        assert "10 processed" in text
        assert "retries 1" in text


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


PROM_LINE = re.compile(
    r"^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+)$"
)


@pytest.fixture
def server(tmp_path):
    journal = EventJournal.in_dir(tmp_path, run_id="svc1")
    journal.append("run_start", n_shards=2)
    journal.append("shard_finish", shard=0, pairs=64, detected=1,
                   seconds=0.5)
    registry = MetricsRegistry()
    registry.counter("runner.runs").inc()
    registry.gauge("runner.shards_total").set(2)
    registry.histogram("span.run.seconds").observe(1.25)
    with StatusServer(
        journal_path=journal.path, registry=registry, port=0
    ) as status_server:
        yield status_server


class TestStatusServer:
    def test_status_endpoint_folds_the_journal(self, server):
        code, content_type, body = _get(server.url + "/status")
        assert code == 200
        assert content_type.startswith("application/json")
        status = json.loads(body)
        assert status["run_id"] == "svc1"
        assert status["shards"]["total"] == 2
        assert status["shards"]["done"] == 1

    def test_status_sees_new_events_without_restart(self, server, tmp_path):
        EventJournal.in_dir(tmp_path, run_id="svc1").append(
            "shard_finish", shard=1, pairs=64, seconds=0.5
        )
        status = json.loads(_get(server.url + "/status")[2])
        assert status["shards"]["done"] == 2

    def test_metrics_endpoint_is_valid_prometheus_text(self, server):
        code, content_type, body = _get(server.url + "/metrics")
        assert code == 200
        assert content_type.startswith("text/plain")
        assert "# HELP repro_runner_runs_total" in body
        assert "# TYPE repro_runner_runs_total counter" in body
        assert "repro_runner_runs_total 1" in body
        for line in body.splitlines():
            assert PROM_LINE.match(line), f"invalid exposition line: {line!r}"

    def test_events_endpoint_tails_ndjson(self, server):
        code, content_type, body = _get(server.url + "/events?n=1")
        assert code == 200
        assert "ndjson" in content_type
        lines = [line for line in body.splitlines() if line]
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "shard_finish"

    def test_events_bad_count_falls_back(self, server):
        code, _type, body = _get(server.url + "/events?n=bogus")
        assert code == 200
        assert body.strip()

    def test_index_lists_routes(self, server):
        code, _type, body = _get(server.url + "/")
        assert code == 200
        assert "/status" in body and "/metrics" in body

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_server_without_journal_serves_empty_status(self):
        with StatusServer(registry=MetricsRegistry(), port=0) as bare:
            status = json.loads(_get(bare.url + "/status")[2])
        assert status["state"] == "waiting"

    def test_stop_is_idempotent_and_start_returns_port(self, tmp_path):
        status_server = StatusServer(
            journal_path=tmp_path / "events.jsonl", port=0
        )
        port = status_server.start()
        assert port > 0
        assert status_server.start() == port  # already running: same port
        status_server.stop()
        status_server.stop()  # second stop must be a no-op
