"""Distributed tracing: contexts, span records, tree stitching, export."""

import json
import os

import pytest

from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    SpanRecord,
    TraceContext,
    build_trace_tree,
    clear_spans,
    current_span_id,
    current_trace,
    drain_spans,
    new_run_id,
    new_span_id,
    new_trace_id,
    pending_spans,
    record_spans,
    render_trace_tree,
    scoped_registry,
    scoped_trace,
    set_trace,
    span,
    spans_from_jsonl,
    spans_to_jsonl,
    start_trace,
    task_trace_payload,
    to_chrome_trace,
)


@pytest.fixture(autouse=True)
def _clean_trace_state():
    clear_spans()
    set_trace(None)
    yield
    clear_spans()
    set_trace(None)


class TestTraceContext:
    def test_ids_are_distinct(self):
        assert new_trace_id() != new_trace_id()
        assert new_span_id() != new_span_id()
        assert len(new_run_id()) == 12

    def test_start_trace_installs_context(self):
        context = start_trace("run42")
        assert current_trace() is context
        assert context.run_id == "run42"
        assert context.parent_span_id is None

    def test_scoped_trace_restores_previous(self):
        outer = start_trace("outer")
        with scoped_trace(TraceContext(trace_id="t2")) as inner:
            assert current_trace() is inner
        assert current_trace() is outer

    def test_payload_roundtrips_through_pickleable_dict(self):
        context = TraceContext(
            trace_id="t1", parent_span_id="p1", run_id="r1"
        )
        payload = context.to_payload()
        assert TraceContext(**payload) == context

    def test_task_payload_none_without_trace(self):
        assert task_trace_payload() is None

    def test_task_payload_parents_under_open_span(self):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            start_trace("run")
            with span("engine") as open_span:
                payload = task_trace_payload()
                assert payload["parent_span_id"] == open_span.span_id
                assert payload["trace_id"] == current_trace().trace_id


class TestSpanCapture:
    def test_traced_spans_record_parent_links(self):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            start_trace("run")
            with span("outer") as outer:
                with span("inner") as inner:
                    pass
        records = {record.name: record for record in pending_spans()}
        assert records["inner"].parent_id == outer.span_id
        assert records["outer"].parent_id is None
        assert records["inner"].span_id == inner.span_id
        assert records["inner"].pid == os.getpid()
        assert records["inner"].run_id == "run"

    def test_worker_side_root_parents_under_payload(self):
        """A span opened under a shipped context links across processes."""
        registry = MetricsRegistry()
        with scoped_registry(registry):
            start_trace("run")
            with span("engine"):
                payload = task_trace_payload()
        clear_spans()
        # Simulate the worker: fresh thread state, installed payload.
        with scoped_registry(MetricsRegistry()):
            with scoped_trace(TraceContext(**payload)):
                with span("task.reduce"):
                    pass
        (record,) = drain_spans()
        assert record.parent_id == payload["parent_span_id"]
        assert record.trace_id == payload["trace_id"]

    def test_no_records_without_trace(self):
        with scoped_registry(MetricsRegistry()):
            with span("untraced"):
                pass
        assert pending_spans() == []

    def test_no_records_when_registry_disabled(self):
        start_trace("run")
        with scoped_registry(NullRegistry()):
            with span("off"):
                pass
        assert pending_spans() == []

    def test_error_flag_set_on_exception(self):
        with scoped_registry(MetricsRegistry()):
            start_trace("run")
            with pytest.raises(RuntimeError):
                with span("boom"):
                    raise RuntimeError("x")
        (record,) = pending_spans()
        assert record.error is True

    def test_drain_clears_buffer(self):
        with scoped_registry(MetricsRegistry()):
            start_trace("run")
            with span("a"):
                pass
        assert len(drain_spans()) == 1
        assert pending_spans() == []

    def test_record_spans_accepts_dicts(self):
        record = SpanRecord(
            trace_id="t", span_id="s", parent_id=None, name="n",
            path="n", start=1.0, seconds=0.5, pid=123,
        )
        record_spans([record.to_dict()])
        assert pending_spans() == [record]


def _record(span_id, parent_id, name, start=0.0, **kwargs):
    return SpanRecord(
        trace_id=kwargs.pop("trace_id", "t"),
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        path=name,
        start=start,
        seconds=kwargs.pop("seconds", 0.1),
        pid=kwargs.pop("pid", 1),
        **kwargs,
    )


class TestTraceTree:
    def test_single_tree(self):
        records = [
            _record("root", None, "run", start=0.0),
            _record("a", "root", "detect", start=1.0),
            _record("b", "root", "rank", start=2.0),
            _record("c", "a", "task", start=1.5),
        ]
        roots = build_trace_tree(records)
        assert len(roots) == 1
        root = roots[0]
        assert [child.record.name for child in root.children] == [
            "detect", "rank",
        ]
        assert root.children[0].children[0].record.name == "task"

    def test_missing_parent_becomes_orphan_root(self):
        """Spans whose parent died with a crashed worker still render."""
        records = [
            _record("root", None, "run"),
            _record("lost", "vanished-with-worker", "task.reduce"),
        ]
        roots = build_trace_tree(records)
        assert len(roots) == 2
        orphan = [node for node in roots if node.record.span_id == "lost"][0]
        assert orphan.orphaned is True
        assert [n for n in roots if n.record.span_id == "root"][0].orphaned \
            is False

    def test_duplicate_span_ids_keep_first(self):
        records = [
            _record("root", None, "run", seconds=1.0),
            _record("root", None, "run", seconds=9.0),
        ]
        roots = build_trace_tree(records)
        assert len(roots) == 1
        assert roots[0].record.seconds == 1.0

    def test_children_sorted_by_start(self):
        records = [
            _record("root", None, "run"),
            _record("late", "root", "second", start=5.0),
            _record("early", "root", "first", start=1.0),
        ]
        (root,) = build_trace_tree(records)
        assert [child.record.name for child in root.children] == [
            "first", "second",
        ]


class TestTraceExport:
    def test_render_tree_shows_header_names_and_orphans(self):
        records = [
            _record("root", None, "run", run_id="myrun", pid=10),
            _record("a", "root", "detect", start=1.0, pid=20),
            _record("lost", "gone", "task.reduce", start=2.0, pid=30),
        ]
        text = render_trace_tree(records)
        assert "myrun" in text
        assert "run" in text and "detect" in text
        assert "(orphaned)" in text
        assert "3 processes" in text or "pid" in text

    def test_render_empty_is_a_note(self):
        assert render_trace_tree([]).strip() != ""

    def test_jsonl_roundtrip(self):
        records = [
            _record("root", None, "run"),
            _record("a", "root", "detect", start=1.0),
        ]
        assert spans_from_jsonl(spans_to_jsonl(records)) == records

    def test_jsonl_skips_garbage_lines(self):
        text = spans_to_jsonl([_record("root", None, "run")]) + "garbage\n"
        assert len(spans_from_jsonl(text)) == 1

    def test_chrome_trace_is_loadable_complete_events(self):
        records = [
            _record("root", None, "run", start=10.0, seconds=2.0),
            _record("a", "root", "detect", start=10.5, seconds=0.25, pid=2),
        ]
        payload = json.loads(to_chrome_trace(records))
        events = payload["traceEvents"]
        assert len(events) == 2
        assert all(event["ph"] == "X" for event in events)
        detect = [e for e in events if e["name"] == "detect"][0]
        assert detect["dur"] == pytest.approx(0.25 * 1e6)
        assert detect["pid"] == 2
        assert detect["args"]["parent_id"] == "root"
