"""Tests for the durable event journal: appends, concurrency, resume."""

import json
import os
import pickle
import subprocess
import sys

from repro.obs import (
    JOURNAL_FILE,
    JOURNAL_SCHEMA_VERSION,
    EventJournal,
    get_journal,
    journal_emit,
    read_events,
    scoped_journal,
    tail_events,
)


class TestAppendAndRead:
    def test_roundtrip_with_schema_fields(self, tmp_path):
        journal = EventJournal.in_dir(tmp_path, run_id="run01")
        journal.append("shard_finish", shard=3, pairs=256, seconds=1.5)
        events = journal.events()
        assert len(events) == 1
        event = events[0]
        assert event["v"] == JOURNAL_SCHEMA_VERSION
        assert event["event"] == "shard_finish"
        assert event["run_id"] == "run01"
        assert event["pid"] == os.getpid()
        assert event["shard"] == 3
        assert event["pairs"] == 256
        assert event["ts"] > 0

    def test_in_dir_creates_directory_and_file_name(self, tmp_path):
        journal = EventJournal.in_dir(tmp_path / "deep" / "ckpt")
        journal.append("run_start")
        assert journal.path == tmp_path / "deep" / "ckpt" / JOURNAL_FILE
        assert journal.path.exists()

    def test_none_fields_are_omitted(self, tmp_path):
        journal = EventJournal.in_dir(tmp_path)
        record = journal.append("retry", phase=None, shard=2)
        assert "phase" not in record
        assert journal.events()[0] == {
            key: value for key, value in record.items()
        }

    def test_non_json_values_are_coerced(self, tmp_path):
        journal = EventJournal.in_dir(tmp_path)
        journal.append("quarantine", key=("host", "evil.example"))
        event = journal.events()[0]
        assert event["key"] == ["host", "evil.example"]

    def test_appends_accumulate_in_order(self, tmp_path):
        journal = EventJournal.in_dir(tmp_path)
        for index in range(5):
            journal.append("shard_start", shard=index)
        assert [event["shard"] for event in journal.events()] == [0, 1, 2, 3, 4]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_events(tmp_path / "absent.jsonl") == []

    def test_tail(self, tmp_path):
        journal = EventJournal.in_dir(tmp_path)
        for index in range(10):
            journal.append("heartbeat", worker=index)
        assert [e["worker"] for e in journal.tail(3)] == [7, 8, 9]
        assert tail_events(journal.path, 0) == []


class TestTornLines:
    def test_torn_trailing_line_is_skipped(self, tmp_path):
        journal = EventJournal.in_dir(tmp_path)
        journal.append("run_start", n_shards=4)
        journal.append("shard_finish", shard=0)
        # A writer killed mid-append leaves a partial line behind.
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "event": "shard_fin')
        events = journal.events()
        assert [event["event"] for event in events] == [
            "run_start", "shard_finish",
        ]

    def test_blank_and_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '\n{"event": "ok"}\nnot json at all\n[1, 2]\n',
            encoding="utf-8",
        )
        events = read_events(path)
        assert len(events) == 1
        assert events[0]["event"] == "ok"


class TestPickling:
    def test_pickled_journal_appends_to_same_file(self, tmp_path):
        journal = EventJournal.in_dir(tmp_path, run_id="run02")
        journal.append("run_start")
        clone = pickle.loads(pickle.dumps(journal))
        assert clone.path == journal.path
        assert clone.run_id == "run02"
        clone.append("heartbeat", worker=1)
        events = journal.events()
        assert [event["event"] for event in events] == [
            "run_start", "heartbeat",
        ]


class TestCurrentJournal:
    def test_emit_without_journal_is_noop(self):
        assert get_journal() is None
        journal_emit("run_start", n_shards=4)  # must not raise

    def test_scoped_journal_installs_and_restores(self, tmp_path):
        journal = EventJournal.in_dir(tmp_path)
        with scoped_journal(journal) as active:
            assert active is journal
            assert get_journal() is journal
            journal_emit("shard_start", shard=0)
        assert get_journal() is None
        assert journal.events()[0]["event"] == "shard_start"

    def test_scoped_journal_nests(self, tmp_path):
        outer = EventJournal.in_dir(tmp_path / "outer")
        inner = EventJournal.in_dir(tmp_path / "inner")
        with scoped_journal(outer):
            with scoped_journal(inner):
                journal_emit("stage", stage="detect")
            journal_emit("stage", stage="rank")
        assert outer.events()[0]["stage"] == "rank"
        assert inner.events()[0]["stage"] == "detect"


_WRITER_SCRIPT = """
import sys
from repro.obs import EventJournal

path, writer, count = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
journal = EventJournal(path, run_id="concurrent")
for seq in range(count):
    journal.append("heartbeat", worker=writer, seq=seq, pad="x" * 200)
"""


class TestConcurrentWriters:
    def test_multiprocess_appends_have_no_torn_lines(self, tmp_path):
        """N processes x M events into one file: every line stays whole.

        The padding makes each record a few hundred bytes so interleaved
        buffered writes would tear visibly; the single ``os.write`` on an
        ``O_APPEND`` descriptor must keep every line intact.
        """
        path = tmp_path / "events.jsonl"
        n_writers, n_events = 4, 50
        procs = [
            subprocess.Popen(
                [
                    sys.executable, "-c", _WRITER_SCRIPT,
                    str(path), str(writer), str(n_events),
                ],
                env={**os.environ, "PYTHONPATH": _repro_pythonpath()},
            )
            for writer in range(n_writers)
        ]
        for proc in procs:
            assert proc.wait(timeout=60) == 0

        # Every raw line must parse — no torn or interleaved bytes.
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == n_writers * n_events
        records = [json.loads(line) for line in lines]

        # The merged stream is coherent: every writer's full sequence
        # is present exactly once.
        by_writer = {}
        for record in records:
            by_writer.setdefault(record["worker"], []).append(record["seq"])
        assert set(by_writer) == set(range(n_writers))
        for sequence in by_writer.values():
            assert sorted(sequence) == list(range(n_events))

    def test_concurrent_stream_reads_back_as_resume_would(self, tmp_path):
        """read_events over the concurrent file yields every record."""
        path = tmp_path / "events.jsonl"
        procs = [
            subprocess.Popen(
                [
                    sys.executable, "-c", _WRITER_SCRIPT,
                    str(path), str(writer), "20",
                ],
                env={**os.environ, "PYTHONPATH": _repro_pythonpath()},
            )
            for writer in range(3)
        ]
        for proc in procs:
            assert proc.wait(timeout=60) == 0
        events = read_events(path)
        assert len(events) == 60
        assert all(event["run_id"] == "concurrent" for event in events)


def _repro_pythonpath() -> str:
    """PYTHONPATH for subprocesses: wherever ``repro`` imports from."""
    import repro

    package_dir = os.path.dirname(os.path.dirname(repro.__file__))
    existing = os.environ.get("PYTHONPATH", "")
    return package_dir + (os.pathsep + existing if existing else "")
