"""Decision-provenance unit tests: policy, recorder, store, CLI."""

import json
import math

import pytest

from repro.cli import main
from repro.obs.provenance import (
    PROVENANCE_FILE,
    PROVENANCE_SCHEMA_VERSION,
    ProvenancePolicy,
    ProvenanceRecorder,
    ProvenanceSchemaError,
    VerdictRecord,
    audit_report,
    chain_outcome,
    clean_values,
    diff_runs,
    group_chains,
    pair_sample_key,
    read_provenance,
    records_from_jsonl,
    records_to_jsonl,
    render_audit,
    render_diff,
    render_explain,
    write_provenance,
)


def _chain(source="h1", destination="evil.example", *, drop_at=None,
           near_miss_at=None):
    stages = ["global_whitelist", "local_whitelist", "min_events",
              "spectral", "pruning", "acf", "token_filter", "novelty",
              "ranking"]
    out = []
    for stage in stages:
        dropped = stage == drop_at
        out.append(VerdictRecord(
            source=source, destination=destination, stage=stage,
            kept=not dropped,
            reason=f"{stage}:reason" if dropped else "",
            near_miss=stage == near_miss_at,
        ))
        if dropped:
            break
    return out


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProvenancePolicy(sample_early_drops=1.5)
        with pytest.raises(ValueError):
            ProvenancePolicy(sample_early_drops=-0.1)
        with pytest.raises(ValueError):
            ProvenancePolicy(near_miss_epsilon=-1.0)

    def test_pair_sampling_is_deterministic_and_bounded(self):
        policy = ProvenancePolicy(sample_early_drops=0.5)
        first = [policy.pair_sampled("h", f"d{i}") for i in range(200)]
        second = [policy.pair_sampled("h", f"d{i}") for i in range(200)]
        assert first == second
        rate = sum(first) / len(first)
        assert 0.3 < rate < 0.7
        assert not any(
            ProvenancePolicy(sample_early_drops=0.0).pair_sampled("h", f"d{i}")
            for i in range(50)
        )
        assert all(
            ProvenancePolicy(sample_early_drops=1.0).pair_sampled("h", f"d{i}")
            for i in range(50)
        )

    def test_sample_key_uniform_range(self):
        keys = [pair_sample_key("a", f"b{i}") for i in range(100)]
        assert all(0.0 <= k < 1.0 for k in keys)
        assert len(set(keys)) == len(keys)

    def test_value_near_miss_relative(self):
        policy = ProvenancePolicy(near_miss_epsilon=0.1)
        assert policy.value_near_miss(95.0, 100.0)
        assert not policy.value_near_miss(80.0, 100.0)
        # Small cutoffs use an absolute epsilon floor of eps * 1.0.
        assert policy.value_near_miss(0.05, 0.01)
        assert not policy.value_near_miss(float("nan"), 1.0)
        assert not policy.value_near_miss(1.0, float("inf"))

    def test_margin_near_miss(self):
        policy = ProvenancePolicy(near_miss_epsilon=0.1)
        assert policy.margin_near_miss(-0.05, 0.5)
        assert policy.margin_near_miss(0.05, 0.5)
        assert not policy.margin_near_miss(5.0, 0.5)
        assert not policy.margin_near_miss(float("nan"), 0.5)


class TestRecorder:
    def test_survivor_chain_always_stored(self):
        recorder = ProvenanceRecorder(ProvenancePolicy(sample_early_drops=0.0))
        recorder.extend(_chain())
        records = recorder.drain()
        assert len(records) == 9
        assert all(r.kept for r in records)

    def test_unsampled_early_drop_is_forgotten(self):
        policy = ProvenancePolicy(sample_early_drops=0.0)
        recorder = ProvenanceRecorder(policy)
        recorder.extend(_chain(drop_at="local_whitelist"))
        assert recorder.drain() == []

    def test_near_miss_drop_is_stored(self):
        policy = ProvenancePolicy(sample_early_drops=0.0)
        recorder = ProvenanceRecorder(policy)
        recorder.extend(_chain(drop_at="ranking", near_miss_at="ranking"))
        records = recorder.drain()
        assert records and not records[-1].kept

    def test_sampled_drop_is_stored(self):
        recorder = ProvenanceRecorder(ProvenancePolicy(sample_early_drops=1.0))
        recorder.extend(_chain(drop_at="global_whitelist"))
        assert len(recorder.drain()) == 1

    def test_discard_forgets_even_survivors(self):
        recorder = ProvenanceRecorder(ProvenancePolicy(sample_early_drops=1.0))
        recorder.extend(_chain()[:4])
        recorder.discard("h1", "evil.example")
        assert recorder.drain() == []

    def test_required_pairs_are_open_near_miss_chains(self):
        recorder = ProvenanceRecorder(ProvenancePolicy(sample_early_drops=0.0))
        recorder.extend(_chain("h1", "a", near_miss_at="local_whitelist")[:3])
        recorder.extend(_chain("h2", "b")[:3])
        assert recorder.required_pairs() == frozenset({("h1", "a")})

    def test_drain_sorts_canonically(self):
        recorder = ProvenanceRecorder(ProvenancePolicy(sample_early_drops=1.0))
        recorder.extend(_chain("h2", "z", drop_at="min_events"))
        recorder.extend(_chain("h1", "a", drop_at="min_events"))
        records = recorder.drain()
        keys = [(r.source, r.destination, r.order) for r in records]
        assert keys == sorted(keys)
        assert recorder.drain() == []


class TestStore:
    def test_clean_values_strips_non_finite(self):
        import numpy as np

        cleaned = clean_values({
            "score": np.float64(1.5),
            "nan": float("nan"),
            "inf": float("inf"),
            "periods": (60.0, float("nan")),
            "n": 3,
        })
        assert cleaned == {
            "score": 1.5, "nan": None, "inf": None,
            "periods": [60.0, None], "n": 3,
        }

    def test_jsonl_round_trip(self):
        records = _chain(drop_at="ranking", near_miss_at="ranking")
        assert records_from_jsonl(records_to_jsonl(records)) == records

    def test_torn_trailing_line_is_skipped(self):
        text = records_to_jsonl(_chain()[:2]) + '{"v": 1, "source": "tr'
        assert len(records_from_jsonl(text)) == 2

    def test_newer_schema_raises_one_liner(self):
        text = json.dumps({
            "v": PROVENANCE_SCHEMA_VERSION + 1, "source": "h",
            "destination": "d", "stage": "acf", "kept": True,
        })
        with pytest.raises(ProvenanceSchemaError, match="upgrade repro"):
            records_from_jsonl(text)

    def test_corrupt_record_raises(self):
        with pytest.raises(ProvenanceSchemaError, match="missing field"):
            records_from_jsonl('{"v": 1, "source": "h"}')

    def test_write_and_read_file_and_dir(self, tmp_path):
        records = _chain()
        path = write_provenance(tmp_path / "store" / PROVENANCE_FILE, records)
        assert read_provenance(path) == records
        assert read_provenance(tmp_path / "store") == records

    def test_read_missing_store_message(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no provenance"):
            read_provenance(tmp_path / "nope")


class TestAnalytics:
    def test_chain_outcomes(self):
        assert chain_outcome(_chain()) == ("reported", "")
        assert chain_outcome(_chain(drop_at="spectral")) == (
            "dropped", "spectral"
        )
        assert chain_outcome(_chain()[:3]) == ("undecided", "min_events")

    def test_group_chains(self):
        records = _chain("h1", "a") + _chain("h2", "b", drop_at="spectral")
        chains = group_chains(records)
        assert set(chains) == {("h1", "a"), ("h2", "b")}

    def test_render_explain_shows_all_steps_and_outcome(self):
        text = render_explain(_chain())
        for step in "12345678":
            assert f"step  {step}" in text
        assert "=> REPORTED" in text
        dropped = render_explain(_chain(drop_at="pruning"))
        assert "DROP" in dropped
        assert "=> DROPPED at step 4" in dropped

    def test_audit_report_counts_and_json(self):
        records = (
            _chain("h1", "a")
            + _chain("h2", "b", drop_at="local_whitelist")
            + _chain("h3", "c", drop_at="ranking", near_miss_at="ranking")
        )
        audit = audit_report(records)
        assert audit["outcomes"] == {
            "reported": 1, "dropped": 2, "undecided": 0,
        }
        assert audit["stages"]["local_whitelist"]["dropped"] == 1
        assert audit["near_misses"]
        json.dumps(audit)  # must be JSON-able for --json
        assert "per-stage decisions" in render_audit(audit)

    def test_diff_runs_detects_drift(self):
        a = _chain("h1", "a") + _chain("h2", "b")
        b = _chain("h1", "a", drop_at="ranking") + _chain("h3", "c")
        diff = diff_runs(a, b)
        assert [
            (entry["source"], entry["destination"])
            for entry in diff["changed"]
        ] == [("h1", "a")]
        assert diff["changed"][0]["a"]["outcome"] == "reported"
        assert diff["changed"][0]["b"]["outcome"] == "dropped"
        assert diff["only_a"] == [{"source": "h2", "destination": "b"}]
        assert diff["only_b"] == [{"source": "h3", "destination": "c"}]
        assert "changed outcome: 1" in render_diff(diff)
        same = diff_runs(a, a)
        assert not same["changed"] and not same["only_a"]


class TestCli:
    @pytest.fixture
    def store(self, tmp_path):
        records = (
            _chain("h1", "evil.example")
            + _chain("h2", "benign.example", drop_at="local_whitelist")
        )
        write_provenance(tmp_path / PROVENANCE_FILE, records)
        return tmp_path

    def test_explain_found(self, store, capsys):
        assert main(["explain", "h1", "evil.example", str(store)]) == 0
        out = capsys.readouterr().out
        assert "=> REPORTED" in out

    def test_explain_absent_pair_hints_sampling(self, store, capsys):
        assert main(["explain", "h9", "gone.example", str(store)]) == 1
        assert "--provenance-sample" in capsys.readouterr().err

    def test_explain_missing_store(self, tmp_path, capsys):
        assert main(["explain", "a", "b", str(tmp_path / "none")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_audit_text_and_json(self, store, capsys):
        assert main(["audit", str(store)]) == 0
        assert "provenance audit" in capsys.readouterr().out
        assert main(["audit", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pairs"] == 2

    def test_diff_runs_exit_codes(self, store, tmp_path, capsys):
        other = tmp_path / "other"
        write_provenance(
            other / PROVENANCE_FILE, _chain("h1", "evil.example")
        )
        assert main(["diff-runs", str(store), str(store)]) == 0
        capsys.readouterr()
        assert main(["diff-runs", str(store), str(other)]) == 1
        capsys.readouterr()
        assert main([
            "diff-runs", str(store), str(other), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["only_a"]

    def test_newer_schema_store_one_line_error(self, tmp_path, capsys):
        path = tmp_path / PROVENANCE_FILE
        path.write_text(
            json.dumps({
                "v": PROVENANCE_SCHEMA_VERSION + 1, "source": "h",
                "destination": "d", "stage": "acf", "kept": True,
            }) + "\n",
            encoding="utf-8",
        )
        assert main(["audit", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "upgrade repro" in err
        assert "Traceback" not in err
