"""Tests for the metrics registry: instruments, merge, no-op mode."""

import pickle
import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.obs.registry import (
    HISTOGRAM_SAMPLE_LIMIT,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    scoped_registry,
    set_registry,
    telemetry_enabled,
)


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        assert dict(registry.counters()) == {"a": 5}

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        registry.gauge("g").set(7.5)
        assert dict(registry.gauges()) == {"g": 7.5}

    def test_timer_observes_seconds(self):
        registry = MetricsRegistry()
        with registry.timer("t.seconds"):
            pass
        histogram = registry.histogram("t.seconds")
        assert histogram.count == 1
        assert 0.0 <= histogram.total < 1.0


class TestHistogramQuantiles:
    def test_exact_moments(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in [5.0, 1.0, 3.0]:
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 9.0
        assert histogram.min == 1.0
        assert histogram.max == 5.0
        assert histogram.mean == pytest.approx(3.0)

    def test_quantiles_on_known_distribution(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 100.0
        assert histogram.quantile(0.5) == pytest.approx(50.5)
        assert histogram.percentiles()["p95"] == pytest.approx(95.05)
        assert histogram.percentiles()["p99"] == pytest.approx(99.01)

    def test_quantile_interpolates(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        histogram.observe(0.0)
        histogram.observe(10.0)
        assert histogram.quantile(0.25) == pytest.approx(2.5)

    def test_empty_histogram_is_safe(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.quantile(0.5) == 0.0
        assert histogram.mean == 0.0

    def test_invalid_quantile_rejected(self):
        histogram = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_sample_cap_keeps_moments_exact(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        n = HISTOGRAM_SAMPLE_LIMIT + 100
        for _ in range(n):
            histogram.observe(1.0)
        assert histogram.count == n
        assert histogram.total == pytest.approx(float(n))
        assert len(histogram.samples) == HISTOGRAM_SAMPLE_LIMIT


def _child_work(index):
    """Worker: record into a fresh registry, return its snapshot."""
    registry = MetricsRegistry()
    registry.counter("work.items").inc(10)
    registry.gauge("work.index").set(index)
    for value in range(index + 1):
        registry.histogram("work.latency").observe(float(value))
    return registry.snapshot()


class TestMerge:
    def test_merge_counters_add(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        parent.counter("c").inc(2)
        child.counter("c").inc(3)
        child.counter("only_child").inc(1)
        parent.merge(child.snapshot())
        assert dict(parent.counters()) == {"c": 5, "only_child": 1}

    def test_merge_histograms_combine_moments_and_samples(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        parent.histogram("h").observe(1.0)
        child.histogram("h").observe(3.0)
        child.histogram("h").observe(5.0)
        parent.merge_registry(child)
        histogram = parent.histogram("h")
        assert histogram.count == 3
        assert histogram.total == 9.0
        assert histogram.min == 1.0
        assert histogram.max == 5.0
        assert sorted(histogram.samples) == [1.0, 3.0, 5.0]

    def test_snapshot_is_picklable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(2.0)
        snapshot = pickle.loads(pickle.dumps(registry.snapshot()))
        other = MetricsRegistry()
        other.merge(snapshot)
        assert dict(other.counters()) == {"c": 1}

    def test_merge_across_processes(self):
        parent = MetricsRegistry()
        with ProcessPoolExecutor(max_workers=2) as pool:
            for snapshot in pool.map(_child_work, range(4)):
                parent.merge(snapshot)
        assert dict(parent.counters()) == {"work.items": 40}
        histogram = parent.histogram("work.latency")
        assert histogram.count == 1 + 2 + 3 + 4
        assert histogram.max == 3.0

    def test_threaded_increments_are_not_lost(self):
        registry = MetricsRegistry()

        def hammer():
            counter = registry.counter("c")
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("c").value == 8000


class TestNoOpMode:
    def test_default_registry_is_null(self):
        import os

        if os.environ.get("REPRO_TELEMETRY", "").strip() not in ("", "0", "false"):
            pytest.skip("REPRO_TELEMETRY is set in this environment")
        assert isinstance(get_registry(), NullRegistry)
        assert not telemetry_enabled()

    def test_null_registry_records_nothing(self):
        registry = NullRegistry()
        registry.counter("c").inc(5)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(2.0)
        with registry.timer("t"):
            pass
        assert registry.is_empty()
        assert list(registry.counters()) == []
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_null_merge_is_a_no_op(self):
        real = MetricsRegistry()
        real.counter("c").inc()
        NULL_REGISTRY.merge(real.snapshot())
        assert NULL_REGISTRY.is_empty()

    def test_scoped_registry_restores_previous(self):
        registry = MetricsRegistry()
        before = get_registry()
        with scoped_registry(registry) as active:
            assert active is registry
            assert get_registry() is registry
            assert telemetry_enabled()
        assert get_registry() is before

    def test_set_registry_none_disables(self):
        previous = set_registry(MetricsRegistry())
        try:
            assert telemetry_enabled()
            set_registry(None)
            assert not telemetry_enabled()
        finally:
            set_registry(previous)
