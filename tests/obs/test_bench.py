"""Tests for the benchmark harness and regression comparator."""

import json

import pytest

from repro.obs.bench import (
    Benchmark,
    BenchReport,
    BenchResult,
    BenchRunner,
    bench_path,
    compare_reports,
    host_fingerprint,
    render_bench_report,
    render_comparison,
)
from repro.obs.registry import get_registry


class FakeClock:
    """A deterministic clock advancing by a scripted step per call."""

    def __init__(self, step: float = 0.5) -> None:
        self.step = step
        self.now = 0.0

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def _result(name: str, mean: float) -> BenchResult:
    return BenchResult(
        name=name,
        repeats=3,
        warmup=1,
        events=10,
        seconds={"mean": mean, "min": mean, "max": mean, "total": 3 * mean,
                 "p50": mean, "p95": mean},
        samples=[mean] * 3,
        events_per_second=10 / mean,
    )


def _report(suite: str, means: dict, **fingerprint) -> BenchReport:
    return BenchReport(
        suite=suite,
        created=123.0,
        fingerprint=fingerprint,
        config={"repeats": 3, "warmup": 1},
        results=[_result(name, mean) for name, mean in means.items()],
    )


class TestBenchRunner:
    def test_deterministic_with_fake_clock(self):
        calls = []
        bench = Benchmark("unit.counted", lambda: calls.append(1) or 7)
        runner = BenchRunner(
            repeats=3, warmup=2, clock=FakeClock(0.5), trace_memory=False
        )
        report = runner.run("unit", [bench])
        # 2 warmups + 3 timed iterations, no memory probe.
        assert len(calls) == 5
        result = report.results[0]
        # Each timed iteration spans exactly one clock step (0.5 s):
        # start tick and stop tick are consecutive calls.
        assert result.samples == [0.5, 0.5, 0.5]
        assert result.seconds["mean"] == pytest.approx(0.5)
        assert result.seconds["p50"] == pytest.approx(0.5)
        assert result.seconds["p95"] == pytest.approx(0.5)
        assert result.events == 7
        assert result.events_per_second == pytest.approx(7 / 0.5)
        assert result.peak_tracemalloc_kb is None

    def test_memory_probe_runs_one_extra_iteration(self):
        calls = []
        bench = Benchmark("unit.mem", lambda: calls.append(1) or 1)
        runner = BenchRunner(repeats=1, warmup=0, trace_memory=True)
        report = runner.run("unit", [bench])
        assert len(calls) == 2  # one timed + one memory probe
        assert report.results[0].peak_tracemalloc_kb is not None
        assert report.results[0].peak_tracemalloc_kb >= 0.0

    def test_captures_counters_from_benchmarked_code(self):
        def work():
            get_registry().counter("unit.cache.hits").inc(3)
            return 1

        runner = BenchRunner(repeats=2, warmup=0, trace_memory=False)
        report = runner.run("unit", [Benchmark("unit.counting", work)])
        assert report.results[0].counters["unit.cache.hits"] == 6

    def test_cleanup_runs_even_on_failure(self):
        cleaned = []

        def boom():
            raise RuntimeError("broken bench")

        bench = Benchmark("unit.boom", boom, cleanup=lambda: cleaned.append(1))
        runner = BenchRunner(repeats=1, warmup=0, trace_memory=False)
        with pytest.raises(RuntimeError):
            runner.run("unit", [bench])
        assert cleaned == [1]

    def test_profile_attaches_hotspots(self):
        def work():
            return sum(i * i for i in range(5000))

        runner = BenchRunner(
            repeats=1, warmup=0, trace_memory=False, profile="cprofile"
        )
        report = runner.run("unit", [Benchmark("unit.hot", work)])
        hotspots = report.results[0].hotspots
        assert hotspots
        assert all("site" in row and "tottime" in row for row in hotspots)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BenchRunner(repeats=0)
        with pytest.raises(ValueError):
            BenchRunner(warmup=-1)
        with pytest.raises(ValueError):
            BenchRunner(profile="perf")

    def test_metrics_hook_derives_pairs_per_second(self):
        bench = Benchmark(
            "unit.metrics",
            lambda: 1,
            metrics=lambda: {"pairs": 100.0, "window_days": 30.0},
        )
        runner = BenchRunner(
            repeats=2, warmup=0, clock=FakeClock(0.5), trace_memory=False
        )
        result = runner.run("unit", [bench]).results[0]
        assert result.metrics["pairs"] == 100.0
        assert result.metrics["window_days"] == 30.0
        # mean is 0.5 s with the fake clock, so 100 pairs -> 200/s.
        assert result.metrics["pairs_per_second"] == pytest.approx(200.0)

    def test_metrics_hook_does_not_override_explicit_rate(self):
        bench = Benchmark(
            "unit.rate",
            lambda: 1,
            metrics=lambda: {"pairs": 10.0, "pairs_per_second": 42.0},
        )
        runner = BenchRunner(
            repeats=1, warmup=0, clock=FakeClock(0.5), trace_memory=False
        )
        result = runner.run("unit", [bench]).results[0]
        assert result.metrics["pairs_per_second"] == 42.0

    def test_no_metrics_hook_leaves_map_empty(self):
        runner = BenchRunner(repeats=1, warmup=0, trace_memory=False)
        report = runner.run("unit", [Benchmark("unit.plain", lambda: 1)])
        assert report.results[0].metrics == {}


class TestBenchReport:
    def test_round_trip_through_file(self, tmp_path):
        report = _report("unit", {"a": 0.5, "b": 1.0}, git_sha="abc")
        path = report.write(tmp_path)
        assert path == bench_path("unit", tmp_path)
        assert path.name == "BENCH_unit.json"
        loaded = BenchReport.load(path)
        assert loaded.suite == "unit"
        assert loaded.fingerprint["git_sha"] == "abc"
        assert loaded.result("a").seconds["mean"] == pytest.approx(0.5)
        assert loaded.result("missing") is None

    def test_json_envelope_keys(self, tmp_path):
        path = _report("unit", {"a": 0.5}).write(tmp_path)
        payload = json.loads(path.read_text())
        for key in ("schema", "kind", "suite", "created", "fingerprint",
                    "config", "results"):
            assert key in payload
        assert payload["kind"] == "bench"

    def test_render_contains_rows(self):
        text = render_bench_report(_report("unit", {"a": 0.5}))
        assert "bench suite 'unit'" in text
        assert "a" in text

    def test_metrics_round_trip_through_file(self, tmp_path):
        report = _report("unit", {"a": 0.5})
        report.results[0].metrics.update(
            {"pairs": 1000.0, "state_cache_hit_rate": 0.75}
        )
        loaded = BenchReport.load(report.write(tmp_path))
        assert loaded.result("a").metrics == {
            "pairs": 1000.0,
            "state_cache_hit_rate": 0.75,
        }

    def test_empty_metrics_omitted_from_envelope(self, tmp_path):
        path = _report("unit", {"a": 0.5}).write(tmp_path)
        payload = json.loads(path.read_text())
        assert "metrics" not in payload["results"][0]

    def test_render_shows_metrics_line(self):
        report = _report("unit", {"a": 0.5})
        report.results[0].metrics["pairs_per_second"] = 123.0
        assert "pairs_per_second" in render_bench_report(report)


class TestHostFingerprint:
    def test_has_identifying_fields(self):
        fp = host_fingerprint()
        assert fp["python"]
        assert fp["platform"]
        assert "git_sha" in fp


class TestCompareReports:
    def test_identical_reports_pass(self):
        base = _report("unit", {"a": 1.0, "b": 2.0})
        comparison = compare_reports(base, base, tolerance=0.10)
        assert comparison.ok
        assert all(d.status == "pass" for d in comparison.deltas)

    def test_improvement_passes(self):
        base = _report("unit", {"a": 1.0})
        cand = _report("unit", {"a": 0.5})
        assert compare_reports(base, cand, tolerance=0.10).ok

    def test_small_slowdown_warns_but_passes(self):
        base = _report("unit", {"a": 1.0})
        cand = _report("unit", {"a": 1.07})
        comparison = compare_reports(base, cand, tolerance=0.10)
        assert comparison.ok
        assert comparison.deltas[0].status == "warn"

    def test_regression_beyond_tolerance_fails(self):
        base = _report("unit", {"a": 1.0, "b": 1.0})
        cand = _report("unit", {"a": 1.5, "b": 1.0})
        comparison = compare_reports(base, cand, tolerance=0.10)
        assert not comparison.ok
        assert [d.name for d in comparison.regressions] == ["a"]

    def test_tolerance_is_configurable(self):
        base = _report("unit", {"a": 1.0})
        cand = _report("unit", {"a": 1.5})
        assert not compare_reports(base, cand, tolerance=0.10).ok
        assert compare_reports(base, cand, tolerance=0.60).ok

    def test_new_and_missing_do_not_fail_the_gate(self):
        base = _report("unit", {"a": 1.0, "gone": 1.0})
        cand = _report("unit", {"a": 1.0, "fresh": 1.0})
        comparison = compare_reports(base, cand, tolerance=0.10)
        assert comparison.ok
        statuses = {d.name: d.status for d in comparison.deltas}
        assert statuses["gone"] == "missing"
        assert statuses["fresh"] == "new"

    def test_fingerprint_drift_is_noted(self):
        base = _report("unit", {"a": 1.0}, git_sha="aaa")
        cand = _report("unit", {"a": 1.0}, git_sha="bbb")
        comparison = compare_reports(base, cand)
        assert any("git_sha" in note for note in comparison.fingerprint_notes)
        assert "fingerprint differs" in render_comparison(comparison)

    def test_render_marks_failures(self):
        base = _report("unit", {"a": 1.0})
        cand = _report("unit", {"a": 2.0})
        text = render_comparison(compare_reports(base, cand, tolerance=0.10))
        assert "FAIL" in text
        assert "+100.0%" in text

    def test_rejects_non_positive_tolerance(self):
        base = _report("unit", {"a": 1.0})
        with pytest.raises(ValueError):
            compare_reports(base, base, tolerance=0.0)


class TestSuites:
    def test_micro_suite_builds_unique_benchmarks(self):
        from repro.obs.bench_suites import build_suite, suite_names

        assert set(suite_names()) == {
            "micro", "pipeline", "mapreduce", "ingestion",
            "detection_batch", "scalability", "incremental",
        }
        benchmarks = build_suite("micro")
        names = [bench.name for bench in benchmarks]
        assert len(names) == len(set(names))
        assert "periodogram.power_spectrum" in names
        assert "permutation.threshold" in names
        assert "autocorrelation.acf" in names
        assert "pruning.prune_candidates" in names

    def test_unknown_suite_raises(self):
        from repro.obs.bench_suites import build_suite

        with pytest.raises(KeyError):
            build_suite("nope")
