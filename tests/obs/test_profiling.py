"""Tests for span-level profiling hooks."""

import pytest

from repro.obs import (
    MetricsRegistry,
    PROFILES_FILE,
    scoped_registry,
    span,
    write_telemetry,
)
from repro.obs.profiling import (
    SpanProfile,
    clear_profiles,
    drain_profiles,
    pending_profiles,
    profile_mode,
    profile_top_n,
    profiles_from_jsonl,
    profiles_to_jsonl,
    render_profiles,
    start_collector,
)


@pytest.fixture(autouse=True)
def _clean_store():
    clear_profiles()
    yield
    clear_profiles()


def _busy_work():
    return sum(i * i for i in range(20000))


def _alloc_work():
    return [list(range(50)) for _ in range(500)]


class TestCProfileSpans:
    def test_span_records_hotspots(self):
        with scoped_registry(MetricsRegistry()):
            with span("hot", profile="cprofile"):
                _busy_work()
        profiles = drain_profiles()
        assert len(profiles) == 1
        profile = profiles[0]
        assert profile.path == "hot"
        assert profile.kind == "cprofile"
        assert profile.seconds > 0.0
        assert profile.hotspots
        row = profile.hotspots[0]
        assert set(row) == {"site", "calls", "tottime", "cumtime"}

    def test_nested_cprofile_only_outermost_collects(self):
        with scoped_registry(MetricsRegistry()):
            with span("outer", profile="cprofile"):
                with span("inner", profile="cprofile"):
                    _busy_work()
        profiles = drain_profiles()
        assert [p.path for p in profiles] == ["outer"]

    def test_no_profile_when_telemetry_off(self):
        with span("dark", profile="cprofile"):
            _busy_work()
        assert pending_profiles() == []


class TestTracemallocSpans:
    def test_span_records_allocation_hotspots(self):
        with scoped_registry(MetricsRegistry()):
            with span("alloc", profile="tracemalloc"):
                keep = _alloc_work()
            assert keep
        profiles = drain_profiles()
        assert len(profiles) == 1
        profile = profiles[0]
        assert profile.kind == "tracemalloc"
        assert profile.hotspots
        assert any(row["size_kb"] > 0 for row in profile.hotspots)


class TestEnvControl:
    def test_repro_profile_enables_blanket_profiling(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "cprofile")
        assert profile_mode() == "cprofile"
        with scoped_registry(MetricsRegistry()):
            with span("auto"):
                _busy_work()
        assert [p.path for p in drain_profiles()] == ["auto"]

    def test_span_can_opt_out_of_blanket_profiling(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "cprofile")
        with scoped_registry(MetricsRegistry()):
            with span("quiet", profile=False):
                _busy_work()
        assert pending_profiles() == []

    def test_invalid_env_value_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "flamegraph")
        assert profile_mode() is None
        with scoped_registry(MetricsRegistry()):
            with span("plain"):
                _busy_work()
        assert pending_profiles() == []

    def test_top_n_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_TOPN", "3")
        assert profile_top_n() == 3
        monkeypatch.setenv("REPRO_PROFILE_TOPN", "junk")
        assert profile_top_n() == 10
        monkeypatch.setenv("REPRO_PROFILE_TOPN", "-1")
        assert profile_top_n() == 10

    def test_unknown_collector_kind_returns_none(self):
        assert start_collector("flamegraph") is None


class TestRenderAndSerialize:
    def test_round_trip_jsonl(self):
        profiles = [
            SpanProfile("p1", "cprofile", 0.25,
                        [{"site": "a.py:1:f", "calls": 2,
                          "tottime": 0.1, "cumtime": 0.2}]),
            SpanProfile("p2", "tracemalloc", 0.5,
                        [{"site": "b.py:9", "size_kb": 12.5, "count": 3}]),
        ]
        text = profiles_to_jsonl(profiles)
        loaded = profiles_from_jsonl(text)
        assert [p.to_dict() for p in loaded] == [p.to_dict() for p in profiles]

    def test_render_lists_sites(self):
        text = render_profiles([
            SpanProfile("p1", "cprofile", 0.25,
                        [{"site": "a.py:1:f", "calls": 2,
                          "tottime": 0.1, "cumtime": 0.2}]),
        ])
        assert "a.py:1:f" in text
        assert "p1" in text

    def test_render_empty(self):
        assert "no profiles" in render_profiles([])


class TestTelemetryExport:
    def test_write_telemetry_drains_profiles(self, tmp_path):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            with span("exported", profile="cprofile"):
                _busy_work()
        written = write_telemetry(tmp_path, registry)
        assert PROFILES_FILE in written
        loaded = profiles_from_jsonl(
            (tmp_path / PROFILES_FILE).read_text()
        )
        assert [p.path for p in loaded] == ["exported"]
        # The store was drained: a second write has no profiles file.
        rewritten = write_telemetry(tmp_path / "again", registry)
        assert PROFILES_FILE not in rewritten

    def test_write_telemetry_without_profiles_writes_no_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        written = write_telemetry(tmp_path, registry)
        assert PROFILES_FILE not in written
        assert not (tmp_path / PROFILES_FILE).exists()
