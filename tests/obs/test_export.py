"""Tests for the run-report, JSONL, and Prometheus exporters."""

import json
import logging

import pytest

from repro.obs import (
    TELEMETRY_FILES,
    MetricsRegistry,
    configure_logging,
    from_jsonl,
    render_run_report,
    to_jsonl,
    to_prometheus,
    write_telemetry,
)


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("detector.threshold_cache.hits").inc(7)
    registry.counter("detector.threshold_cache.misses").inc(3)
    registry.gauge("pipeline.population_size").set(42)
    for value in (0.1, 0.2, 0.3):
        registry.histogram("span.pipeline.seconds").observe(value)
    registry.histogram("detector.detect.seconds").observe(0.05)
    return registry


FUNNEL = [
    ("1 global whitelist", 100, 60),
    ("2 local whitelist", 60, 20),
    ("8 weighted ranking", 20, 5),
]


class TestRunReport:
    def test_contains_funnel_rows(self, registry):
        text = render_run_report(registry, funnel=FUNNEL)
        assert "1 global whitelist" in text
        assert "100" in text and "60" in text
        assert "total reduction" in text
        assert "5.00%" in text  # 5 of 100 kept overall

    def test_contains_latency_and_counters(self, registry):
        text = render_run_report(registry, funnel=FUNNEL)
        assert "stage latency" in text
        assert "pipeline" in text
        assert "detector.threshold_cache.hits" in text
        assert "pipeline.population_size" in text
        assert "detector.detect.seconds" in text

    def test_empty_registry(self):
        text = render_run_report(MetricsRegistry())
        assert "no telemetry recorded" in text

    def test_summary_line_cache_hit_rate(self, registry):
        text = render_run_report(registry)
        assert "summary: threshold cache 70.0% hits (7/10)" in text

    def test_summary_line_mapreduce_retries(self):
        reg = MetricsRegistry()
        reg.counter("mapreduce.WordCount.input_records").inc(10)
        reg.counter("mapreduce.task_retries").inc(2)
        text = render_run_report(reg)
        assert "mapreduce task retries 2" in text

    def test_summary_line_zero_retries_still_shown(self):
        reg = MetricsRegistry()
        reg.counter("mapreduce.WordCount.input_records").inc(10)
        text = render_run_report(reg)
        assert "mapreduce task retries 0" in text

    def test_no_summary_line_without_relevant_counters(self):
        reg = MetricsRegistry()
        reg.counter("pipeline.runs").inc()
        assert "summary:" not in render_run_report(reg)

    def test_accepts_funnel_stats_object(self, registry):
        from repro.filtering.pipeline import FunnelStats

        funnel = FunnelStats()
        funnel.record("1 global whitelist", 10, 4)
        text = render_run_report(registry, funnel=funnel)
        assert "1 global whitelist" in text


class TestJsonl:
    def test_lines_are_valid_json(self, registry):
        lines = to_jsonl(registry, funnel=FUNNEL).splitlines()
        records = [json.loads(line) for line in lines]
        kinds = {record["type"] for record in records}
        assert kinds == {"funnel_step", "counter", "gauge", "histogram"}

    def test_round_trip(self, registry):
        payload = to_jsonl(registry, funnel=FUNNEL)
        rebuilt, steps = from_jsonl(payload)
        assert steps == FUNNEL
        assert dict(rebuilt.counters()) == dict(registry.counters())
        assert dict(rebuilt.gauges()) == dict(registry.gauges())
        original = registry.histogram("span.pipeline.seconds")
        clone = rebuilt.histogram("span.pipeline.seconds")
        assert clone.count == original.count
        assert clone.total == pytest.approx(original.total)
        assert clone.quantile(0.5) == pytest.approx(original.quantile(0.5))


class TestPrometheus:
    def test_counter_and_summary_lines(self, registry):
        text = to_prometheus(registry)
        assert "# TYPE repro_detector_threshold_cache_hits_total counter" in text
        assert "repro_detector_threshold_cache_hits_total 7" in text
        assert "repro_pipeline_population_size 42" in text
        assert 'repro_span_pipeline_seconds{quantile="0.5"}' in text
        assert "repro_span_pipeline_seconds_count 3" in text

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestWriteTelemetry:
    def test_writes_all_three_files(self, registry, tmp_path):
        target = tmp_path / "telemetry"
        written = write_telemetry(target, registry, funnel=FUNNEL)
        assert set(written) == set(TELEMETRY_FILES)
        for name in TELEMETRY_FILES:
            assert (target / name).stat().st_size > 0
        assert "1 global whitelist" in (target / "report.txt").read_text()


class TestConfigureLogging:
    def test_idempotent_single_handler(self):
        logger = configure_logging(logging.INFO)
        again = configure_logging(logging.DEBUG)
        assert logger is again
        marked = [
            handler for handler in logger.handlers
            if getattr(handler, "_repro_obs_handler", False)
        ]
        assert len(marked) == 1
        assert logger.level == logging.DEBUG

    def test_module_loggers_inherit(self):
        configure_logging(logging.INFO)
        child = logging.getLogger("repro.mapreduce.engine")
        assert child.getEffectiveLevel() == logging.INFO


class TestPrometheusFormat:
    """The exposition must survive promtool: HELP/TYPE and escaping."""

    def test_help_and_type_precede_every_metric(self, registry):
        text = to_prometheus(registry)
        lines = text.splitlines()
        for index, line in enumerate(lines):
            if line.startswith("#") or not line:
                continue
            name = line.split("{")[0].split(" ")[0]
            base = name
            for suffix in ("_count", "_sum", "_total"):
                if base.endswith(suffix):
                    base = base[: -len(suffix)]
            header_names = {
                header.split()[2]
                for header in lines[:index]
                if header.startswith(("# HELP", "# TYPE"))
            }
            assert any(
                candidate in header_names for candidate in (name, base)
            ), f"sample line {line!r} has no preceding HELP/TYPE"

    def test_help_lines_for_each_kind(self, registry):
        text = to_prometheus(registry)
        assert "# HELP repro_detector_threshold_cache_hits_total" in text
        assert "# TYPE repro_pipeline_population_size gauge" in text
        assert "# HELP repro_pipeline_population_size" in text
        assert "# TYPE repro_span_pipeline_seconds summary" in text

    def test_label_escaping(self):
        from repro.obs.export import _prom_escape_help, _prom_escape_label

        assert _prom_escape_label('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        assert _prom_escape_help("line1\nline2\\x") == "line1\\nline2\\\\x"


class TestAtomicTelemetryWrites:
    def test_no_tmp_files_left_behind(self, registry, tmp_path):
        target = tmp_path / "telemetry"
        write_telemetry(target, registry, funnel=FUNNEL)
        assert not list(target.glob("*.tmp"))

    def test_rewrite_replaces_existing_files(self, registry, tmp_path):
        target = tmp_path / "telemetry"
        write_telemetry(target, registry, funnel=FUNNEL)
        first = (target / "metrics.jsonl").read_text()
        registry.counter("detector.threshold_cache.hits").inc()
        write_telemetry(target, registry, funnel=FUNNEL)
        assert (target / "metrics.jsonl").read_text() != first

    def test_trace_spans_drain_into_trace_jsonl(self, registry, tmp_path):
        from repro.obs import (
            TRACE_FILE,
            clear_spans,
            pending_spans,
            scoped_registry,
            span,
            spans_from_jsonl,
            start_trace,
            set_trace,
        )

        clear_spans()
        try:
            with scoped_registry(registry):
                start_trace("writeme")
                with span("traced"):
                    pass
            written = write_telemetry(tmp_path / "t", registry)
            assert TRACE_FILE in written
            records = spans_from_jsonl(written[TRACE_FILE].read_text())
            assert records[0].name == "traced"
            assert pending_spans() == []  # drained, not copied
        finally:
            set_trace(None)
            clear_spans()
