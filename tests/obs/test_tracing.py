"""Tests for span tracing: nesting, timing, memory, no-op mode."""

import pytest

from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    current_span_path,
    scoped_registry,
    span,
)


class TestSpanNesting:
    def test_nested_paths_are_dotted(self):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            with span("outer"):
                with span("middle"):
                    with span("inner"):
                        assert current_span_path() == "outer.middle.inner"
        names = [h.name for h in registry.histograms()]
        assert "span.outer.seconds" in names
        assert "span.outer.middle.seconds" in names
        assert "span.outer.middle.inner.seconds" in names

    def test_stack_unwinds_after_exit(self):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            with span("a"):
                pass
            with span("b"):
                assert current_span_path() == "b"
        assert current_span_path() == ""

    def test_sibling_spans_share_parent_path(self):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            with span("parent"):
                with span("first"):
                    pass
                with span("second"):
                    pass
        names = {h.name for h in registry.histograms()}
        assert "span.parent.first.seconds" in names
        assert "span.parent.second.seconds" in names

    def test_repeated_span_accumulates_observations(self):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            for _ in range(3):
                with span("loop"):
                    pass
        assert registry.histogram("span.loop.seconds").count == 3

    def test_exception_still_records_and_unwinds(self):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            with pytest.raises(RuntimeError):
                with span("boom"):
                    raise RuntimeError("x")
            assert current_span_path() == ""
        assert registry.histogram("span.boom.seconds").count == 1


class TestSpanMeasurement:
    def test_duration_is_positive(self):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            with span("timed") as entered:
                total = sum(range(1000))
        assert total == 499500
        assert entered.seconds > 0.0
        assert registry.histogram("span.timed.seconds").total == pytest.approx(
            entered.seconds
        )

    def test_memory_capture(self):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            with span("alloc", trace_memory=True) as entered:
                data = [0] * 100_000
        assert len(data) == 100_000
        assert entered.peak_kb is not None
        assert entered.peak_kb > 100  # 100k ints is far beyond 100 KiB
        assert registry.histogram("span.alloc.peak_kb").count == 1

    def test_explicit_registry_wins_over_current(self):
        explicit = MetricsRegistry()
        ambient = MetricsRegistry()
        with scoped_registry(ambient):
            with span("x", registry=explicit):
                pass
        assert explicit.histogram("span.x.seconds").count == 1
        assert ambient.is_empty()


class TestSpanNoOp:
    def test_null_registry_records_nothing(self):
        registry = NullRegistry()
        with scoped_registry(registry):
            with span("quiet") as entered:
                pass
        assert entered.path == ""
        assert registry.is_empty()

    def test_null_span_does_not_touch_stack(self):
        with scoped_registry(NullRegistry()):
            with span("quiet"):
                assert current_span_path() == ""
