"""End-to-end telemetry tests over both pipeline front ends.

A small synthetic enterprise trace runs through
:class:`BaywatchPipeline` and :class:`BaywatchRunner` under a scoped
registry; the resulting funnel report must agree with the run's
:class:`FunnelStats`, include per-stage wall-clock timings, and carry
the ThresholdCache hit/miss counters.
"""

import logging

import pytest

from repro.filtering import BaywatchPipeline, PipelineConfig
from repro.filtering.pipeline import FunnelStats
from repro.jobs import BaywatchRunner
from repro.mapreduce.engine import MapReduceEngine
from repro.obs import (
    MetricsRegistry,
    get_registry,
    render_run_report,
    scoped_registry,
)
from repro.synthetic import EnterpriseConfig, EnterpriseSimulator, ImplantSpec


@pytest.fixture(scope="module")
def records():
    config = EnterpriseConfig(
        n_hosts=12,
        n_sites=25,
        duration=86_400.0 / 8,
        implants=(ImplantSpec("zbot", "zeus", n_infected=1, period=120.0),),
        seed=5,
    )
    trace, _truth = EnterpriseSimulator(config).generate()
    return trace


CONFIG_KWARGS = dict(local_whitelist_threshold=0.2, ranking_percentile=0.5)


@pytest.fixture
def propagating_repro_logger():
    """Let ``repro`` records reach caplog's root handler even if
    ``configure_logging`` (which disables propagation) ran earlier."""
    logger = logging.getLogger("repro")
    previous = logger.propagate
    logger.propagate = True
    yield
    logger.propagate = previous


class TestPipelineTelemetry:
    @pytest.fixture(scope="class")
    def run(self, records):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            report = BaywatchPipeline(
                PipelineConfig(**CONFIG_KWARGS)
            ).run_records(records)
        return registry, report

    def test_funnel_report_matches_funnel_stats(self, run):
        registry, report = run
        text = render_run_report(registry, funnel=report.funnel)
        for name, pairs_in, pairs_out in report.funnel.steps:
            row = next(
                line for line in text.splitlines() if line.startswith(name)
            )
            fields = row[len(name):].split()
            assert int(fields[0]) == pairs_in
            assert int(fields[1]) == pairs_out

    def test_every_stage_has_a_span(self, run):
        registry, _report = run
        names = {h.name for h in registry.histograms()}
        for stage in (
            "step1_global_whitelist",
            "step2_local_whitelist",
            "step3_5_periodicity_detection",
            "step6_token_filter",
            "step7_novelty_filter",
            "step8_weighted_ranking",
        ):
            assert f"span.pipeline.{stage}.seconds" in names

    def test_threshold_cache_counters_present(self, run):
        registry, _report = run
        counters = dict(registry.counters())
        hits = counters.get("detector.threshold_cache.hits", 0)
        misses = counters.get("detector.threshold_cache.misses", 0)
        assert hits + misses > 0
        assert counters["detector.pairs_total"] > 0

    def test_detector_counters_consistent_with_funnel(self, run):
        registry, report = run
        counters = dict(registry.counters())
        detection = next(
            (n_in, n_out)
            for name, n_in, n_out in report.funnel.steps
            if name.startswith("3-5")
        )
        assert counters["detector.pairs_total"] == detection[0]
        assert counters["detector.pairs_periodic"] == detection[1]


class TestRunnerTelemetry:
    @pytest.fixture(scope="class", params=[1, 2])
    def run(self, records, request):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            with MapReduceEngine(
                n_workers=request.param, min_parallel_records=16
            ) as engine:
                report = BaywatchRunner(
                    PipelineConfig(**CONFIG_KWARGS), engine=engine
                ).run(records)
        return registry, report

    def test_funnel_report_matches_funnel_stats(self, run):
        registry, report = run
        text = render_run_report(registry, funnel=report.funnel)
        for name, pairs_in, pairs_out in report.funnel.steps:
            assert name in text
        assert "total reduction" in text

    def test_jobstats_surfaced_as_counters(self, run):
        registry, _report = run
        counters = dict(registry.counters())
        assert counters["mapreduce.DataExtractionJob.output_records"] > 0
        assert counters["mapreduce.BeaconingDetectionJob.input_records"] > 0
        assert "runner.runs" in counters

    def test_worker_detector_metrics_merged_into_parent(self, run):
        # With n_workers=2 the detection job runs in worker processes;
        # their child registries must flow back through snapshots.
        registry, report = run
        counters = dict(registry.counters())
        assert counters["detector.pairs_total"] > 0
        assert counters["detector.pairs_periodic"] == len(report.detected_cases)

    def test_phase_spans_recorded(self, run):
        registry, _report = run
        names = {h.name for h in registry.histograms()}
        for phase in ("extract", "popularity", "detect", "rank"):
            assert f"span.runner.{phase}.seconds" in names


class TestNoOpMode:
    def test_disabled_run_records_nothing(self, records):
        ambient = get_registry()
        report = BaywatchPipeline(
            PipelineConfig(**CONFIG_KWARGS)
        ).run_records(records)
        assert report.funnel.steps
        assert get_registry() is ambient
        if not ambient.enabled:
            assert ambient.is_empty()


class TestFunnelConsistency:
    def test_monotonic_funnel_passes(self):
        funnel = FunnelStats()
        funnel.record("1 a", 10, 5)
        funnel.record("2 b", 5, 2)
        assert funnel.validate() == []

    def test_step_emitting_more_than_input_flagged(
        self, caplog, propagating_repro_logger
    ):
        funnel = FunnelStats()
        funnel.record("1 a", 5, 9)
        with caplog.at_level(logging.WARNING, logger="repro"):
            problems = funnel.validate()
        assert len(problems) == 1
        assert "more pairs than it received" in problems[0]
        assert any("funnel inconsistency" in r.message for r in caplog.records)

    def test_step_input_exceeding_previous_output_flagged(self):
        funnel = FunnelStats()
        funnel.record("1 a", 10, 4)
        funnel.record("2 b", 7, 3)
        problems = funnel.validate()
        assert len(problems) == 1
        assert "previous step only emitted" in problems[0]

    def test_strict_mode_raises(self):
        funnel = FunnelStats()
        funnel.record("1 a", 5, 9)
        with pytest.raises(ValueError, match="not monotonic"):
            funnel.validate(strict=True)


class TestRetryLogging:
    def test_retried_failure_logged_at_warning(
        self, caplog, propagating_repro_logger
    ):
        from repro.mapreduce.job import MapReduceJob

        class FlakyOnce(MapReduceJob):
            n_partitions = 1
            attempts = 0

            def map(self, key, value):
                yield key, value

            def reduce(self, key, values):
                FlakyOnce.attempts += 1
                if FlakyOnce.attempts == 1:
                    raise RuntimeError("transient")
                yield key, sum(values)

        engine = MapReduceEngine(max_retries=1)
        with caplog.at_level(logging.WARNING, logger="repro"):
            output = engine.run(FlakyOnce(), [("k", 1), ("k", 2)])
        assert output == [("k", 3)]
        assert any(
            "attempt 1 of 2" in record.message for record in caplog.records
        )
