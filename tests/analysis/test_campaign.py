"""Tests for campaign correlation."""

import pytest

from repro.analysis.campaign import Campaign, correlate_campaigns
from repro.core.detector import CandidatePeriod, DetectionResult
from repro.core.timeseries import ActivitySummary
from repro.filtering.case import BeaconingCase


def make_case(source, destination, period, rank_score=1.0):
    summary = ActivitySummary.from_timestamps(
        source, destination, [i * period for i in range(10)]
    )
    detection = DetectionResult(
        periodic=True,
        candidates=(CandidatePeriod(period, 1 / period, 10.0, 0.9, 0.5),),
        power_threshold=1.0,
        n_events=10,
        duration=9 * period,
        time_scale=1.0,
    )
    return BeaconingCase(
        summary=summary, detection=detection, rank_score=rank_score
    )


class TestEntityCorrelation:
    def test_multi_client_destination_is_one_campaign(self):
        cases = [
            make_case(f"mac{i}", "c2.evil.com", 300.0) for i in range(5)
        ]
        campaigns = correlate_campaigns(cases)
        assert len(campaigns) == 1
        assert campaigns[0].host_count == 5
        assert campaigns[0].correlated_by == "entity"

    def test_subdomain_flux_grouped_by_entity(self):
        cases = [
            make_case("mac1", f"{label}.evil.com", 300.0)
            for label in ("aa", "bb", "cc")
        ]
        campaigns = correlate_campaigns(cases)
        assert len(campaigns) == 1
        assert len(campaigns[0].destinations) == 3

    def test_distinct_entities_distinct_periods_stay_apart(self):
        cases = [
            make_case("mac1", "one.com", 60.0),
            make_case("mac2", "two.com", 3600.0),
        ]
        campaigns = correlate_campaigns(cases)
        assert len(campaigns) == 2


class TestCadenceCorrelation:
    def test_shared_cadence_across_entities(self):
        """Two Zbot gates at 180 s (paper Table VI) form one campaign."""
        cases = [
            make_case("mac1", "gate-a.com", 180.0),
            make_case("mac2", "gate-b.net", 181.0),
            make_case("mac3", "unrelated.org", 900.0),
        ]
        campaigns = correlate_campaigns(cases)
        by_dest_count = sorted(len(c.destinations) for c in campaigns)
        assert by_dest_count == [1, 2]
        paired = next(c for c in campaigns if len(c.destinations) == 2)
        assert paired.correlated_by == "cadence"
        assert paired.period == pytest.approx(180.0, abs=2.0)

    def test_single_case_is_not_a_cadence_cluster(self):
        campaigns = correlate_campaigns([make_case("m", "solo.com", 60.0)])
        assert len(campaigns) == 1
        assert campaigns[0].correlated_by == "entity"


class TestSeverity:
    def test_ordering_by_spread_and_strength(self):
        big = [make_case(f"mac{i}", "big.com", 300.0, rank_score=2.0)
               for i in range(6)]
        small = [make_case("mac9", "small.com", 60.0, rank_score=2.5)]
        campaigns = correlate_campaigns(big + small)
        assert campaigns[0].destinations == ("big.com",)
        assert campaigns[0].severity > campaigns[1].severity

    def test_describe(self):
        campaign = correlate_campaigns(
            [make_case("m1", "x.com", 120.0)]
        )[0]
        text = campaign.describe()
        assert "period~120s" in text
        assert "1 host(s)" in text


class TestEdgeCases:
    def test_empty_input(self):
        assert correlate_campaigns([]) == []

    def test_cases_without_periods_dropped(self):
        summary = ActivitySummary.from_timestamps("m", "d.com", [0.0, 1.0])
        detection = DetectionResult(
            periodic=False, candidates=(), power_threshold=1.0,
            n_events=2, duration=1.0, time_scale=1.0,
        )
        case = BeaconingCase(summary=summary, detection=detection)
        assert correlate_campaigns([case]) == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            correlate_campaigns([], period_tolerance=0.0)
        with pytest.raises(ValueError):
            correlate_campaigns([], min_cadence_group=1)
