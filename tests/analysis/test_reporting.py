"""Tests for analyst-facing case reports."""

import pytest

from repro.analysis.reporting import render_case, render_report
from repro.core.detector import CandidatePeriod, DetectionResult
from repro.core.timeseries import ActivitySummary
from repro.filtering.case import BeaconingCase
from repro.filtering.pipeline import FunnelStats, PipelineReport


@pytest.fixture
def case():
    summary = ActivitySummary.from_timestamps(
        "02:00:00:00:00:01",
        "xqzjwkvp.com",
        [i * 300.0 for i in range(60)],
        urls=["/gate.php"],
    )
    detection = DetectionResult(
        periodic=True,
        candidates=(
            CandidatePeriod(300.0, 1 / 300.0, 42.0, 0.91, 0.45),
        ),
        power_threshold=4.0,
        n_events=60,
        duration=59 * 300.0,
        time_scale=1.0,
        scales=(1.0, 4.0),
    )
    return BeaconingCase(
        summary=summary,
        detection=detection,
        popularity=0.01,
        similar_sources=3,
        lm_score=-2.8,
        rank_score=2.5,
    )


class TestRenderCase:
    def test_contains_core_evidence(self, case):
        text = render_case(case)
        assert "xqzjwkvp.com" in text
        assert "300.0 s" in text
        assert "ACF 0.91" in text
        assert "/gate.php" in text
        assert "rank score: 2.50" in text

    def test_indicators_highlighted(self, case):
        text = render_case(case)
        assert "DGA-like domain name" in text
        assert "3 internal hosts affected" in text
        assert "strong clockwork periodicity" in text

    def test_rank_prefix(self, case):
        assert render_case(case, rank=4).startswith("#4 case:")

    def test_benign_profile_has_no_aggravating_hints(self, case):
        from dataclasses import replace

        mild = replace(case, lm_score=-1.0, similar_sources=1, popularity=0.3)
        mild = replace(
            mild,
            detection=replace(
                case.detection,
                candidates=(
                    replace(case.detection.candidates[0], acf_score=0.2),
                ),
            ),
        )
        assert "no aggravating indicators" in render_case(mild)


class TestRenderReport:
    def make_report(self, case, n=3):
        funnel = FunnelStats()
        funnel.record("1 global whitelist", 100, 90)
        return PipelineReport(
            ranked_cases=[case] * n,
            detected_cases=[case] * n,
            funnel=funnel,
            population_size=50,
        )

    def test_full_report(self, case):
        text = render_report(self.make_report(case))
        assert "BAYWATCH daily report" in text
        assert "population: 50 sources" in text
        assert "global whitelist" in text
        assert text.count("xqzjwkvp.com") >= 3

    def test_max_cases_truncation(self, case):
        text = render_report(self.make_report(case, n=5), max_cases=2)
        assert "and 3 further cases" in text

    def test_funnel_optional(self, case):
        text = render_report(self.make_report(case), include_funnel=False)
        assert "global whitelist" not in text
