"""Tests for the bootstrap investigation workflow."""

import numpy as np
import pytest

from repro.analysis.investigate import Investigator, case_feature_vector
from repro.core.detector import CandidatePeriod, DetectionResult
from repro.core.timeseries import ActivitySummary
from repro.filtering.case import BeaconingCase
from repro.ml.features import FEATURE_NAMES


def make_case(destination, *, period=300.0, jitter=0.0, lm_score=-1.0, seed=0):
    rng = np.random.default_rng(seed)
    intervals = rng.normal(period, max(jitter, 1e-3), size=60)
    timestamps = np.concatenate([[0.0], np.cumsum(np.maximum(intervals, 1.0))])
    summary = ActivitySummary.from_timestamps("mac", destination, timestamps)
    detection = DetectionResult(
        periodic=True,
        candidates=(
            CandidatePeriod(period, 1 / period, 80.0, 0.85 - jitter / 1000, 0.4),
        ),
        power_threshold=8.0,
        n_events=61,
        duration=float(timestamps[-1]),
        time_scale=1.0,
    )
    return BeaconingCase(
        summary=summary, detection=detection, lm_score=lm_score
    )


def make_population(n_benign=30, n_malicious=15, seed=0):
    """Benign cases: natural names, jittery. Malicious: DGA, clockwork."""
    cases, labels = [], {}
    for i in range(n_benign):
        dest = f"news-site-{i}.com"
        cases.append(
            make_case(dest, jitter=60.0, lm_score=-1.1, seed=seed + i)
        )
        labels[dest] = 0
    for i in range(n_malicious):
        dest = f"xqzjk{i}wvp.com"
        cases.append(
            make_case(dest, jitter=2.0, lm_score=-2.9, seed=seed + 1000 + i)
        )
        labels[dest] = 1
    return cases, labels


class TestFeatureVector:
    def test_shape_matches_names(self):
        vec = case_feature_vector(make_case("x.com"))
        assert vec.size == len(FEATURE_NAMES)

    def test_finite(self):
        assert np.all(np.isfinite(case_feature_vector(make_case("x.com")))), (
            "feature vector must be finite"
        )


class TestInvestigator:
    def test_bootstrap_classifies_correctly(self):
        train_cases, train_labels = make_population(seed=0)
        eval_cases, eval_labels = make_population(seed=500)
        labels = {**train_labels, **eval_labels}
        investigator = Investigator(lambda d: labels[d], n_trees=30, seed=1)
        report = investigator.bootstrap(train_cases, eval_cases)
        assert report.confusion.accuracy > 0.9
        assert report.n_train == len(train_cases)
        assert report.n_eval == len(eval_cases)

    def test_uncertainty_order_covers_all_cases(self):
        train_cases, train_labels = make_population(seed=0)
        eval_cases, eval_labels = make_population(seed=500)
        labels = {**train_labels, **eval_labels}
        investigator = Investigator(lambda d: labels[d], n_trees=20, seed=1)
        report = investigator.bootstrap(train_cases, eval_cases)
        assert sorted(report.review_order.tolist()) == list(range(len(eval_cases)))

    def test_fn_curve_monotone(self):
        train_cases, train_labels = make_population(seed=0)
        eval_cases, eval_labels = make_population(seed=500)
        labels = {**train_labels, **eval_labels}
        investigator = Investigator(lambda d: labels[d], n_trees=20, seed=1)
        report = investigator.bootstrap(train_cases, eval_cases)
        assert np.all(np.diff(report.fn_curve) <= 0)
        assert report.fn_curve[-1] == 0

    def test_reviews_until_fn_below(self):
        train_cases, train_labels = make_population(seed=0)
        eval_cases, eval_labels = make_population(seed=500)
        labels = {**train_labels, **eval_labels}
        investigator = Investigator(lambda d: labels[d], n_trees=20, seed=1)
        report = investigator.bootstrap(train_cases, eval_cases)
        assert report.reviews_until_fn_below(0) == report.cases_to_clear_fn
        assert report.reviews_until_fn_below(10_000) == 0

    def test_training_requires_both_classes(self):
        cases, _labels = make_population(n_benign=5, n_malicious=0)
        investigator = Investigator(lambda d: 0)
        with pytest.raises(ValueError, match="both classes"):
            investigator.train(cases)

    def test_classify_requires_training(self):
        cases, _ = make_population(n_benign=2, n_malicious=2)
        with pytest.raises(ValueError, match="train"):
            Investigator(lambda d: 0).classify(cases)

    def test_cross_validate_error_bars(self):
        cases, labels = make_population(seed=0)
        investigator = Investigator(lambda d: labels[d], n_trees=15, seed=1)
        result = investigator.cross_validate(cases, k=3)
        acc_mean, acc_std = result.accuracy
        assert acc_mean > 0.8
        assert "accuracy" in result.summary()

    def test_cross_validate_needs_enough_cases(self):
        cases, labels = make_population(n_benign=2, n_malicious=1)
        investigator = Investigator(lambda d: labels[d])
        with pytest.raises(ValueError):
            investigator.cross_validate(cases, k=5)
