"""Tests for the synthetic evaluation harness (Section VIII-A)."""

import pytest

from repro.analysis.synthetic_eval import (
    EvalResult,
    evaluate_noise_level,
    false_alarm_rate,
    noise_sweep,
    tolerated_sigma,
)
from repro.synthetic.noise import NoiseModel

DAY = 86_400.0


class TestEvaluateNoiseLevel:
    def test_clean_baseline_perfect(self):
        result = evaluate_noise_level(
            period=300.0, duration=DAY, noise=NoiseModel(), trials=3
        )
        assert result.gamma_d == 0.0
        assert result.delta_d < 0.01
        assert result.detection_rate == 1.0
        assert result.accurate

    def test_extreme_noise_fails(self):
        noise = NoiseModel(jitter_sigma=150.0, drop_probability=0.75)
        result = evaluate_noise_level(
            period=300.0, duration=DAY, noise=noise, trials=3
        )
        assert result.gamma_d > 0.5

    def test_deterministic_given_seed(self):
        noise = NoiseModel(jitter_sigma=30.0)
        a = evaluate_noise_level(period=300.0, duration=DAY, noise=noise,
                                 trials=3, seed=5)
        b = evaluate_noise_level(period=300.0, duration=DAY, noise=noise,
                                 trials=3, seed=5)
        assert a == b

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            evaluate_noise_level(period=10.0, duration=100.0,
                                 noise=NoiseModel(), trials=0)


class TestNoiseSweep:
    def test_sweep_length(self):
        results = noise_sweep([0.0, 30.0], period=300.0, duration=DAY,
                              trials=2)
        assert len(results) == 2
        assert all(isinstance(r, EvalResult) for r in results)

    def test_degradation_with_sigma(self):
        results = noise_sweep([0.0, 120.0], period=300.0, duration=DAY,
                              trials=3)
        assert results[0].delta_d <= results[1].delta_d


class TestToleratedSigma:
    def make(self, delta, gamma):
        return EvalResult(n_trials=5, detection_rate=1 - gamma,
                          delta_d=delta, gamma_d=gamma)

    def test_picks_last_good_level(self):
        sigmas = [0.0, 10.0, 20.0, 30.0]
        results = [self.make(0.01, 0.0), self.make(0.02, 0.0),
                   self.make(0.08, 0.0), self.make(0.01, 0.0)]
        # Degrades at 20 and never recovers (stop at first failure).
        assert tolerated_sigma(sigmas, results) == 10.0

    def test_all_good(self):
        sigmas = [0.0, 10.0]
        results = [self.make(0.01, 0.0)] * 2
        assert tolerated_sigma(sigmas, results) == 10.0

    def test_none_good(self):
        assert tolerated_sigma([5.0], [self.make(0.5, 1.0)]) == 0.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            tolerated_sigma([1.0, 2.0], [self.make(0.0, 0.0)])


class TestFalseAlarmRate:
    def test_poisson_is_quiet(self):
        assert false_alarm_rate(rate=1 / 300.0, duration=DAY, trials=3) <= 0.34

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            false_alarm_rate(rate=1.0, duration=100.0, trials=0)
