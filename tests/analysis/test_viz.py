"""Tests for terminal evidence visualization."""

import numpy as np
import pytest

from repro.analysis.viz import (
    acf_strip,
    activity_strip,
    evidence_panel,
    intensity_strip,
)
from repro.core.timeseries import ActivitySummary


@pytest.fixture
def beacon_summary():
    return ActivitySummary.from_timestamps(
        "mac1", "evil.com", [i * 300.0 for i in range(200)]
    )


@pytest.fixture
def bursty_summary(rng):
    timestamps = np.sort(rng.uniform(0, 60_000.0, size=150))
    return ActivitySummary.from_timestamps("mac1", "site.com", timestamps)


class TestIntensityStrip:
    def test_width_respected(self):
        assert len(intensity_strip(range(1000), width=40)) == 40

    def test_short_series_kept_whole(self):
        assert len(intensity_strip([1, 2, 3], width=40)) == 3

    def test_constant_series_is_flat(self):
        assert set(intensity_strip([5.0] * 100, width=20)) == {"."}

    def test_empty_series(self):
        assert intensity_strip([], width=10) == " " * 10

    def test_gradient_orders_characters(self):
        strip = intensity_strip(range(100), width=10)
        assert strip[0] == " "
        assert strip[-1] == "@"

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            intensity_strip([1.0], width=0)


class TestActivityStrip:
    def test_beacon_renders_evenly(self, beacon_summary):
        strip = activity_strip(beacon_summary, width=32)
        assert len(strip) == 32
        # Even cadence: no empty gaps across the strip.
        assert " " not in strip.strip()

    def test_outage_renders_as_gap(self):
        timestamps = [i * 300.0 for i in range(50)]
        timestamps += [40_000.0 + i * 300.0 for i in range(50)]
        summary = ActivitySummary.from_timestamps("m", "d", timestamps)
        strip = activity_strip(summary, width=32)
        assert " " in strip[4:-4], "the outage should show as a dark gap"


class TestAcfStrip:
    def test_periodic_traffic_lights_up(self, beacon_summary):
        strip = acf_strip(beacon_summary, width=48)
        bright = sum(1 for ch in strip if ch in "#%@")
        assert bright >= 2, f"expected periodic columns, got {strip!r}"

    def test_bursty_traffic_stays_dark(self, bursty_summary):
        strip = acf_strip(bursty_summary, width=48)
        bright = sum(1 for ch in strip if ch in "%@")
        # Peak normalization puts the max somewhere; beyond it the strip
        # must be mostly dark for aperiodic traffic.
        assert bright <= 6

    def test_invalid_fraction(self, beacon_summary):
        with pytest.raises(ValueError):
            acf_strip(beacon_summary, max_lag_fraction=0.0)


class TestEvidencePanel:
    def test_two_rows(self, beacon_summary):
        panel = evidence_panel(beacon_summary)
        lines = panel.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("activity |")
        assert lines[1].startswith("acf      |")

    def test_integrates_with_render_case(self, beacon_summary):
        from repro.analysis.reporting import render_case
        from repro.core.detector import CandidatePeriod, DetectionResult
        from repro.filtering.case import BeaconingCase

        case = BeaconingCase(
            summary=beacon_summary,
            detection=DetectionResult(
                periodic=True,
                candidates=(CandidatePeriod(300.0, 1 / 300, 10.0, 0.9, 0.5),),
                power_threshold=1.0,
                n_events=200,
                duration=199 * 300.0,
                time_scale=1.0,
            ),
        )
        text = render_case(case, show_evidence_panel=True)
        assert "activity |" in text
        assert "acf      |" in text
