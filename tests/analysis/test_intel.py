"""Tests for the threat-intel oracle."""

import pytest

from repro.analysis.intel import IntelOracle, perfect_oracle
from repro.synthetic.enterprise import GroundTruth


@pytest.fixture
def truth():
    return GroundTruth(
        malicious_destinations=frozenset({f"bad{i}.com" for i in range(100)}),
        infected_hosts=frozenset({"mac1"}),
        benign_periodic_destinations=frozenset({"update.com"}),
    )


class TestIntelOracle:
    def test_perfect_oracle(self, truth):
        oracle = perfect_oracle(truth)
        assert oracle.is_malicious("bad0.com")
        assert not oracle.is_malicious("good.com")
        assert oracle.label("bad1.com") == 1
        assert oracle.label("update.com") == 0

    def test_deterministic_lookups(self, truth):
        oracle = IntelOracle(truth, coverage=0.5, seed=1)
        first = [oracle.is_malicious(f"bad{i}.com") for i in range(100)]
        second = [oracle.is_malicious(f"bad{i}.com") for i in range(100)]
        assert first == second

    def test_partial_coverage(self, truth):
        oracle = IntelOracle(truth, coverage=0.5, seed=1)
        found = sum(oracle.is_malicious(f"bad{i}.com") for i in range(100))
        assert 30 <= found <= 70

    def test_false_flags(self, truth):
        oracle = IntelOracle(truth, false_flag_rate=0.3, seed=2)
        flagged = sum(oracle.is_malicious(f"benign{i}.com") for i in range(200))
        assert 30 <= flagged <= 90

    def test_feed_overrides(self, truth):
        oracle = IntelOracle(truth, coverage=0.0)
        assert not oracle.is_malicious("bad0.com")
        oracle.add_feed(["bad0.com"])
        assert oracle.is_malicious("bad0.com")

    def test_query_counter(self, truth):
        oracle = perfect_oracle(truth)
        oracle.is_malicious("a.com")
        oracle.label("b.com")
        assert oracle.queries == 2

    def test_invalid_rates(self, truth):
        with pytest.raises(ValueError):
            IntelOracle(truth, coverage=1.5)
        with pytest.raises(ValueError):
            IntelOracle(truth, false_flag_rate=-0.1)
