"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.validation import (
    as_float_array,
    as_sorted_timestamps,
    require,
    require_in_range,
    require_positive,
    require_probability,
)


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestRequirePositive:
    def test_accepts_positive(self):
        require_positive(0.5, "x")

    @pytest.mark.parametrize("value", [0, -1, -0.001])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x must be > 0"):
            require_positive(value, "x")


class TestRequireInRange:
    def test_inclusive_bounds_accepted(self):
        require_in_range(0.0, "x", 0.0, 1.0)
        require_in_range(1.0, "x", 0.0, 1.0)

    def test_exclusive_bounds_rejected(self):
        with pytest.raises(ValueError):
            require_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="x must be in"):
            require_in_range(1.5, "x", 0.0, 1.0)


class TestRequireProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_probabilities(self, value):
        require_probability(value, "p")

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_outside_unit_interval(self, value):
        with pytest.raises(ValueError):
            require_probability(value, "p")


class TestAsFloatArray:
    def test_converts_list(self):
        out = as_float_array([1, 2, 3], "xs")
        assert out.dtype == float
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            as_float_array([1.0, float("nan")], "xs")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            as_float_array([float("inf")], "xs")

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            as_float_array(np.zeros((2, 2)), "xs")

    def test_empty_ok(self):
        assert as_float_array([], "xs").size == 0


class TestAsSortedTimestamps:
    def test_sorts_unsorted_input(self):
        out = as_sorted_timestamps([3.0, 1.0, 2.0])
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_preserves_sorted_input(self):
        out = as_sorted_timestamps([1.0, 2.0, 3.0])
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_allows_duplicates(self):
        out = as_sorted_timestamps([2.0, 2.0, 1.0])
        assert out.tolist() == [1.0, 2.0, 2.0]

    @given(st.lists(st.floats(min_value=0, max_value=1e9), max_size=50))
    def test_output_always_non_decreasing(self, values):
        out = as_sorted_timestamps(values)
        assert np.all(np.diff(out) >= 0)
