"""Unit tests for repro.utils.stats."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import (
    gzip_compression_ratio,
    one_sample_t_test,
    percentile_threshold,
    shannon_entropy,
)


class TestOneSampleTTest:
    def test_matching_mean_gives_high_p(self, rng):
        samples = rng.normal(100.0, 5.0, size=200)
        assert one_sample_t_test(samples, 100.0) > 0.05

    def test_wrong_mean_gives_low_p(self, rng):
        samples = rng.normal(100.0, 5.0, size=200)
        assert one_sample_t_test(samples, 90.0) < 0.001

    def test_single_sample_is_inconclusive(self):
        assert one_sample_t_test([5.0], 5.0) == 1.0
        assert one_sample_t_test([5.0], 50.0) == 1.0

    def test_zero_variance_exact_match(self):
        assert one_sample_t_test([7.0, 7.0, 7.0], 7.0) == 1.0

    def test_zero_variance_mismatch(self):
        assert one_sample_t_test([7.0, 7.0, 7.0], 8.0) == 0.0

    def test_empty_is_inconclusive(self):
        assert one_sample_t_test([], 1.0) == 1.0


class TestShannonEntropy:
    def test_empty_sequence(self):
        assert shannon_entropy("") == 0.0

    def test_single_symbol_zero_entropy(self):
        assert shannon_entropy("aaaa") == 0.0

    def test_uniform_two_symbols_one_bit(self):
        assert shannon_entropy("abab") == pytest.approx(1.0)

    def test_uniform_four_symbols_two_bits(self):
        assert shannon_entropy("abcd") == pytest.approx(2.0)

    def test_works_on_lists(self):
        assert shannon_entropy(["x", "y"]) == pytest.approx(1.0)

    @given(st.text(alphabet="xyz", min_size=1, max_size=100))
    def test_bounded_by_log_alphabet(self, text):
        assert 0.0 <= shannon_entropy(text) <= math.log2(3) + 1e-9


class TestGzipCompressionRatio:
    def test_empty_string(self):
        assert gzip_compression_ratio("") == 1.0

    def test_repetitive_compresses_well(self):
        repetitive = "x" * 10_000
        assert gzip_compression_ratio(repetitive) < 0.01

    def test_random_compresses_poorly(self, rng):
        letters = "abcdefghijklmnopqrstuvwxyz0123456789"
        random_text = "".join(rng.choice(list(letters), size=10_000))
        assert gzip_compression_ratio(random_text) > 0.5

    def test_regular_beats_irregular(self, rng):
        regular = "xxxxx" * 2000
        irregular = "".join(rng.choice(list("xyz"), size=10_000))
        assert gzip_compression_ratio(regular) < gzip_compression_ratio(irregular)


class TestPercentileThreshold:
    def test_paper_example_19th_of_20(self):
        values = list(range(1, 21))  # 1..20
        assert percentile_threshold(values, 0.95) == 19.0

    def test_full_confidence_returns_max(self):
        assert percentile_threshold([3.0, 1.0, 2.0], 1.0) == 3.0

    def test_zero_confidence_returns_min(self):
        assert percentile_threshold([3.0, 1.0, 2.0], 0.0) == 1.0

    def test_single_value(self):
        assert percentile_threshold([42.0], 0.95) == 42.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile_threshold([], 0.95)

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            percentile_threshold([1.0], 1.5)

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_threshold_is_an_order_statistic(self, values, confidence):
        threshold = percentile_threshold(values, confidence)
        assert min(values) <= threshold <= max(values)
        assert threshold in values
