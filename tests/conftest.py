"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic random generator for test reproducibility."""
    return np.random.default_rng(12345)
