"""Unit tests for the pluggable execution backends.

The engine-level fault matrix lives in ``test_faults.py``; these tests
pin the :class:`TaskExecutor` contract itself — traits, construction,
the soft/hard deadline split, and the public kill-children guarantee of
:meth:`ProcessPoolTaskExecutor.restart`.
"""

import os
import time

import pytest

from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.executors import (
    EXECUTOR_NAMES,
    ProcessPoolTaskExecutor,
    SerialExecutor,
    ShardQueueExecutor,
    TaskExecutor,
    TaskTimeout,
    ThreadPoolTaskExecutor,
    WorkerCrash,
    make_executor,
)
from repro.mapreduce.testing import HangingJob
from repro.obs import MetricsRegistry, scoped_registry


def _double(value):
    return value * 2


def _sleep_return(delay, value):
    time.sleep(delay)
    return value


class TestMakeExecutor:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("serial", SerialExecutor),
            ("threads", ThreadPoolTaskExecutor),
            ("processes", ProcessPoolTaskExecutor),
            ("shard-queue", ShardQueueExecutor),
        ],
    )
    def test_every_name_builds_its_backend(self, name, cls):
        executor = make_executor(name, n_workers=2)
        assert isinstance(executor, cls)
        assert executor.name == name
        assert name in EXECUTOR_NAMES

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("mainframe")

    def test_workers_size_the_parallelism_trait(self):
        assert make_executor("serial").parallelism == 1
        assert make_executor("threads", n_workers=3).parallelism == 3
        assert make_executor("processes", n_workers=2).parallelism == 2
        # The shard queue's fleet is external; at least 2 keeps the
        # engine off the serial path even for a lone local worker.
        assert make_executor("shard-queue", n_workers=1).parallelism == 2

    def test_trait_table(self):
        reaps = {n: make_executor(n).reaps_hung_tasks for n in EXECUTOR_NAMES}
        in_proc = {n: make_executor(n).in_process for n in EXECUTOR_NAMES}
        assert reaps == {
            "serial": False, "threads": False,
            "processes": True, "shard-queue": True,
        }
        assert in_proc == {
            "serial": True, "threads": True,
            "processes": False, "shard-queue": False,
        }


class TestEngineConstruction:
    def test_default_is_serial(self):
        assert MapReduceEngine().executor.name == "serial"

    def test_multiworker_default_is_processes(self):
        with MapReduceEngine(n_workers=2) as engine:
            assert engine.executor.name == "processes"

    def test_string_executor_resolved(self):
        with MapReduceEngine(n_workers=2, executor="threads") as engine:
            assert isinstance(engine.executor, ThreadPoolTaskExecutor)

    def test_executor_parallelism_raises_worker_floor(self):
        with MapReduceEngine(executor="shard-queue") as engine:
            assert engine.n_workers == 2

    def test_non_executor_rejected(self):
        with pytest.raises(TypeError):
            MapReduceEngine(executor=object())


class TestSerialExecutor:
    def test_handles_are_deferred_thunks(self):
        executor = SerialExecutor()
        handle = executor.submit(_double, 21)
        assert executor.result(handle) == 42
        assert not executor.active
        executor.restart("noop")
        executor.close()


class TestThreadExecutor:
    def test_runs_and_reports_active(self):
        with ThreadPoolTaskExecutor(2) as executor:
            assert not executor.active
            handles = [executor.submit(_double, n) for n in range(5)]
            assert [executor.result(h) for h in handles] == [0, 2, 4, 6, 8]
            assert executor.active

    def test_deadline_is_soft(self):
        with ThreadPoolTaskExecutor(1) as executor:
            handle = executor.submit(_sleep_return, 0.3, "late")
            with pytest.raises(TaskTimeout):
                executor.result(handle, timeout=0.02)
            # The task was never killed: a patient await still wins.
            assert executor.result(handle, None) == "late"

    def test_restart_discards_pool_without_killing(self):
        executor = ThreadPoolTaskExecutor(1)
        executor.submit(_double, 1)
        executor.restart("test")
        assert not executor.active
        assert executor.result(executor.submit(_double, 2)) == 4
        executor.close()


class TestProcessExecutor:
    def test_worker_pids_roster_is_public(self):
        with ProcessPoolTaskExecutor(1) as executor:
            assert executor.result(executor.submit(_double, 3)) == 6
            pids = executor.worker_pids()
            assert pids and all(pid != os.getpid() for pid in pids)

    def test_restart_kills_the_workers_it_started(self):
        executor = ProcessPoolTaskExecutor(1)
        executor.submit(_sleep_return, 30.0, None)  # occupy the worker
        deadline = time.monotonic() + 10.0
        while not executor.worker_pids() and time.monotonic() < deadline:
            time.sleep(0.05)
        pids = executor.worker_pids()
        assert pids, "worker never registered"
        executor.restart("hung task")
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)  # killed *and* reaped: pid is gone
        # The backend is immediately usable with a fresh pool.
        assert executor.result(executor.submit(_double, 5)) == 10
        assert executor.worker_pids().isdisjoint(pids)
        executor.close()

    def test_worker_death_surfaces_as_worker_crash(self):
        executor = ProcessPoolTaskExecutor(1)
        handle = executor.submit(os._exit, 13)
        with pytest.raises(WorkerCrash):
            executor.result(handle)
        executor.restart("broken pool")
        executor.close()

    def test_deadline_is_hard(self):
        executor = ProcessPoolTaskExecutor(1)
        handle = executor.submit(_sleep_return, 30.0, None)
        with pytest.raises(TaskTimeout):
            executor.result(handle, timeout=0.05)
        executor.restart("timed out")
        executor.close()


class TestSoftDeadlineEngine:
    """serial/threads: a breached ``task_timeout`` warns and journals
    instead of silently passing (or killing anything)."""

    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_breach_is_counted_and_journalled(
        self, executor, tmp_path, caplog
    ):
        from repro.obs.journal import EventJournal, read_events, scoped_journal

        journal = EventJournal.in_dir(tmp_path / "journal")
        registry = MetricsRegistry()
        inputs = [(f"k{i}", i) for i in range(20)] + [("poison", 99)]
        with scoped_registry(registry), scoped_journal(journal):
            with MapReduceEngine(
                n_workers=2,
                executor=executor,
                min_parallel_records=8,
                task_timeout=0.05,
            ) as engine:
                with caplog.at_level("WARNING", logger="repro.mapreduce.engine"):
                    output = engine.run(
                        HangingJob(
                            str(tmp_path / "marker"),
                            hang_seconds=0.3,
                            hang_times=1,
                        ),
                        inputs,
                    )
        assert len(output) == len(inputs)  # the task was never abandoned
        assert engine.last_stats.task_deadline_misses >= 1
        assert engine.last_stats.pool_restarts == 0
        assert dict(registry.counters())[
            "mapreduce.task_deadline_misses"
        ] >= 1
        events = [
            e for e in read_events(journal.path)
            if e["event"] == "task_deadline"
        ]
        assert events and events[0]["executor"] == executor
        assert "exceeded task_timeout" in caplog.text
