"""Tests for the partitioned on-disk store."""

import json

import pytest

from repro.mapreduce.store import PartitionedStore, RecordPacker


class TestPartitionedStore:
    def test_write_read_roundtrip(self, tmp_path):
        store = PartitionedStore(tmp_path / "data", n_partitions=4)
        records = [("k1", 1), ("k2", 2), ("k3", 3)]
        assert store.write(records, key_of=lambda r: r[0]) == 3
        assert sorted(store.read_all()) == sorted(records)

    def test_append_semantics(self, tmp_path):
        store = PartitionedStore(tmp_path / "data", n_partitions=2)
        store.write([1, 2])
        store.write([3])
        assert sorted(store.read_all()) == [1, 2, 3]

    def test_same_key_same_partition(self, tmp_path):
        store = PartitionedStore(tmp_path / "data", n_partitions=8)
        store.write([("dup", i) for i in range(10)], key_of=lambda r: r[0])
        sizes = store.partition_sizes()
        assert sum(1 for s in sizes if s > 0) == 1

    def test_read_missing_partition_is_empty(self, tmp_path):
        store = PartitionedStore(tmp_path / "data", n_partitions=4)
        assert list(store.read_partition(2)) == []

    def test_partition_out_of_range(self, tmp_path):
        store = PartitionedStore(tmp_path / "data", n_partitions=4)
        with pytest.raises(ValueError):
            list(store.read_partition(4))

    def test_clear(self, tmp_path):
        store = PartitionedStore(tmp_path / "data", n_partitions=4)
        store.write([1, 2, 3])
        store.clear()
        assert list(store.read_all()) == []

    def test_complex_records(self, tmp_path):
        from repro.core.timeseries import ActivitySummary

        store = PartitionedStore(tmp_path / "data")
        summary = ActivitySummary.from_timestamps("s", "d", [0.0, 60.0])
        store.write([summary], key_of=lambda s: s.pair)
        loaded = list(store.read_all())
        assert loaded == [summary]


class JsonPacker(RecordPacker):
    """Minimal packer for framed-format tests."""

    def pack(self, records):
        return json.dumps(records).encode("utf-8")

    def unpack(self, payload):
        return json.loads(payload.decode("utf-8"))


class TestPackedFrames:
    def test_packed_roundtrip(self, tmp_path):
        store = PartitionedStore(
            tmp_path / "data", n_partitions=4, packer=JsonPacker()
        )
        records = [["k1", 1], ["k2", 2], ["k3", 3]]
        assert store.write(records, key_of=lambda r: r[0]) == 3
        assert sorted(store.read_all()) == sorted(records)

    def test_packed_append_semantics(self, tmp_path):
        store = PartitionedStore(
            tmp_path / "data", n_partitions=1, packer=JsonPacker()
        )
        store.write([1, 2])
        store.write([3])
        assert sorted(store.read_all()) == [1, 2, 3]

    def test_packed_store_reads_legacy_pickle_partitions(self, tmp_path):
        PartitionedStore(tmp_path / "data", n_partitions=2).write([1, 2, 3])
        packed = PartitionedStore(
            tmp_path / "data", n_partitions=2, packer=JsonPacker()
        )
        assert sorted(packed.read_all()) == [1, 2, 3]

    def test_mixed_pickle_and_packed_file_reads_in_order(self, tmp_path):
        # One partition file holding pickle records, then a packed
        # frame, then pickle again — every boundary must dispatch right.
        plain = PartitionedStore(tmp_path / "data", n_partitions=1)
        packed = PartitionedStore(
            tmp_path / "data", n_partitions=1, packer=JsonPacker()
        )
        plain.write([1, 2])
        packed.write([3, 4])
        plain.write([5])
        assert list(packed.read_all()) == [1, 2, 3, 4, 5]

    def test_packed_frame_without_packer_is_an_error(self, tmp_path):
        PartitionedStore(
            tmp_path / "data", n_partitions=1, packer=JsonPacker()
        ).write([1])
        plain = PartitionedStore(tmp_path / "data", n_partitions=1)
        with pytest.raises(ValueError, match="no packer"):
            list(plain.read_all())

    def test_truncated_packed_frame_is_an_error(self, tmp_path):
        store = PartitionedStore(
            tmp_path / "data", n_partitions=1, packer=JsonPacker()
        )
        store.write([1, 2, 3])
        path = next(tmp_path.glob("data/part-*.pkl"))
        path.write_bytes(path.read_bytes()[:-2])
        with pytest.raises(ValueError, match="truncated"):
            list(store.read_all())
