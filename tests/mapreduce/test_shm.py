"""Shared-memory summary arena: zero-copy parity and segment hygiene.

Two contracts under test:

1. *Parity* — a :class:`SummaryView` read out of the arena is
   value-identical to the :class:`ActivitySummary` that was packed in
   (endpoints, time scale, intervals, URLs, and bit-identical
   ``timestamps()``).
2. *Hygiene* — the creator always unlinks the segment, even when a
   worker is SIGKILLed mid-shard: ``/dev/shm`` must hold no
   ``baywatch-*`` segments after a sharded run returns.
"""

import os
import signal

import numpy as np
import pytest

from repro.core.timeseries import ActivitySummary
from repro.filtering import PipelineConfig
from repro.jobs import BaywatchRunner
from repro.jobs.detection import BeaconingDetectionJob
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.shm import SEGMENT_PREFIX, SummaryArena
from repro.obs import MetricsRegistry, drain_spans, scoped_registry
from repro.synthetic import EnterpriseConfig, EnterpriseSimulator, ImplantSpec


def make_summaries():
    return [
        ActivitySummary.from_timestamps(
            "aa:bb:cc:00:00:01",
            "c2.example.com",
            [0.0, 60.0, 120.0, 181.0, 240.0],
            urls=("http://c2.example.com/a", "http://c2.example.com/b?q=1"),
        ),
        ActivitySummary.from_timestamps(
            "aa:bb:cc:00:00:02",
            "bücher.example.com",  # non-ASCII: utf-8 blob offsets matter
            [5.0, 305.0],
            time_scale=30.0,
        ),
        ActivitySummary.from_timestamps(
            "aa:bb:cc:00:00:03",
            "single.example.com",
            [42.0],  # no intervals at all
            urls=("http://single.example.com/",),
        ),
    ]


def baywatch_segments():
    try:
        names = os.listdir("/dev/shm")
    except FileNotFoundError:  # pragma: no cover - non-Linux hosts
        pytest.skip("no /dev/shm on this platform")
    return sorted(n for n in names if n.startswith(SEGMENT_PREFIX))


class TestSummaryArena:
    def test_views_materialize_to_the_packed_summaries(self):
        summaries = make_summaries()
        with SummaryArena.pack(summaries) as arena:
            assert len(arena) == len(summaries)
            assert [v.materialize() for v in arena.views()] == summaries

    def test_view_fields_match_without_materializing(self):
        summaries = make_summaries()
        with SummaryArena.pack(summaries) as arena:
            for view, summary in zip(arena.views(), summaries):
                assert view.pair == summary.pair
                assert view.source == summary.source
                assert view.destination == summary.destination
                assert view.time_scale == summary.time_scale
                assert view.first_timestamp == summary.first_timestamp
                assert view.event_count == summary.event_count
                assert view.urls == summary.urls
                assert tuple(view.interval_array()) == summary.intervals

    def test_timestamps_bit_identical(self):
        summaries = make_summaries()
        with SummaryArena.pack(summaries) as arena:
            for view, summary in zip(arena.views(), summaries):
                ours = view.timestamps()
                theirs = summary.timestamps()
                assert ours.dtype == theirs.dtype
                assert np.array_equal(ours, theirs)

    def test_worker_side_attach_reads_the_same_data(self):
        summaries = make_summaries()
        arena = SummaryArena.pack(summaries)
        try:
            attached = SummaryArena.attach(arena.handle())
            try:
                assert [
                    v.materialize() for v in attached.views()
                ] == summaries
            finally:
                attached.close()
        finally:
            arena.close()
            arena.unlink()

    def test_view_index_out_of_range(self):
        with SummaryArena.pack(make_summaries()) as arena:
            with pytest.raises(IndexError):
                arena.view(len(arena))
            with pytest.raises(IndexError):
                arena.view(-1)

    def test_creator_unlink_removes_the_segment(self):
        arena = SummaryArena.pack(make_summaries())
        name = arena.handle().name
        assert name.removeprefix("/") in {
            s for s in baywatch_segments()
        } or name in baywatch_segments()
        arena.close()
        arena.unlink()
        assert name not in baywatch_segments()
        arena.unlink()  # idempotent

    def test_attached_copy_never_unlinks(self):
        arena = SummaryArena.pack(make_summaries())
        try:
            attached = SummaryArena.attach(arena.handle())
            attached.close()
            attached.unlink()  # non-owner: must be a no-op
            # The creator can still read everything.
            assert arena.view(0).pair == make_summaries()[0].pair
        finally:
            arena.close()
            arena.unlink()

    def test_context_manager_cleans_up(self):
        before = baywatch_segments()
        with SummaryArena.pack(make_summaries()) as arena:
            name = arena.handle().name
            assert arena.view(1).time_scale == 30.0
        assert name not in baywatch_segments()
        assert baywatch_segments() == before


class WorkerKillerDetectionJob(BeaconingDetectionJob):
    """A detection job that SIGKILLs exactly one worker, mid-shard —
    the death the arena lifecycle must absorb without leaking the
    shared segment.

    Follows :class:`repro.mapreduce.testing.WorkerKillerJob` in firing
    only from a process other than the creator's, but claims its single
    shot with an atomic ``O_CREAT|O_EXCL`` marker: a read-bump-write
    counter file races between concurrent workers (a reader can catch
    the file mid-truncate and see zero), which would re-kill on every
    retry until the engine gives up.
    """

    def __init__(self, *args, marker_path, **kwargs):
        super().__init__(*args, **kwargs)
        self.marker_path = str(marker_path)
        self._creator_pid = os.getpid()

    def reduce(self, key, values):
        if os.getpid() != self._creator_pid:
            try:
                fd = os.open(
                    self.marker_path,
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                pass
            else:
                os.close(fd)
                os.kill(os.getpid(), signal.SIGKILL)
        return super().reduce(key, values)


@pytest.fixture(scope="module")
def trace():
    config = EnterpriseConfig(
        n_hosts=6,
        n_sites=10,
        duration=86_400.0 / 12,
        implants=(ImplantSpec("zbot", "zeus", n_infected=1, period=120.0),),
        seed=5,
    )
    records, _truth = EnterpriseSimulator(config).generate()
    return records


class TestSegmentHygiene:
    # Threshold high enough that most pairs survive the local whitelist
    # — detection shards must be big enough to engage worker processes
    # (and therefore the arena attach path) rather than falling back to
    # the serial in-process loop.
    CONFIG = dict(
        local_whitelist_threshold=0.9,
        ranking_percentile=0.5,
        use_shared_memory=True,
    )

    def test_sharded_shm_run_releases_all_segments(self, trace, tmp_path):
        assert baywatch_segments() == []
        runner = BaywatchRunner(
            PipelineConfig(**self.CONFIG),
            engine=MapReduceEngine(n_workers=2, min_parallel_records=4),
        )
        report = runner.run_sharded(
            trace, shard_size=8, checkpoint_dir=str(tmp_path / "ckpt")
        )
        assert report.population_size > 0
        assert baywatch_segments() == []

    def test_worker_killed_mid_shard_leaks_no_segments(self, trace, tmp_path):
        assert baywatch_segments() == []
        marker = tmp_path / "killed"

        def factory(*args, **kwargs):
            return WorkerKillerDetectionJob(
                *args, marker_path=marker, **kwargs
            )

        registry = MetricsRegistry()
        with scoped_registry(registry):
            with MapReduceEngine(
                n_workers=2, min_parallel_records=4, max_retries=2
            ) as engine:
                runner = BaywatchRunner(
                    PipelineConfig(**self.CONFIG),
                    engine=engine,
                    detection_job_factory=factory,
                )
                report = runner.run_sharded(
                    trace, shard_size=8, checkpoint_dir=str(tmp_path / "ckpt")
                )
        # With telemetry enabled the sharded run installed a trace
        # context; clear the global span buffer so this test leaves no
        # records behind for later telemetry-export tests to pick up.
        drain_spans()
        # The kill actually happened, the engine recovered, and the
        # creator still unlinked every arena segment on the way out.
        assert marker.exists()
        assert dict(registry.counters())["mapreduce.pool_restarts"] >= 1
        assert report.population_size > 0
        assert baywatch_segments() == []

    def test_shm_report_matches_pickled_payload_report(self, trace):
        plain_config = dict(self.CONFIG, use_shared_memory=False)
        shm = BaywatchRunner(PipelineConfig(**self.CONFIG)).run(trace)
        plain = BaywatchRunner(PipelineConfig(**plain_config)).run(trace)
        assert [
            (c.source, c.destination, c.rank_score) for c in shm.ranked_cases
        ] == [
            (c.source, c.destination, c.rank_score)
            for c in plain.ranked_cases
        ]
        assert shm.funnel.steps == plain.funnel.steps
