"""Fault-injection tests for the engine's task retries."""

import os
import tempfile

import pytest

from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import MapReduceJob


class FlakyJob(MapReduceJob):
    """Fails the first ``fail_times`` reduce calls for a marked key.

    Failure state lives in a file so it survives process boundaries
    (parallel workers) and is visible to the retrying engine.
    """

    n_partitions = 4

    def __init__(self, fail_times: int, marker_path: str) -> None:
        self.fail_times = fail_times
        self.marker_path = marker_path

    def _count(self) -> int:
        try:
            with open(self.marker_path) as handle:
                return int(handle.read() or 0)
        except FileNotFoundError:
            return 0

    def _bump(self) -> int:
        count = self._count() + 1
        with open(self.marker_path, "w") as handle:
            handle.write(str(count))
        return count

    def map(self, key, value):
        yield key, value

    def reduce(self, key, values):
        if key == "poison" and self._bump() <= self.fail_times:
            raise RuntimeError("injected task failure")
        for value in values:
            yield key, value


@pytest.fixture
def marker(tmp_path):
    return str(tmp_path / "failures")


INPUTS = [("ok", 1), ("poison", 2), ("fine", 3)]


class TestRetries:
    def test_no_retries_propagates(self, marker):
        engine = MapReduceEngine(max_retries=0)
        with pytest.raises(RuntimeError, match="injected"):
            engine.run(FlakyJob(1, marker), INPUTS)

    def test_retry_recovers_transient_failure(self, marker):
        engine = MapReduceEngine(max_retries=2)
        output = engine.run(FlakyJob(1, marker), INPUTS)
        assert sorted(output) == sorted(INPUTS)
        assert engine.last_stats.task_retries == 1

    def test_persistent_failure_still_raises(self, marker):
        engine = MapReduceEngine(max_retries=2)
        with pytest.raises(RuntimeError, match="injected"):
            engine.run(FlakyJob(100, marker), INPUTS)

    def test_parallel_retry_recovers(self, marker):
        inputs = INPUTS * 30  # over min_parallel_records
        with MapReduceEngine(
            n_workers=2, min_parallel_records=8, max_retries=2
        ) as engine:
            output = engine.run(FlakyJob(1, marker), inputs)
        assert len(output) == len(inputs)

    def test_retry_budget_restored_after_parallel_failure(self, marker):
        with MapReduceEngine(
            n_workers=2, min_parallel_records=8, max_retries=3
        ) as engine:
            engine.run(FlakyJob(2, marker), INPUTS * 30)
            assert engine.max_retries == 3

    def test_invalid_retries(self):
        with pytest.raises(ValueError):
            MapReduceEngine(max_retries=-1)
