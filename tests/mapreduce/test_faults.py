"""Fault-injection tests: quarantine, pool recovery, timeouts."""

import pytest

from repro.mapreduce.engine import MapReduceEngine, QuarantinedTask
from repro.mapreduce.testing import (
    POISON_KEY,
    HangingJob,
    PoisonPillJob,
    TransientFaultJob,
    WorkerKillerJob,
)
from repro.obs import MetricsRegistry, scoped_registry


@pytest.fixture
def marker(tmp_path):
    return str(tmp_path / "failures")


INPUTS = [("ok", 1), (POISON_KEY, 2), ("fine", 3), ("more", 4)]
PARALLEL_INPUTS = INPUTS * 30  # over min_parallel_records


def _keys(output):
    return sorted(key for key, _value in output)


class TestQuarantineSerial:
    def test_poison_reduce_is_quarantined_not_fatal(self, marker):
        engine = MapReduceEngine(max_retries=1, quarantine=True)
        output = engine.run(PoisonPillJob(marker, fail_in="reduce"), INPUTS)
        assert _keys(output) == ["fine", "more", "ok"]
        assert engine.last_stats.tasks_quarantined == 1
        entry = engine.last_quarantine[0]
        assert isinstance(entry, QuarantinedTask)
        assert entry.phase == "reduce"
        assert entry.key == POISON_KEY
        assert "poison pill" in entry.error
        assert entry.attempts == 2  # initial attempt + 1 retry

    def test_poison_map_is_quarantined_not_fatal(self, marker):
        engine = MapReduceEngine(max_retries=0, quarantine=True)
        output = engine.run(PoisonPillJob(marker, fail_in="map"), INPUTS)
        assert _keys(output) == ["fine", "more", "ok"]
        assert engine.last_quarantine[0].phase == "map"
        assert engine.last_quarantine[0].key == POISON_KEY

    def test_without_quarantine_poison_still_raises(self, marker):
        engine = MapReduceEngine(max_retries=1)
        with pytest.raises(RuntimeError, match="poison pill"):
            engine.run(PoisonPillJob(marker, fail_in="reduce"), INPUTS)

    def test_quarantine_counter_recorded(self, marker):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            engine = MapReduceEngine(max_retries=0, quarantine=True)
            engine.run(PoisonPillJob(marker, fail_in="reduce"), INPUTS)
        counters = dict(registry.counters())
        assert counters["mapreduce.tasks_quarantined"] == 1

    def test_quarantine_reset_between_runs(self, marker, tmp_path):
        engine = MapReduceEngine(max_retries=0, quarantine=True)
        engine.run(PoisonPillJob(marker, fail_in="reduce"), INPUTS)
        assert len(engine.last_quarantine) == 1
        clean = str(tmp_path / "clean")
        engine.run(PoisonPillJob(clean, poison_key="absent"), INPUTS)
        assert engine.last_quarantine == []


class TestQuarantineParallel:
    def test_poison_reduce_quarantined_across_workers(self, marker):
        with MapReduceEngine(
            n_workers=2, min_parallel_records=8, max_retries=1, quarantine=True
        ) as engine:
            output = engine.run(
                PoisonPillJob(marker, fail_in="reduce"), PARALLEL_INPUTS
            )
        # Every record of the three healthy keys survives.
        assert len(output) == 3 * 30
        assert POISON_KEY not in _keys(output)
        assert [e.key for e in engine.last_quarantine] == [POISON_KEY]

    def test_transient_fault_recovers_without_quarantine(self, marker):
        with MapReduceEngine(
            n_workers=2, min_parallel_records=8, max_retries=2, quarantine=True
        ) as engine:
            output = engine.run(
                TransientFaultJob(marker, fail_times=1), PARALLEL_INPUTS
            )
        assert len(output) == len(PARALLEL_INPUTS)
        assert engine.last_quarantine == []
        assert engine.last_stats.task_retries >= 1


class TestPoolRecovery:
    def test_killed_worker_restarts_pool_and_recovers(self, marker):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            with MapReduceEngine(
                n_workers=2, min_parallel_records=8, max_retries=2
            ) as engine:
                output = engine.run(
                    WorkerKillerJob(marker, kill_times=1), PARALLEL_INPUTS
                )
        assert len(output) == len(PARALLEL_INPUTS)
        assert engine.last_stats.pool_restarts >= 1
        assert dict(registry.counters())["mapreduce.pool_restarts"] >= 1

    def test_persistent_killer_without_quarantine_raises(self, marker):
        from concurrent.futures.process import BrokenProcessPool

        with MapReduceEngine(
            n_workers=2, min_parallel_records=8, max_retries=1
        ) as engine:
            with pytest.raises(BrokenProcessPool):
                engine.run(
                    WorkerKillerJob(marker, kill_times=100), PARALLEL_INPUTS
                )

    def test_persistent_killer_with_quarantine_completes(self, marker):
        with MapReduceEngine(
            n_workers=2, min_parallel_records=8, max_retries=1, quarantine=True
        ) as engine:
            output = engine.run(
                WorkerKillerJob(marker, kill_times=100), PARALLEL_INPUTS
            )
        # The poisoned key group died with its worker on every attempt
        # (including pool-isolated ones) and was quarantined; everything
        # else survived.
        assert len(output) == 3 * 30
        assert [e.key for e in engine.last_quarantine] == [POISON_KEY]

    def test_retry_budget_not_mutated_by_failures(self, marker):
        with MapReduceEngine(
            n_workers=2, min_parallel_records=8, max_retries=3, quarantine=True
        ) as engine:
            engine.run(PoisonPillJob(marker, fail_in="reduce"), PARALLEL_INPUTS)
            assert engine.max_retries == 3


class TestTimeouts:
    def test_hung_worker_reaped_and_task_retried(self, marker):
        with MapReduceEngine(
            n_workers=2,
            min_parallel_records=8,
            max_retries=2,
            task_timeout=1.0,
        ) as engine:
            output = engine.run(
                HangingJob(marker, hang_seconds=60.0, hang_times=1),
                PARALLEL_INPUTS,
            )
        assert len(output) == len(PARALLEL_INPUTS)
        assert engine.last_stats.task_timeouts >= 1
        assert engine.last_stats.pool_restarts >= 1

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            MapReduceEngine(task_timeout=0.0)


class TestBackoff:
    @staticmethod
    def _slept_delays(marker, seed):
        engine = MapReduceEngine(
            max_retries=3, retry_backoff=1.0, max_backoff=3.0,
            backoff_seed=seed,
        )
        slept = []
        engine._sleep = slept.append
        with pytest.raises(RuntimeError):
            engine.run(PoisonPillJob(marker, fail_in="reduce"), INPUTS)
        return slept

    def test_backoff_jitter_stays_within_exponential_envelope(self, marker):
        slept = self._slept_delays(marker, seed=0)
        # Envelopes are 1, 2, then capped at 3; jitter draws uniformly
        # inside each so synchronized failures don't retry in lockstep.
        assert len(slept) == 3
        for delay, envelope in zip(slept, [1.0, 2.0, 3.0]):
            assert 0.0 <= delay <= envelope

    def test_backoff_is_deterministic_under_seed(self, marker):
        assert self._slept_delays(marker, 7) == self._slept_delays(marker, 7)
        assert self._slept_delays(marker, 7) != self._slept_delays(marker, 8)

    def test_backoff_delay_is_journalled(self, marker, tmp_path):
        from repro.obs.journal import EventJournal, read_events, scoped_journal

        journal = EventJournal.in_dir(tmp_path / "journal")
        engine = MapReduceEngine(
            max_retries=1, retry_backoff=0.5, backoff_seed=3,
        )
        slept = []
        engine._sleep = slept.append
        with scoped_journal(journal):
            with pytest.raises(RuntimeError):
                engine.run(PoisonPillJob(marker, fail_in="reduce"), INPUTS)
        events = [
            e for e in read_events(journal.path) if e["event"] == "backoff"
        ]
        assert [e["delay"] for e in events] == [round(d, 6) for d in slept]
        assert all(e["envelope"] == 0.5 for e in events)

    def test_zero_backoff_never_sleeps(self, marker):
        engine = MapReduceEngine(max_retries=2, quarantine=True)
        engine._sleep = lambda _d: pytest.fail("slept with retry_backoff=0")
        engine.run(PoisonPillJob(marker, fail_in="reduce"), INPUTS)
