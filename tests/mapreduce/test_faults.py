"""Fault-injection tests: quarantine, pool recovery, timeouts.

``TestFaultMatrix`` at the bottom runs the whole fault menagerie over
every execution backend — the engine's recovery logic is supposed to be
executor-agnostic, and the matrix is what holds it to that.
"""

from contextlib import contextmanager

import pytest

from repro.mapreduce.engine import MapReduceEngine, QuarantinedTask
from repro.mapreduce.executors import ShardQueueExecutor
from repro.mapreduce.testing import (
    POISON_KEY,
    HangingJob,
    PoisonPillJob,
    TransientFaultJob,
    WorkerFleet,
    WorkerKillerJob,
)
from repro.obs import MetricsRegistry, scoped_registry


@pytest.fixture
def marker(tmp_path):
    return str(tmp_path / "failures")


INPUTS = [("ok", 1), (POISON_KEY, 2), ("fine", 3), ("more", 4)]
PARALLEL_INPUTS = INPUTS * 30  # over min_parallel_records


def _keys(output):
    return sorted(key for key, _value in output)


class TestQuarantineSerial:
    def test_poison_reduce_is_quarantined_not_fatal(self, marker):
        engine = MapReduceEngine(max_retries=1, quarantine=True)
        output = engine.run(PoisonPillJob(marker, fail_in="reduce"), INPUTS)
        assert _keys(output) == ["fine", "more", "ok"]
        assert engine.last_stats.tasks_quarantined == 1
        entry = engine.last_quarantine[0]
        assert isinstance(entry, QuarantinedTask)
        assert entry.phase == "reduce"
        assert entry.key == POISON_KEY
        assert "poison pill" in entry.error
        assert entry.attempts == 2  # initial attempt + 1 retry

    def test_poison_map_is_quarantined_not_fatal(self, marker):
        engine = MapReduceEngine(max_retries=0, quarantine=True)
        output = engine.run(PoisonPillJob(marker, fail_in="map"), INPUTS)
        assert _keys(output) == ["fine", "more", "ok"]
        assert engine.last_quarantine[0].phase == "map"
        assert engine.last_quarantine[0].key == POISON_KEY

    def test_without_quarantine_poison_still_raises(self, marker):
        engine = MapReduceEngine(max_retries=1)
        with pytest.raises(RuntimeError, match="poison pill"):
            engine.run(PoisonPillJob(marker, fail_in="reduce"), INPUTS)

    def test_quarantine_counter_recorded(self, marker):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            engine = MapReduceEngine(max_retries=0, quarantine=True)
            engine.run(PoisonPillJob(marker, fail_in="reduce"), INPUTS)
        counters = dict(registry.counters())
        assert counters["mapreduce.tasks_quarantined"] == 1

    def test_quarantine_reset_between_runs(self, marker, tmp_path):
        engine = MapReduceEngine(max_retries=0, quarantine=True)
        engine.run(PoisonPillJob(marker, fail_in="reduce"), INPUTS)
        assert len(engine.last_quarantine) == 1
        clean = str(tmp_path / "clean")
        engine.run(PoisonPillJob(clean, poison_key="absent"), INPUTS)
        assert engine.last_quarantine == []


class TestQuarantineParallel:
    def test_poison_reduce_quarantined_across_workers(self, marker):
        with MapReduceEngine(
            n_workers=2, min_parallel_records=8, max_retries=1, quarantine=True
        ) as engine:
            output = engine.run(
                PoisonPillJob(marker, fail_in="reduce"), PARALLEL_INPUTS
            )
        # Every record of the three healthy keys survives.
        assert len(output) == 3 * 30
        assert POISON_KEY not in _keys(output)
        assert [e.key for e in engine.last_quarantine] == [POISON_KEY]

    def test_transient_fault_recovers_without_quarantine(self, marker):
        with MapReduceEngine(
            n_workers=2, min_parallel_records=8, max_retries=2, quarantine=True
        ) as engine:
            output = engine.run(
                TransientFaultJob(marker, fail_times=1), PARALLEL_INPUTS
            )
        assert len(output) == len(PARALLEL_INPUTS)
        assert engine.last_quarantine == []
        assert engine.last_stats.task_retries >= 1


class TestPoolRecovery:
    def test_killed_worker_restarts_pool_and_recovers(self, marker):
        registry = MetricsRegistry()
        with scoped_registry(registry):
            with MapReduceEngine(
                n_workers=2, min_parallel_records=8, max_retries=2
            ) as engine:
                output = engine.run(
                    WorkerKillerJob(marker, kill_times=1), PARALLEL_INPUTS
                )
        assert len(output) == len(PARALLEL_INPUTS)
        assert engine.last_stats.pool_restarts >= 1
        assert dict(registry.counters())["mapreduce.pool_restarts"] >= 1

    def test_persistent_killer_without_quarantine_raises(self, marker):
        from repro.mapreduce.executors import WorkerCrash

        with MapReduceEngine(
            n_workers=2, min_parallel_records=8, max_retries=1
        ) as engine:
            with pytest.raises(WorkerCrash):
                engine.run(
                    WorkerKillerJob(marker, kill_times=100), PARALLEL_INPUTS
                )

    def test_persistent_killer_with_quarantine_completes(self, marker):
        with MapReduceEngine(
            n_workers=2, min_parallel_records=8, max_retries=1, quarantine=True
        ) as engine:
            output = engine.run(
                WorkerKillerJob(marker, kill_times=100), PARALLEL_INPUTS
            )
        # The poisoned key group died with its worker on every attempt
        # (including pool-isolated ones) and was quarantined; everything
        # else survived.
        assert len(output) == 3 * 30
        assert [e.key for e in engine.last_quarantine] == [POISON_KEY]

    def test_retry_budget_not_mutated_by_failures(self, marker):
        with MapReduceEngine(
            n_workers=2, min_parallel_records=8, max_retries=3, quarantine=True
        ) as engine:
            engine.run(PoisonPillJob(marker, fail_in="reduce"), PARALLEL_INPUTS)
            assert engine.max_retries == 3


class TestTimeouts:
    def test_hung_worker_reaped_and_task_retried(self, marker):
        with MapReduceEngine(
            n_workers=2,
            min_parallel_records=8,
            max_retries=2,
            task_timeout=1.0,
        ) as engine:
            output = engine.run(
                HangingJob(marker, hang_seconds=60.0, hang_times=1),
                PARALLEL_INPUTS,
            )
        assert len(output) == len(PARALLEL_INPUTS)
        assert engine.last_stats.task_timeouts >= 1
        assert engine.last_stats.pool_restarts >= 1

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            MapReduceEngine(task_timeout=0.0)


class TestBackoff:
    @staticmethod
    def _slept_delays(marker, seed):
        engine = MapReduceEngine(
            max_retries=3, retry_backoff=1.0, max_backoff=3.0,
            backoff_seed=seed,
        )
        slept = []
        engine._sleep = slept.append
        with pytest.raises(RuntimeError):
            engine.run(PoisonPillJob(marker, fail_in="reduce"), INPUTS)
        return slept

    def test_backoff_jitter_stays_within_exponential_envelope(self, marker):
        slept = self._slept_delays(marker, seed=0)
        # Envelopes are 1, 2, then capped at 3; jitter draws uniformly
        # inside each so synchronized failures don't retry in lockstep.
        assert len(slept) == 3
        for delay, envelope in zip(slept, [1.0, 2.0, 3.0]):
            assert 0.0 <= delay <= envelope

    def test_backoff_is_deterministic_under_seed(self, marker):
        assert self._slept_delays(marker, 7) == self._slept_delays(marker, 7)
        assert self._slept_delays(marker, 7) != self._slept_delays(marker, 8)

    def test_backoff_delay_is_journalled(self, marker, tmp_path):
        from repro.obs.journal import EventJournal, read_events, scoped_journal

        journal = EventJournal.in_dir(tmp_path / "journal")
        engine = MapReduceEngine(
            max_retries=1, retry_backoff=0.5, backoff_seed=3,
        )
        slept = []
        engine._sleep = slept.append
        with scoped_journal(journal):
            with pytest.raises(RuntimeError):
                engine.run(PoisonPillJob(marker, fail_in="reduce"), INPUTS)
        events = [
            e for e in read_events(journal.path) if e["event"] == "backoff"
        ]
        assert [e["delay"] for e in events] == [round(d, 6) for d in slept]
        assert all(e["envelope"] == 0.5 for e in events)

    def test_zero_backoff_never_sleeps(self, marker):
        engine = MapReduceEngine(max_retries=2, quarantine=True)
        engine._sleep = lambda _d: pytest.fail("slept with retry_backoff=0")
        engine.run(PoisonPillJob(marker, fail_in="reduce"), INPUTS)


EXECUTORS = ["serial", "threads", "processes", "shard-queue"]


@contextmanager
def _engine_for(executor, tmp_path, **engine_kwargs):
    """An engine on the requested backend — plus, for the shard queue,
    a live two-worker fleet draining its task directory."""
    if executor == "shard-queue":
        queue = str(tmp_path / "queue")
        backend = ShardQueueExecutor(queue, claim_ttl=1.0, poll_interval=0.02)
        with WorkerFleet(queue, 2, claim_ttl=1.0, respawn=True):
            with MapReduceEngine(
                n_workers=2, min_parallel_records=8, executor=backend,
                **engine_kwargs,
            ) as engine:
                yield engine
    else:
        with MapReduceEngine(
            n_workers=2, min_parallel_records=8, executor=executor,
            **engine_kwargs,
        ) as engine:
            yield engine


class TestFaultMatrix:
    """Identical fault handling on every backend (the executor contract)."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_poison_pill_quarantined(self, executor, marker, tmp_path):
        with _engine_for(
            executor, tmp_path, max_retries=1, quarantine=True
        ) as engine:
            output = engine.run(
                PoisonPillJob(marker, fail_in="reduce"), PARALLEL_INPUTS
            )
        assert len(output) == 3 * 30
        assert [e.key for e in engine.last_quarantine] == [POISON_KEY]

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_transient_fault_retried_to_success(
        self, executor, marker, tmp_path
    ):
        with _engine_for(executor, tmp_path, max_retries=2) as engine:
            output = engine.run(
                TransientFaultJob(marker, fail_times=1), PARALLEL_INPUTS
            )
        assert len(output) == len(PARALLEL_INPUTS)
        assert engine.last_stats.task_retries >= 1
        assert engine.last_quarantine == []

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_worker_killer(self, executor, marker, tmp_path):
        with _engine_for(executor, tmp_path, max_retries=2) as engine:
            output = engine.run(
                WorkerKillerJob(marker, kill_times=1), PARALLEL_INPUTS
            )
        assert len(output) == len(PARALLEL_INPUTS)
        if executor in ("serial", "threads"):
            # The kill guard refuses to fire in the coordinator's own
            # process; in-process backends see a clean run.
            assert engine.last_stats.pool_restarts == 0
        elif executor == "processes":
            # A dead pool worker forces a backend restart.
            assert engine.last_stats.pool_restarts >= 1
        else:
            # The shard queue absorbs a dead worker as one expired
            # lease: the task moves to the surviving worker and the
            # backend is never restarted.
            assert engine.last_stats.pool_restarts == 0

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_hanging_task(self, executor, marker, tmp_path):
        hard = executor in ("processes", "shard-queue")
        with _engine_for(
            executor,
            tmp_path,
            max_retries=2,
            task_timeout=1.0 if hard else 0.05,
        ) as engine:
            output = engine.run(
                HangingJob(
                    marker,
                    hang_seconds=60.0 if hard else 0.3,
                    hang_times=1,
                ),
                PARALLEL_INPUTS,
            )
        assert len(output) == len(PARALLEL_INPUTS)
        if hard:
            # Reaping backends treat the deadline as fatal: restart,
            # then retry the lost task.
            assert engine.last_stats.task_timeouts >= 1
            assert engine.last_stats.pool_restarts >= 1
            assert engine.last_stats.task_deadline_misses == 0
        else:
            # Non-reaping backends warn-and-journal, then wait the
            # straggler out — nothing is killed or charged.
            assert engine.last_stats.task_deadline_misses >= 1
            assert engine.last_stats.pool_restarts == 0
            assert engine.last_stats.task_timeouts == 0
