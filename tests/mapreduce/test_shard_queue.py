"""The file-backed multi-host shard queue, end to end.

Protocol tests drive the coordinator and a worker in one process;
the two-"host" tests run real :class:`WorkerFleet` processes against
the queue and SIGKILL them mid-task to prove the claim-expiry story:
a crashed worker costs one lease, never the run.
"""

import os
import time

import pytest

from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.executors import (
    ShardQueueExecutor,
    TaskTimeout,
    WorkerCrash,
    run_worker,
)
from repro.mapreduce.executors.shardqueue import (
    CLAIMS_DIR,
    STOP_FILE,
    TASKS_DIR,
    _claim_next,
)
from repro.mapreduce.testing import (
    POISON_KEY,
    TransientFaultJob,
    WorkerFleet,
    WorkerKillerJob,
)
from repro.obs.journal import EventJournal, read_events, scoped_journal


def _add(a, b):
    return a + b


def _boom():
    raise ValueError("shipped failure")


@pytest.fixture
def queue(tmp_path):
    return str(tmp_path / "queue")


class TestQueueProtocol:
    def test_submit_worker_result_round_trip(self, queue):
        executor = ShardQueueExecutor(queue, poll_interval=0.01)
        handle = executor.submit(_add, 19, 23)
        assert run_worker(queue, max_tasks=1, poll_interval=0.01) == 1
        assert executor.result(handle, timeout=5.0) == 42

    def test_task_exception_is_shipped_back(self, queue):
        executor = ShardQueueExecutor(queue, poll_interval=0.01)
        handle = executor.submit(_boom)
        run_worker(queue, max_tasks=1, poll_interval=0.01)
        with pytest.raises(ValueError, match="shipped failure"):
            executor.result(handle, timeout=5.0)

    def test_unbound_submit_explains_how_to_bind(self):
        executor = ShardQueueExecutor()
        assert not executor.bound
        with pytest.raises(RuntimeError, match="checkpoint"):
            executor.submit(_add, 1, 2)

    def test_claims_are_exclusive(self, queue):
        executor = ShardQueueExecutor(queue)
        executor.submit(_add, 1, 1)
        assert _claim_next(queue) is not None
        assert _claim_next(queue) is None  # exactly one claimant wins

    def test_result_deadline_raises_task_timeout(self, queue):
        executor = ShardQueueExecutor(queue, poll_interval=0.01)
        handle = executor.submit(_add, 1, 1)  # no worker will come
        with pytest.raises(TaskTimeout):
            executor.result(handle, timeout=0.05)

    def test_stale_claim_requeued_and_journalled(self, queue, tmp_path):
        journal = EventJournal.in_dir(tmp_path / "journal")
        executor = ShardQueueExecutor(
            queue, claim_ttl=0.1, poll_interval=0.01
        )
        handle = executor.submit(_add, 2, 3)
        name = _claim_next(queue)  # a "worker" claims, then dies silently
        assert name == handle
        time.sleep(0.25)  # lease goes stale (no renewals)
        with scoped_journal(journal):
            # The result poll requeues the claim; a live worker then
            # finishes the task.
            deadline = time.monotonic() + 5.0
            while not os.listdir(os.path.join(queue, TASKS_DIR)):
                executor._expire_if_stale(
                    handle,
                    os.path.join(queue, CLAIMS_DIR, handle),
                    os.path.join(queue, TASKS_DIR, handle),
                )
                assert time.monotonic() < deadline
                time.sleep(0.01)
            run_worker(queue, max_tasks=1, poll_interval=0.01)
            assert executor.result(handle, timeout=5.0) == 5
        events = [
            e for e in read_events(journal.path)
            if e["event"] == "claim_expired"
        ]
        assert events and events[0]["task"] == handle

    def test_repeated_expiry_becomes_worker_crash(self, queue):
        executor = ShardQueueExecutor(
            queue, claim_ttl=0.05, poll_interval=0.01, max_claim_expiries=2
        )
        handle = executor.submit(_add, 1, 2)
        claim = os.path.join(queue, CLAIMS_DIR, handle)
        task = os.path.join(queue, TASKS_DIR, handle)
        with pytest.raises(WorkerCrash, match="lost 2 workers"):
            for _ in range(2):
                assert _claim_next(queue) == handle  # claim...
                time.sleep(0.12)  # ...and die without renewing the lease
                executor._expire_if_stale(handle, claim, task)
        # The poisoned task was withdrawn outright.
        assert os.listdir(os.path.join(queue, TASKS_DIR)) == []

    def test_close_raises_stop_sentinel_for_workers(self, queue):
        executor = ShardQueueExecutor(queue, poll_interval=0.01)
        executor.close()
        assert os.path.exists(os.path.join(queue, STOP_FILE))
        # An idle worker drains and exits instead of spinning forever.
        assert run_worker(queue, poll_interval=0.01) == 0

    def test_bind_clears_a_previous_runs_sentinel(self, queue):
        ShardQueueExecutor(queue).close()
        ShardQueueExecutor(queue)  # rebind
        assert not os.path.exists(os.path.join(queue, STOP_FILE))

    def test_restart_clears_all_outstanding_work(self, queue):
        executor = ShardQueueExecutor(queue)
        executor.submit(_add, 1, 1)
        executor.submit(_add, 2, 2)
        _claim_next(queue)
        executor.restart("test")
        for sub in (TASKS_DIR, CLAIMS_DIR):
            assert os.listdir(os.path.join(queue, sub)) == []

    def test_worker_idle_exit(self, queue):
        ShardQueueExecutor(queue)  # create the tree, no stop sentinel
        start = time.monotonic()
        assert run_worker(queue, poll_interval=0.01, idle_exit=0.1) == 0
        assert time.monotonic() - start < 5.0


INPUTS = ([("ok", 1), (POISON_KEY, 2), ("fine", 3), ("more", 4)]) * 30


class TestTwoHostFleet:
    """An engine coordinating real worker processes over the queue."""

    def _engine(self, queue, **kwargs):
        executor = ShardQueueExecutor(
            queue, claim_ttl=1.0, poll_interval=0.02
        )
        return MapReduceEngine(
            n_workers=2, min_parallel_records=8, executor=executor, **kwargs
        )

    def test_fleet_completes_a_run(self, queue, tmp_path):
        with WorkerFleet(queue, 2):
            with self._engine(queue, max_retries=2) as engine:
                output = engine.run(
                    TransientFaultJob(str(tmp_path / "marker"), fail_times=1),
                    INPUTS,
                )
        assert len(output) == len(INPUTS)
        assert engine.last_stats.task_retries >= 1
        assert engine.last_quarantine == []

    def test_sigkilled_worker_costs_one_lease_not_the_run(
        self, queue, tmp_path
    ):
        """The flagship crash story: a worker is SIGKILLed mid-task, its
        claim expires, the surviving "host" picks the task up, and the
        run finishes with zero backend restarts."""
        journal = EventJournal.in_dir(tmp_path / "journal")
        marker = str(tmp_path / "marker")
        with scoped_journal(journal):
            with WorkerFleet(queue, 2, claim_ttl=0.5) as fleet:
                with self._engine(queue, max_retries=2) as engine:
                    engine.executor.claim_ttl = 0.5
                    output = engine.run(
                        WorkerKillerJob(marker, kill_times=1), INPUTS
                    )
                survivors = fleet.pids()
        assert len(output) == len(INPUTS)
        assert len(survivors) == 1  # one host really died
        assert engine.last_stats.pool_restarts == 0  # recovery was a lease
        expired = [
            e for e in read_events(journal.path)
            if e["event"] == "claim_expired"
        ]
        assert expired, "the crashed worker's claim never expired"

    def test_worker_task_pickups_are_journalled(self, queue, tmp_path):
        executor = ShardQueueExecutor(queue, poll_interval=0.01)
        journal = EventJournal.in_dir(tmp_path / "journal")
        handle = executor.submit(_add, 1, 1)
        run_worker(queue, max_tasks=1, poll_interval=0.01, journal=journal)
        assert executor.result(handle, timeout=5.0) == 2
        events = [
            e for e in read_events(journal.path)
            if e["event"] == "worker_task"
        ]
        assert [e["task"] for e in events] == [handle]
