"""Tests for the local MapReduce engine."""

import pytest

from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import MapReduceJob, stable_hash


class WordCountJob(MapReduceJob):
    """The canonical example: count words across lines."""

    n_partitions = 8

    def map(self, key, value):
        for word in value.split():
            yield word, 1

    def reduce(self, key, values):
        yield key, sum(values)


class IdentityJob(MapReduceJob):
    n_partitions = 4

    def map(self, key, value):
        yield key, value

    def reduce(self, key, values):
        for value in values:
            yield key, value


LINES = [
    (0, "the quick brown fox"),
    (1, "the lazy dog"),
    (2, "the fox jumps"),
]


class TestSerialEngine:
    def test_word_count(self):
        output = dict(MapReduceEngine().run(WordCountJob(), LINES))
        assert output["the"] == 3
        assert output["fox"] == 2
        assert output["dog"] == 1

    def test_empty_input(self):
        assert MapReduceEngine().run(WordCountJob(), []) == []

    def test_stats_recorded(self):
        engine = MapReduceEngine()
        engine.run(WordCountJob(), LINES)
        stats = engine.last_stats
        assert stats.input_records == 3
        assert stats.mapped_records == 10
        assert stats.distinct_keys == 7
        assert stats.output_records == 7

    def test_deterministic_output_order(self):
        a = MapReduceEngine().run(WordCountJob(), LINES)
        b = MapReduceEngine().run(WordCountJob(), LINES)
        assert a == b

    def test_chain(self):
        output = MapReduceEngine().chain(
            [IdentityJob(), IdentityJob()], [(1, "a"), (2, "b")]
        )
        assert sorted(output) == [(1, "a"), (2, "b")]


class TestParallelEngine:
    def test_matches_serial_output(self):
        lines = [(i, f"word{i % 7} word{i % 3} common") for i in range(300)]
        serial = sorted(MapReduceEngine().run(WordCountJob(), lines))
        with MapReduceEngine(n_workers=3, min_parallel_records=10) as engine:
            parallel = sorted(engine.run(WordCountJob(), lines))
        assert serial == parallel

    def test_small_inputs_stay_serial(self):
        engine = MapReduceEngine(n_workers=4, min_parallel_records=1000)
        output = dict(engine.run(WordCountJob(), LINES))
        assert output["the"] == 3
        assert not engine.executor.active  # never spun up

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            MapReduceEngine(n_workers=0)


class TestPartitioning:
    def test_stable_hash_is_deterministic(self):
        assert stable_hash(("a", "b")) == stable_hash(("a", "b"))
        assert stable_hash("x") != stable_hash("y")

    def test_partition_in_range(self):
        job = WordCountJob()
        for key in ["alpha", "beta", ("pair", 1), 42]:
            assert 0 <= job.partition(key) < job.n_partitions
