"""Unit tests for Table II feature extraction and symbolization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.features import (
    FEATURE_NAMES,
    TRIGRAMS,
    extract_case_features,
    symbolize_intervals,
    trigram_histogram,
)


class TestSymbolization:
    def test_periodic_intervals_map_to_x(self):
        symbols = symbolize_intervals([100, 101, 99, 100], [100.0])
        assert symbols == "xxxx"

    def test_zero_intervals_map_to_y(self):
        symbols = symbolize_intervals([0, 100, 0], [100.0])
        assert symbols == "yxy"

    def test_other_intervals_map_to_z(self):
        # 555 rounds to the 6th multiple of 100 — beyond the 4x cap — and
        # 130 is within no multiple's 15% band.
        symbols = symbolize_intervals([100, 555, 130], [100.0])
        assert symbols == "xzz"

    def test_missed_beacon_multiples_count_as_periodic(self):
        symbols = symbolize_intervals([100, 200, 300, 400], [100.0])
        assert symbols == "xxxx"

    def test_multiple_periods(self):
        symbols = symbolize_intervals([7.5, 7.4, 10800.0], [7.5, 10800.0])
        assert symbols == "xxx"

    def test_no_periods_all_z(self):
        symbols = symbolize_intervals([10, 20, 0], [])
        assert symbols == "zzy"

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            symbolize_intervals([1.0], [1.0], tolerance=0.0)


class TestTrigramHistogram:
    def test_short_series_gives_zero_vector(self):
        assert trigram_histogram("xy").sum() == 0.0

    def test_uniform_series(self):
        hist = trigram_histogram("xxxxx")
        assert hist[TRIGRAMS.index("xxx")] == pytest.approx(1.0)
        assert hist.sum() == pytest.approx(1.0)

    def test_histogram_normalized(self):
        hist = trigram_histogram("xyzxyzxyz")
        assert hist.sum() == pytest.approx(1.0)

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="xyz", min_size=3, max_size=60))
    def test_histogram_sums_to_one(self, symbols):
        assert trigram_histogram(symbols).sum() == pytest.approx(1.0)


class TestCaseFeatures:
    def make(self, intervals, periods, **kwargs):
        return extract_case_features(intervals, periods, **kwargs)

    def test_vector_length_matches_names(self):
        features = self.make([100.0] * 10, [100.0])
        assert features.vector().size == len(FEATURE_NAMES)

    def test_clockwork_beacon_low_entropy_high_compressibility(self, rng):
        beacon = self.make(rng.normal(300, 2, size=100).tolist(), [300.0])
        random_case = self.make(
            rng.exponential(300, size=100).tolist(), [300.0]
        )
        assert beacon.entropy < random_case.entropy
        assert beacon.compressibility < random_case.compressibility

    def test_dominant_period_recorded(self):
        features = self.make([60.0] * 5, [60.0, 120.0])
        assert features.dominant_period == 60.0
        assert features.period_count == 2

    def test_interval_statistics(self):
        features = self.make([100.0, 100.0, 100.0], [100.0])
        assert features.interval_mean == pytest.approx(100.0)
        assert features.interval_cv == pytest.approx(0.0)

    def test_no_periods(self):
        features = self.make([5.0, 9.0], [])
        assert features.dominant_period == 0.0
        assert features.period_count == 0

    def test_similar_sources_and_lm_passthrough(self):
        features = self.make(
            [60.0] * 4, [60.0], similar_sources=19, lm_score=-2.9
        )
        assert features.similar_sources == 19
        assert features.lm_score == -2.9

    def test_negative_similar_sources_rejected(self):
        with pytest.raises(ValueError):
            self.make([60.0], [60.0], similar_sources=-1)

    def test_vector_is_finite(self, rng):
        features = self.make(rng.exponential(100, size=50).tolist(), [100.0])
        assert np.all(np.isfinite(features.vector()))
