"""Tests for Gini feature importances."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier


@pytest.fixture
def labelled_by_feature_two(rng):
    """Only feature 2 carries signal; 0, 1, 3 are noise."""
    X = rng.normal(size=(300, 4))
    y = (X[:, 2] > 0).astype(int)
    return X, y


class TestTreeImportances:
    def test_informative_feature_dominates(self, labelled_by_feature_two):
        X, y = labelled_by_feature_two
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        assert int(np.argmax(tree.feature_importances_)) == 2
        assert tree.feature_importances_[2] > 0.8

    def test_importances_normalized(self, labelled_by_feature_two):
        X, y = labelled_by_feature_two
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_stump_has_zero_importances(self):
        X = np.ones((10, 3))
        y = np.zeros(10, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.feature_importances_.sum() == 0.0


class TestForestImportances:
    def test_informative_feature_dominates(self, labelled_by_feature_two):
        X, y = labelled_by_feature_two
        forest = RandomForestClassifier(n_estimators=20, seed=0).fit(X, y)
        importances = forest.feature_importances_
        assert int(np.argmax(importances)) == 2
        assert importances.sum() == pytest.approx(1.0)

    def test_top_features(self, labelled_by_feature_two):
        X, y = labelled_by_feature_two
        forest = RandomForestClassifier(n_estimators=20, seed=0).fit(X, y)
        top = forest.top_features(["a", "b", "signal", "d"], k=2)
        assert top[0][0] == "signal"
        assert len(top) == 2

    def test_requires_fit(self):
        with pytest.raises(ValueError):
            RandomForestClassifier().feature_importances_

    def test_names_must_align(self, labelled_by_feature_two):
        X, y = labelled_by_feature_two
        forest = RandomForestClassifier(n_estimators=5, seed=0).fit(X, y)
        with pytest.raises(ValueError):
            forest.top_features(["only", "three", "names"])


class TestCalibration:
    def test_calibrated_threshold_controls_fpr(self):
        from repro.lm.corpus import POPULAR_DOMAINS
        from repro.lm.domains import default_scorer

        scorer = default_scorer()
        sample = POPULAR_DOMAINS[:200]
        threshold = scorer.calibrate_threshold(sample, target_fpr=0.01)
        flagged = sum(
            scorer.normalized_score(d) < threshold for d in sample
        )
        assert flagged <= max(2, int(0.02 * len(sample)))

    def test_needs_enough_samples(self):
        from repro.lm.domains import default_scorer

        with pytest.raises(ValueError):
            default_scorer().calibrate_threshold(["a.com"] * 5)
