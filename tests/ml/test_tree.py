"""Unit tests for the CART decision tree."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier


@pytest.fixture
def separable_data(rng):
    """Two Gaussian blobs, linearly separable on feature 0."""
    X0 = rng.normal(0.0, 0.5, size=(100, 3))
    X1 = rng.normal(0.0, 0.5, size=(100, 3))
    X1[:, 0] += 5.0
    X = np.vstack([X0, X1])
    y = np.concatenate([np.zeros(100, dtype=int), np.ones(100, dtype=int)])
    return X, y


class TestFit:
    def test_perfect_fit_on_separable_data(self, separable_data):
        X, y = separable_data
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        assert (tree.predict(X) == y).all()

    def test_xor_requires_depth_two(self, rng):
        X = rng.uniform(-1, 1, size=(400, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        accuracy = (tree.predict(X) == y).mean()
        assert accuracy > 0.95
        assert tree.depth >= 2

    def test_max_depth_respected(self, separable_data):
        X, y = separable_data
        tree = DecisionTreeClassifier(max_depth=1, seed=0).fit(X, y)
        assert tree.depth <= 1

    def test_min_samples_leaf(self, separable_data):
        X, y = separable_data
        tree = DecisionTreeClassifier(min_samples_leaf=50, seed=0).fit(X, y)
        # With 200 samples and leaves of >= 50, depth is limited.
        assert tree.depth <= 2

    def test_single_class_gives_stump(self):
        X = np.zeros((10, 2))
        y = np.zeros(10, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth == 0
        assert (tree.predict(X) == 0).all()

    def test_constant_features_give_stump(self):
        X = np.ones((10, 3))
        y = np.array([0, 1] * 5)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth == 0

    def test_multiclass(self, rng):
        X = np.vstack([rng.normal(c * 4, 0.5, size=(50, 2)) for c in range(3)])
        y = np.repeat(np.arange(3), 50)
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.98


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((5, 2)), np.zeros(4, dtype=int))

    def test_empty_training_set(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_predict_before_fit(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_wrong_feature_count_at_predict(self, separable_data):
        X, y = separable_data
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((1, 7)))


class TestProbabilities:
    def test_probabilities_sum_to_one(self, separable_data):
        X, y = separable_data
        tree = DecisionTreeClassifier(max_depth=2, seed=0).fit(X, y)
        proba = tree.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_confident_on_pure_leaves(self, separable_data):
        X, y = separable_data
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.max(axis=1).min() > 0.99

    def test_deterministic_given_seed(self, separable_data):
        X, y = separable_data
        a = DecisionTreeClassifier(max_features="sqrt", seed=3).fit(X, y)
        b = DecisionTreeClassifier(max_features="sqrt", seed=3).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))
