"""Tests for stratified cross-validation."""

import numpy as np
import pytest

from repro.ml.crossval import cross_validate, stratified_folds
from repro.ml.forest import RandomForestClassifier


@pytest.fixture
def separable(rng):
    X0 = rng.normal(0.0, 0.6, size=(60, 3))
    X1 = rng.normal(3.0, 0.6, size=(30, 3))
    X = np.vstack([X0, X1])
    y = np.concatenate([np.zeros(60, dtype=int), np.ones(30, dtype=int)])
    return X, y


class TestStratifiedFolds:
    def test_partition_is_complete_and_disjoint(self):
        y = [0] * 20 + [1] * 10
        folds = stratified_folds(y, 5, seed=1)
        all_indices = sorted(i for fold in folds for i in fold)
        assert all_indices == list(range(30))

    def test_class_ratio_preserved(self):
        y = np.array([0] * 20 + [1] * 10)
        for fold in stratified_folds(y, 5, seed=1):
            labels = y[fold]
            assert (labels == 1).sum() == 2
            assert (labels == 0).sum() == 4

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            stratified_folds([0, 1], 1)


class TestCrossValidate:
    def fit(self, X, y):
        return RandomForestClassifier(n_estimators=10, seed=0).fit(X, y)

    def test_high_accuracy_on_separable_data(self, separable):
        X, y = separable
        result = cross_validate(self.fit, X, y, k=5, seed=0)
        acc_mean, acc_std = result.accuracy
        assert acc_mean > 0.9
        assert acc_std < 0.2
        assert len(result.folds) == 5

    def test_summary_renders(self, separable):
        X, y = separable
        result = cross_validate(self.fit, X, y, k=3, seed=0)
        text = result.summary()
        assert "accuracy" in text and "FPR" in text

    def test_metrics_are_mean_std_pairs(self, separable):
        X, y = separable
        result = cross_validate(self.fit, X, y, k=3, seed=0)
        for metric in (result.accuracy, result.recall,
                       result.false_positive_rate):
            mean, std = metric
            assert 0.0 <= mean <= 1.0
            assert std >= 0.0

    def test_single_class_rejected(self):
        X = np.zeros((10, 2))
        y = np.zeros(10, dtype=int)
        with pytest.raises(ValueError, match="no usable folds"):
            cross_validate(self.fit, X, y, k=2)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            cross_validate(self.fit, np.zeros((4, 2)), [0, 1], k=2)
