"""Unit tests for classification metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    ConfusionMatrix,
    confusion_matrix,
    false_negatives_vs_reviewed,
    precision_at_k,
)


class TestConfusionMatrix:
    def test_paper_table_iv_values(self):
        """The paper's confusion matrix: 2163 / 0 / 41 / 148."""
        cm = ConfusionMatrix(2163, 0, 41, 148)
        assert cm.total == 2352
        assert cm.false_positive_rate == 0.0
        assert cm.accuracy == pytest.approx((2163 + 148) / 2352)
        assert cm.precision == 1.0
        assert cm.recall == pytest.approx(148 / 189)

    def test_from_labels(self):
        cm = confusion_matrix([0, 0, 1, 1, 1], [0, 1, 1, 0, 1])
        assert (cm.tn, cm.fp, cm.fn, cm.tp) == (1, 1, 1, 2)

    def test_degenerate_all_benign(self):
        cm = confusion_matrix([0, 0], [0, 0])
        assert cm.recall == 1.0
        assert cm.precision == 1.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0])

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 2], [0, 1])

    def test_as_table_renders(self):
        table = ConfusionMatrix(2163, 0, 41, 148).as_table()
        assert "2163" in table and "148" in table
        assert "true malicious" in table


class TestPrecisionAtK:
    def test_paper_96_percent(self):
        """48 of the top 50 confirmed malicious."""
        ranked = [1] * 48 + [0] * 2 + [0] * 50
        assert precision_at_k(ranked, 50) == pytest.approx(0.96)

    def test_k_larger_than_list(self):
        assert precision_at_k([1, 1], 10) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k([1], 0)


class TestFalseNegativeCurve:
    def test_reviews_clear_false_negatives(self):
        y_true = [1, 1, 0, 1, 0]
        y_pred = [0, 1, 0, 0, 0]  # cases 0 and 3 are FNs
        order = [0, 2, 3, 1, 4]
        curve = false_negatives_vs_reviewed(y_true, y_pred, order)
        assert curve.tolist() == [2, 1, 1, 0, 0, 0]

    def test_no_false_negatives(self):
        curve = false_negatives_vs_reviewed([1, 0], [1, 0], [0, 1])
        assert curve.tolist() == [0, 0, 0]

    def test_uncertainty_order_beats_random(self, rng):
        """Reviewing most-uncertain-first should clear FNs faster than a
        pessimal order that visits all true negatives first."""
        n = 100
        y_true = np.zeros(n, dtype=int)
        y_true[:10] = 1
        y_pred = np.zeros(n, dtype=int)  # all FNs among positives
        fn_first = list(range(n))
        fn_last = list(range(n))[::-1]
        curve_good = false_negatives_vs_reviewed(y_true, y_pred, fn_first)
        curve_bad = false_negatives_vs_reviewed(y_true, y_pred, fn_last)
        assert curve_good[10] == 0
        assert curve_bad[10] == 10

    def test_partial_review(self):
        curve = false_negatives_vs_reviewed([1, 1], [0, 0], [0])
        assert curve.tolist() == [2, 1]
