"""Unit tests for the random forest classifier."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier


@pytest.fixture
def noisy_data(rng):
    """Two overlapping blobs — a single tree overfits, a forest smooths."""
    X0 = rng.normal(0.0, 1.0, size=(150, 5))
    X1 = rng.normal(1.2, 1.0, size=(150, 5))
    X = np.vstack([X0, X1])
    y = np.concatenate([np.zeros(150, dtype=int), np.ones(150, dtype=int)])
    return X, y


class TestForest:
    def test_fits_and_predicts(self, noisy_data):
        X, y = noisy_data
        forest = RandomForestClassifier(n_estimators=25, seed=0).fit(X, y)
        accuracy = (forest.predict(X) == y).mean()
        assert accuracy > 0.85

    def test_generalizes_to_held_out(self, noisy_data, rng):
        X, y = noisy_data
        forest = RandomForestClassifier(n_estimators=40, seed=0).fit(X, y)
        X_test = np.vstack(
            [rng.normal(0.0, 1.0, size=(100, 5)), rng.normal(1.2, 1.0, size=(100, 5))]
        )
        y_test = np.concatenate([np.zeros(100, dtype=int), np.ones(100, dtype=int)])
        assert (forest.predict(X_test) == y_test).mean() > 0.70

    def test_probabilities_sum_to_one(self, noisy_data):
        X, y = noisy_data
        forest = RandomForestClassifier(n_estimators=10, seed=0).fit(X, y)
        proba = forest.predict_proba(X[:20])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_deterministic_given_seed(self, noisy_data):
        X, y = noisy_data
        a = RandomForestClassifier(n_estimators=10, seed=5).fit(X, y)
        b = RandomForestClassifier(n_estimators=10, seed=5).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_number_of_trees(self, noisy_data):
        X, y = noisy_data
        forest = RandomForestClassifier(n_estimators=7, seed=0).fit(X, y)
        assert len(forest.trees_) == 7

    def test_invalid_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_predict_before_fit(self):
        with pytest.raises(ValueError):
            RandomForestClassifier().predict(np.zeros((1, 2)))


class TestUncertainty:
    def test_uncertainty_bounds(self, noisy_data):
        X, y = noisy_data
        forest = RandomForestClassifier(n_estimators=20, seed=0).fit(X, y)
        u = forest.uncertainty(X)
        assert np.all(u >= -1e-9)
        assert np.all(u <= 1.0 + 1e-9)

    def test_boundary_points_more_uncertain(self, rng):
        X0 = rng.normal(0.0, 0.5, size=(200, 2))
        X1 = rng.normal(4.0, 0.5, size=(200, 2))
        X = np.vstack([X0, X1])
        y = np.concatenate([np.zeros(200, dtype=int), np.ones(200, dtype=int)])
        forest = RandomForestClassifier(n_estimators=30, seed=0).fit(X, y)
        clear = forest.uncertainty(np.array([[0.0, 0.0], [4.0, 4.0]]))
        boundary = forest.uncertainty(np.array([[2.0, 2.0]]))
        assert boundary[0] > clear.max()
