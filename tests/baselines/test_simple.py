"""Tests for the related-work baseline detectors."""

import numpy as np
import pytest

from repro.baselines import AcfBaseline, CvBaseline, FftBaseline
from repro.synthetic import BeaconSpec, NoiseModel, poisson_trace

DAY = 86_400.0


@pytest.fixture(params=[FftBaseline, AcfBaseline, CvBaseline])
def baseline(request):
    return request.param()


class TestCommonBehaviour:
    def test_detects_clean_beacon(self, baseline, rng):
        trace = BeaconSpec(period=300.0, duration=DAY).generate(rng)
        result = baseline.detect(trace)
        assert result.periodic
        assert result.period == pytest.approx(300.0, rel=0.05)
        assert result.periods() == [result.period]

    def test_rejects_tiny_input(self, baseline):
        result = baseline.detect([0.0, 1.0])
        assert not result.periodic
        assert result.periods() == []

    def test_method_label(self, baseline):
        assert baseline.detect([0.0, 1.0]).method in {"fft", "acf", "cv"}


class TestKnownWeaknesses:
    """Each baseline has the blind spot the full detector fixes."""

    def test_cv_breaks_under_missing_events(self, rng):
        noise = NoiseModel(drop_probability=0.4)
        trace = BeaconSpec(period=300.0, duration=DAY, noise=noise).generate(rng)
        assert not CvBaseline().detect(trace).periodic

    def test_acf_breaks_under_heavy_jitter_at_fine_scale(self, rng):
        noise = NoiseModel(jitter_sigma=30.0)
        trace = BeaconSpec(period=300.0, duration=DAY, noise=noise).generate(rng)
        assert not AcfBaseline(time_scale=1.0).detect(trace).periodic

    def test_fft_breaks_under_heavy_jitter(self):
        """Fine-scale jitter spreads the spectral line; with no
        multi-scale rescaling the fixed-SNR peak fades."""
        noise = NoiseModel(jitter_sigma=60.0)
        hits = 0
        for seed in range(5):
            trace = BeaconSpec(
                period=300.0, duration=DAY, noise=noise
            ).generate(np.random.default_rng(seed))
            result = FftBaseline().detect(trace)
            if result.periodic and abs(result.period - 300.0) / 300.0 < 0.1:
                hits += 1
        assert hits <= 2

    def test_fft_false_alarms_on_bursty_browsing(self):
        """A fixed SNR threshold has no answer to session-structured
        traffic: bursts concentrate low-frequency power."""
        from repro.synthetic import browsing_trace

        alarms = 0
        for seed in range(8):
            trace = browsing_trace(
                DAY, np.random.default_rng(seed), session_rate=5 / 3600.0
            )
            if trace.size >= 4 and FftBaseline().detect(trace).periodic:
                alarms += 1
        assert alarms >= 4


class TestFalseAlarms:
    @pytest.mark.parametrize("cls", [FftBaseline, AcfBaseline, CvBaseline])
    def test_poisson_mostly_quiet(self, cls):
        alarms = 0
        for seed in range(5):
            trace = poisson_trace(1 / 300.0, DAY, np.random.default_rng(seed))
            if cls().detect(trace).periodic:
                alarms += 1
        assert alarms <= 1
