"""Unit tests for repro.core.permutation."""

import numpy as np
import pytest

from repro.core.periodogram import max_power
from repro.core.permutation import permutation_threshold


def periodic_signal(period, length):
    signal = np.zeros(length)
    signal[::period] = 1.0
    return signal


class TestPermutationThreshold:
    def test_periodic_signal_exceeds_threshold(self, rng):
        signal = periodic_signal(10, 1000)
        result = permutation_threshold(signal, rng=rng)
        assert max_power(signal) > result.threshold

    def test_random_signal_mostly_below_threshold(self, rng):
        signal = (rng.random(1000) < 0.1).astype(float)
        result = permutation_threshold(signal, confidence=0.95, rng=rng)
        # The original random signal's max power should not dramatically
        # exceed the permutation threshold (same distribution).
        assert max_power(signal) < 3 * result.threshold

    def test_result_records_parameters(self, rng):
        result = permutation_threshold(
            periodic_signal(5, 200), permutations=7, confidence=0.9, rng=rng
        )
        assert result.permutations == 7
        assert result.confidence == 0.9
        assert len(result.max_powers) == 7

    def test_threshold_is_an_observed_maximum(self, rng):
        result = permutation_threshold(periodic_signal(5, 200), rng=rng)
        assert result.threshold in result.max_powers

    def test_higher_confidence_higher_threshold(self, rng):
        signal = periodic_signal(10, 500)
        seed_rng = lambda: np.random.default_rng(7)
        low = permutation_threshold(signal, confidence=0.5, rng=seed_rng())
        high = permutation_threshold(signal, confidence=1.0, rng=seed_rng())
        assert high.threshold >= low.threshold

    def test_deterministic_with_seeded_rng(self):
        signal = periodic_signal(10, 500)
        a = permutation_threshold(signal, rng=np.random.default_rng(3))
        b = permutation_threshold(signal, rng=np.random.default_rng(3))
        assert a.threshold == b.threshold

    def test_invalid_permutations(self, rng):
        with pytest.raises(ValueError):
            permutation_threshold(periodic_signal(5, 100), permutations=0, rng=rng)

    def test_short_signal_rejected(self, rng):
        with pytest.raises(ValueError):
            permutation_threshold([1.0, 0.0], rng=rng)
