"""Unit tests for repro.core.autocorrelation."""

import numpy as np
import pytest

from repro.core.autocorrelation import (
    autocorrelation,
    search_window,
    validate_candidate,
)


def periodic_signal(period, length):
    signal = np.zeros(length)
    signal[::period] = 1.0
    return signal


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        signal = rng.random(100)
        acf = autocorrelation(signal)
        assert acf[0] == pytest.approx(1.0)

    def test_periodic_signal_peaks_at_period(self):
        acf = autocorrelation(periodic_signal(10, 1000))
        # Lag 10 should be a strong local maximum.
        assert acf[10] > 0.8
        assert acf[10] > acf[5]
        assert acf[10] > acf[13]

    def test_constant_signal_is_flat(self):
        acf = autocorrelation(np.ones(50))
        assert acf[0] == 1.0
        assert np.allclose(acf[1:], 0.0)

    def test_white_noise_decorrelates(self, rng):
        acf = autocorrelation(rng.normal(size=5000))
        assert np.max(np.abs(acf[1:])) < 0.1

    def test_values_bounded(self, rng):
        signal = rng.random(500)
        acf = autocorrelation(signal)
        assert np.all(acf <= 1.0 + 1e-9)

    def test_short_signal_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0])


class TestSearchWindow:
    def test_window_contains_period(self):
        low, high = search_window(period=50.0, n_samples=1000)
        assert low <= 50 <= high

    def test_window_within_valid_lags(self):
        low, high = search_window(period=3.0, n_samples=100)
        assert 1 <= low < high <= 99

    def test_large_period_clipped(self):
        low, high = search_window(period=99.0, n_samples=100)
        assert high <= 99

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            search_window(period=0.0, n_samples=100)
        with pytest.raises(ValueError):
            search_window(period=10.0, n_samples=2)


class TestValidateCandidate:
    def test_true_period_validates(self):
        acf = autocorrelation(periodic_signal(20, 2000))
        result = validate_candidate(acf, 20.0)
        assert result.valid
        assert result.refined_period == pytest.approx(20.0, abs=1.0)
        assert result.acf_score > 0.5

    def test_refinement_corrects_coarse_estimate(self):
        acf = autocorrelation(periodic_signal(20, 2000))
        # Candidate slightly off; refined onto the ACF peak.
        result = validate_candidate(acf, 19.0)
        assert result.refined_period == pytest.approx(20.0, abs=1.0)

    def test_noise_fails_validation(self, rng):
        acf = autocorrelation(rng.normal(size=2000))
        result = validate_candidate(acf, 50.0, min_acf_score=0.2)
        assert not result.valid

    def test_min_acf_score_enforced(self):
        acf = autocorrelation(periodic_signal(20, 2000))
        result = validate_candidate(acf, 20.0, min_acf_score=2.0)
        assert not result.valid

    def test_explicit_window(self):
        acf = autocorrelation(periodic_signal(20, 2000))
        result = validate_candidate(acf, 20.0, window=(15, 25))
        assert result.valid
        assert 15 <= result.refined_period <= 25

    def test_invalid_window_rejected(self):
        acf = autocorrelation(periodic_signal(20, 200))
        with pytest.raises(ValueError):
            validate_candidate(acf, 20.0, window=(10, 5))

    def test_hill_slopes_reported(self):
        acf = autocorrelation(periodic_signal(25, 1000))
        result = validate_candidate(acf, 25.0)
        if result.valid:
            assert result.left_slope >= 0 or result.right_slope <= 0
