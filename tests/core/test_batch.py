"""Tests for the batched multi-pair detection fast path.

The contract under test is *bitwise* parity: every shape-grouped kernel
must reproduce its serial counterpart exactly (same floats, not just
close), and :class:`~repro.core.batch.BatchedDetector` must yield
``DetectionResult``s identical to a per-pair ``detect_summary`` loop for
any batch size.  Results are compared via ``repr`` because the
dataclasses carry NaN fields on rejection (``nan != nan`` defeats
``==``) while float repr round-trips exactly.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.autocorrelation import autocorrelation
from repro.core.batch import (
    BatchedDetector,
    batch_autocorrelation,
    batch_candidate_peaks,
    batch_power_spectra,
)
from repro.core.detector import DetectorConfig, PeriodicityDetector
from repro.core.periodogram import candidate_peaks, power_spectrum
from repro.core.permutation import ThresholdCache, ThresholdCacheMismatch
from repro.core.timeseries import ActivitySummary

DAY = 86_400.0


def _binary_rows(rng, rows, length):
    """Sparse binary signals shaped like real binned beacon traffic."""
    return (rng.random((rows, length)) < 0.08).astype(float)


class TestBatchPowerSpectra:
    def test_bitwise_matches_serial(self, rng):
        signals = _binary_rows(rng, 40, 1440)
        batched = batch_power_spectra(signals)
        for row in range(signals.shape[0]):
            assert np.array_equal(batched[row], power_spectrum(signals[row]))

    def test_dense_rows_match_too(self, rng):
        signals = rng.normal(size=(7, 256))
        batched = batch_power_spectra(signals)
        for row in range(7):
            assert np.array_equal(batched[row], power_spectrum(signals[row]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            batch_power_spectra(np.zeros(16))  # 1-D
        with pytest.raises(ValueError):
            batch_power_spectra(np.zeros((2, 3)))  # too short


class TestBatchAutocorrelation:
    def test_bitwise_matches_serial_large_group(self, rng):
        # Regression guard: 2-D elementwise complex products round
        # differently from 1-D ones in numpy's SIMD paths, which showed
        # up only on groups of dozens of rows of real binned signals.
        signals = list(_binary_rows(rng, 40, 720))
        batched = batch_autocorrelation(signals)
        for signal, acf in zip(signals, batched):
            assert np.array_equal(acf, autocorrelation(signal))

    def test_mixed_lengths_share_padded_groups(self, rng):
        # next_fast_len(2n) collides for nearby n, so rows of different
        # original lengths land in one padded stack.
        lengths = [713, 714, 716, 718, 720, 720, 719, 715] * 5
        signals = [
            (rng.random(n) < 0.1).astype(float) for n in lengths
        ]
        batched = batch_autocorrelation(signals)
        for signal, acf in zip(signals, batched):
            assert acf.size == signal.size
            assert np.array_equal(acf, autocorrelation(signal))

    def test_degenerate_zero_variance_signal(self):
        flat = np.ones(64)
        varied = np.zeros(64)
        varied[::7] = 1.0
        batched = batch_autocorrelation([flat, varied])
        assert np.array_equal(batched[0], autocorrelation(flat))
        assert batched[0][0] == 1.0 and not batched[0][1:].any()
        assert np.array_equal(batched[1], autocorrelation(varied))

    def test_rejects_short_or_2d_signals(self):
        with pytest.raises(ValueError):
            batch_autocorrelation([np.zeros(3)])
        with pytest.raises(ValueError):
            batch_autocorrelation([np.zeros((4, 4))])


class TestBatchCandidatePeaks:
    def test_matches_serial_per_row(self, rng):
        signals = _binary_rows(rng, 12, 512)
        thresholds = [
            float(np.median(power_spectrum(row))) for row in signals
        ]
        batched = batch_candidate_peaks(signals, thresholds)
        for row, threshold, peaks in zip(signals, thresholds, batched):
            assert peaks == candidate_peaks(row, threshold)

    def test_threshold_count_must_match_rows(self, rng):
        signals = _binary_rows(rng, 3, 64)
        with pytest.raises(ValueError):
            batch_candidate_peaks(signals, [0.5, 0.5])


def _workload(seed, n_pairs=24):
    """Mixed beacons / sparse noise / degenerate pairs, several scales."""
    rng = np.random.default_rng(seed)
    summaries = []
    for index in range(n_pairs):
        kind = index % 4
        scale = float(rng.choice([1.0, 5.0, 30.0]))
        if kind == 0:  # beacon
            period = float(rng.uniform(40.0, 400.0))
            ts = np.cumsum(
                rng.normal(period, period * 0.05, size=int(rng.integers(40, 120)))
            )
            ts = ts[ts > 0]
        elif kind == 1:  # sparse noise
            ts = np.sort(rng.uniform(0, DAY / 4, size=int(rng.integers(5, 40))))
        elif kind == 2:  # too few events (early rejection)
            ts = np.sort(rng.uniform(0, 3600.0, size=int(rng.integers(1, 4))))
        else:  # degenerate: all events in one instant
            ts = np.full(int(rng.integers(4, 9)), 120.0)
        summaries.append(
            ActivitySummary.from_timestamps(
                f"h{index}", f"d{index % 5}", ts, time_scale=scale
            )
        )
    return summaries


def _serial_results(detector, summaries):
    return [detector.detect_summary(summary) for summary in summaries]


class TestBatchedDetectorParity:
    @pytest.mark.parametrize("batch_size", [1, 7, 256])
    def test_matches_serial_detection(self, batch_size):
        summaries = _workload(seed=3)
        serial = _serial_results(
            PeriodicityDetector(
                DetectorConfig(seed=0), threshold_cache=ThresholdCache()
            ),
            summaries,
        )
        batched = BatchedDetector(
            PeriodicityDetector(
                DetectorConfig(seed=0), threshold_cache=ThresholdCache()
            ),
            batch_size=batch_size,
        ).detect_summaries(summaries)
        assert [repr(r) for r in batched] == [repr(r) for r in serial]

    def test_matches_serial_without_threshold_cache(self):
        # The no-cache path draws permutation shuffles from each pair's
        # seeded generator; the batched driver must consume the exact
        # same random stream in the exact same order.
        summaries = _workload(seed=11, n_pairs=8)
        serial = _serial_results(
            PeriodicityDetector(DetectorConfig(seed=0)), summaries
        )
        batched = BatchedDetector(
            PeriodicityDetector(DetectorConfig(seed=0)), batch_size=3
        ).detect_summaries(summaries)
        assert [repr(r) for r in batched] == [repr(r) for r in serial]

    def test_empty_input(self):
        assert BatchedDetector().detect_summaries([]) == []

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            BatchedDetector(batch_size=0)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_pairs=st.integers(min_value=1, max_value=16),
        batch_size=st.sampled_from([1, 2, 5, 64]),
    )
    def test_property_random_pair_sets(self, seed, n_pairs, batch_size):
        summaries = _workload(seed=seed, n_pairs=n_pairs)
        serial = _serial_results(
            PeriodicityDetector(
                DetectorConfig(seed=0), threshold_cache=ThresholdCache()
            ),
            summaries,
        )
        batched = BatchedDetector(
            PeriodicityDetector(
                DetectorConfig(seed=0), threshold_cache=ThresholdCache()
            ),
            batch_size=batch_size,
        ).detect_summaries(summaries)
        assert [repr(r) for r in batched] == [repr(r) for r in serial]


class TestThresholdCacheWarmth:
    def test_precompute_fills_buckets_without_stats(self):
        cache = ThresholdCache()
        computed = cache.precompute([(128, 12), (128, 13), (4096, 40)])
        assert computed == len(cache) > 0
        assert cache.hits == 0 and cache.misses == 0
        # a second precompute over the same grid is a no-op
        assert cache.precompute([(128, 12), (4096, 40)]) == 0

    def test_warm_lookup_matches_cold(self):
        cold = ThresholdCache()
        warm = ThresholdCache()
        warm.precompute([(500, 25)])
        assert warm.threshold(500, 25) == cold.threshold(500, 25)
        assert warm.hits == 1 and warm.misses == 0

    def test_repeated_lookup_uses_exact_front_map(self):
        cache = ThresholdCache()
        first = cache.threshold(777, 31)
        second = cache.threshold(777, 31)
        assert first == second
        assert cache.misses == 1 and cache.hits == 1

    def test_save_load_roundtrip(self, tmp_path):
        source = ThresholdCache()
        source.precompute([(64, 8), (1024, 30), (9000, 200)])
        path = source.save(tmp_path / "cache.json")
        target = ThresholdCache()
        assert target.load(path) == len(source)
        assert len(target) == len(source)
        assert target.threshold(1024, 30) == source.threshold(1024, 30)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ratio": 1.10},
            {"permutations": 7},
            {"confidence": 0.5},
            {"seed": 9},
        ],
    )
    def test_load_refuses_mismatched_parameters(self, tmp_path, kwargs):
        source = ThresholdCache()
        source.precompute([(64, 8)])
        path = source.save(tmp_path / "cache.json")
        with pytest.raises(ThresholdCacheMismatch):
            ThresholdCache(**kwargs).load(path)

    def test_load_refuses_wrong_file_version(self, tmp_path):
        source = ThresholdCache()
        source.precompute([(64, 8)])
        path = source.save(tmp_path / "cache.json")
        payload = path.read_text(encoding="utf-8").replace(
            '"version": 1', '"version": 99'
        )
        path.write_text(payload, encoding="utf-8")
        with pytest.raises(ThresholdCacheMismatch):
            ThresholdCache().load(path)

    def test_pickled_cache_stays_warm(self):
        cache = ThresholdCache()
        expected = cache.threshold(640, 20)
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == len(cache)
        assert clone.threshold(640, 20) == expected
        assert clone.hits == cache.hits + 1
