"""Unit tests for repro.core.periodogram."""

import numpy as np
import pytest

from repro.core.periodogram import (
    candidate_peaks,
    max_power,
    power_spectrum,
    spectrum_frequencies,
)


def periodic_signal(period, length):
    """A binary spike train with one spike every ``period`` slots."""
    signal = np.zeros(length)
    signal[::period] = 1.0
    return signal


class TestPowerSpectrum:
    def test_length_matches_frequencies(self):
        signal = periodic_signal(10, 1000)
        power = power_spectrum(signal)
        freqs = spectrum_frequencies(1000)
        assert power.size == freqs.size == 500

    def test_pure_sinusoid_concentrates_power(self):
        n = 1024
        t = np.arange(n)
        signal = np.sin(2 * np.pi * t / 64)
        power = power_spectrum(signal)
        freqs = spectrum_frequencies(n)
        peak_freq = freqs[np.argmax(power)]
        assert peak_freq == pytest.approx(1 / 64, rel=0.02)

    def test_dc_component_removed(self):
        constant = np.ones(64) * 5.0
        power = power_spectrum(constant)
        assert np.allclose(power, 0.0)

    def test_mean_invariance(self):
        signal = periodic_signal(8, 256)
        shifted = signal + 100.0
        assert np.allclose(power_spectrum(signal), power_spectrum(shifted))

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            power_spectrum([1.0, 0.0, 1.0])


class TestMaxPower:
    def test_periodic_has_higher_max_than_constant(self):
        periodic = periodic_signal(10, 500)
        assert max_power(periodic) > 0

    def test_periodic_beats_shuffled(self, rng):
        periodic = periodic_signal(10, 1000)
        shuffled = rng.permutation(periodic)
        assert max_power(periodic) > 2 * max_power(shuffled)


class TestCandidatePeaks:
    def test_finds_true_period(self):
        # An impulse train spreads power equally over all harmonics of
        # the fundamental; the fundamental must be among the top peaks.
        signal = periodic_signal(20, 2000)
        peaks = candidate_peaks(signal, power_threshold=0.0, max_candidates=120)
        assert peaks, "expected at least one peak"
        assert any(abs(p.period - 20.0) / 20.0 < 0.05 for p in peaks)

    def test_sinusoid_strongest_peak_is_fundamental(self):
        n = 2048
        signal = np.sin(2 * np.pi * np.arange(n) / 32)
        peaks = candidate_peaks(signal, power_threshold=0.0, max_candidates=5)
        assert peaks[0].period == pytest.approx(32.0, rel=0.05)

    def test_ordering_strongest_first(self):
        signal = periodic_signal(16, 1024)
        peaks = candidate_peaks(signal, power_threshold=0.0, max_candidates=10)
        powers = [p.power for p in peaks]
        assert powers == sorted(powers, reverse=True)

    def test_threshold_filters_everything(self):
        signal = periodic_signal(16, 1024)
        assert candidate_peaks(signal, power_threshold=1e12) == []

    def test_max_candidates_respected(self):
        signal = periodic_signal(16, 1024)
        peaks = candidate_peaks(signal, power_threshold=0.0, max_candidates=3)
        assert len(peaks) == 3

    def test_frequency_period_consistency(self):
        signal = periodic_signal(10, 500)
        for peak in candidate_peaks(signal, 0.0, max_candidates=8):
            assert peak.period == pytest.approx(1.0 / peak.frequency)

    def test_invalid_max_candidates(self):
        with pytest.raises(ValueError):
            candidate_peaks(periodic_signal(10, 100), 0.0, max_candidates=0)
