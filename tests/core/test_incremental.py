"""Tests for the incremental sliding-DFT spectral engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import (
    IncrementalConfig,
    IncrementalSpectralState,
    IncrementalStateCache,
    IncrementalStateMismatch,
    bin_span,
    screen_scales,
)
from repro.core.periodogram import power_spectrum


def _random_bins(rng, size):
    return (rng.random(size) < 0.3).astype(float)


class TestSlidingDftParity:
    """The tentpole invariant: the maintained spectrum tracks the cold one."""

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=16, max_value=70),
        n_appends=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_tracks_cold_power_spectrum(self, n, n_appends, seed):
        """Bit-identical at refresh points, <= 1e-9 drift between them.

        Window lengths 16..70 cross several ``next_fast_len``
        boundaries, so both FFT-friendly and awkward lengths (primes,
        2*prime) are exercised.
        """
        rng = np.random.default_rng(seed)
        config = IncrementalConfig(refresh_every=4)
        state = IncrementalSpectralState(_random_bins(rng, n), config=config)
        for _ in range(n_appends):
            shift = int(rng.integers(1, max(2, n // 3)))
            outcome = state.append_bins(_random_bins(rng, shift))
            cold = power_spectrum(state.window)
            if state.power_exact:
                assert outcome in ("refresh", "fallback")
                np.testing.assert_array_equal(state.power(), cold)
            else:
                assert outcome == "slide"
                np.testing.assert_allclose(
                    state.power(), cold, atol=1e-9, rtol=1e-9
                )

    def test_refresh_cadence_is_exact(self):
        rng = np.random.default_rng(1)
        config = IncrementalConfig(refresh_every=3)
        state = IncrementalSpectralState(_random_bins(rng, 48), config=config)
        outcomes = [state.append_bins(_random_bins(rng, 2)) for _ in range(6)]
        assert outcomes == [
            "slide", "slide", "refresh", "slide", "slide", "refresh"
        ]
        np.testing.assert_array_equal(
            state.power(), power_spectrum(state.window)
        )

    def test_large_shift_falls_back_to_full_recompute(self):
        rng = np.random.default_rng(2)
        config = IncrementalConfig(max_drift_fraction=0.25)
        state = IncrementalSpectralState(_random_bins(rng, 40), config=config)
        outcome = state.append_bins(_random_bins(rng, 20))  # 50% > 25%
        assert outcome == "fallback"
        assert state.power_exact
        np.testing.assert_array_equal(
            state.power(), power_spectrum(state.window)
        )

    def test_tight_error_bound_forces_refresh(self):
        # Irrational-ish float bins guarantee rounding in the update, so
        # the Parseval self-check must exceed a near-zero bound quickly.
        rng = np.random.default_rng(3)
        config = IncrementalConfig(
            refresh_every=1_000_000, error_bound=1e-300
        )
        state = IncrementalSpectralState(rng.random(32), config=config)
        outcomes = {state.append_bins(rng.random(4)) for _ in range(8)}
        assert "refresh" in outcomes

    def test_empty_append_is_a_noop(self):
        state = IncrementalSpectralState(np.ones(16))
        before = state.power().copy()
        assert state.append_bins(np.array([])) == "noop"
        np.testing.assert_array_equal(state.power(), before)

    def test_window_tracks_absolute_grid(self):
        state = IncrementalSpectralState(np.zeros(8), start_bin=100)
        state.append_bins(np.ones(3))
        assert state.start_bin == 103
        assert state.end_bin == 111
        np.testing.assert_array_equal(state.window[-3:], np.ones(3))


class TestBinSpan:
    def test_absolute_slots_are_window_independent(self):
        ts = np.array([10.0, 95.0, 210.0, 340.0])
        a = bin_span(ts, 60.0, 0, 8)
        b = bin_span(ts, 60.0, 2, 8)
        np.testing.assert_array_equal(a[2:], b)

    def test_binary_caps_at_one(self):
        ts = np.array([5.0, 6.0, 7.0])
        assert bin_span(ts, 60.0, 0, 4)[0] == 1.0
        assert bin_span(ts, 60.0, 0, 4, binary=False)[0] == 3.0

    def test_out_of_span_events_are_dropped(self):
        signal = bin_span(np.array([-5.0, 1e9]), 60.0, 0, 4)
        np.testing.assert_array_equal(signal, np.zeros(4))


class TestScreenScales:
    def test_rungs_divide_the_day(self):
        for scale, bins_per_day in screen_scales(
            time_scale=600.0, window_days=30
        ):
            assert bins_per_day * scale == pytest.approx(86_400.0)

    def test_finest_rung_matches_time_scale_bucket(self):
        rungs = screen_scales(time_scale=600.0, window_days=30)
        assert rungs[0][0] >= 600.0


class TestStateCachePersistence:
    def _cache(self, rng, n_states=5):
        cache = IncrementalStateCache(fingerprint="cfg-v1")
        for index in range(n_states):
            state = IncrementalSpectralState(
                _random_bins(rng, 24 + index), start_bin=index * 7
            )
            state.append_bins(_random_bins(rng, 3))
            cache.put(f"pair-{index}\x1fdest\x1f144", state)
        return cache

    def test_save_load_round_trip(self, tmp_path):
        rng = np.random.default_rng(9)
        cache = self._cache(rng)
        path = tmp_path / "incremental-state.bin"
        cache.save(path)
        loaded = IncrementalStateCache.load(path, fingerprint="cfg-v1")
        assert sorted(loaded.keys()) == sorted(cache.keys())
        for key in cache.keys():
            original, restored = cache.get(key), loaded.get(key)
            assert restored.start_bin == original.start_bin
            assert restored.n == original.n
            np.testing.assert_array_equal(restored.window, original.window)
            np.testing.assert_array_equal(restored.power(), original.power())

    def test_restored_state_keeps_sliding(self, tmp_path):
        rng = np.random.default_rng(10)
        cache = self._cache(rng, n_states=1)
        path = cache.save(tmp_path / "state.bin")
        loaded = IncrementalStateCache.load(path, fingerprint="cfg-v1")
        key = cache.keys()[0]
        original, restored = cache.get(key), loaded.get(key)
        bins = _random_bins(rng, 4)
        assert original.append_bins(bins.copy()) == restored.append_bins(bins)
        np.testing.assert_array_equal(restored.power(), original.power())

    def test_fingerprint_mismatch_raises(self, tmp_path):
        rng = np.random.default_rng(11)
        path = self._cache(rng).save(tmp_path / "state.bin")
        with pytest.raises(IncrementalStateMismatch):
            IncrementalStateCache.load(path, fingerprint="other-config")

    def test_corrupt_file_raises_value_error(self, tmp_path):
        path = tmp_path / "state.bin"
        path.write_bytes(b"not a state cache")
        with pytest.raises((IncrementalStateMismatch, ValueError)):
            IncrementalStateCache.load(path, fingerprint="cfg-v1")
