"""Tests for the batched periodogram helper."""

import numpy as np
import pytest

from repro.core.periodogram import batch_max_power, max_power


class TestBatchMaxPower:
    def test_matches_per_row_computation(self, rng):
        signals = rng.random((5, 256))
        batched = batch_max_power(signals)
        individual = np.array([max_power(row) for row in signals])
        assert np.allclose(batched, individual)

    def test_periodic_row_stands_out(self, rng):
        noise = (rng.random((3, 1000)) < 0.05).astype(float)
        periodic = np.zeros(1000)
        periodic[::10] = 1.0
        signals = np.vstack([noise, periodic[None, :]])
        powers = batch_max_power(signals)
        assert powers[-1] > 3 * powers[:-1].max()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            batch_max_power(np.zeros(10))  # 1-D
        with pytest.raises(ValueError):
            batch_max_power(np.zeros((3, 2)))  # too short
