"""Unit tests for repro.core.pruning — the paper's step 2 filters."""

import numpy as np
import pytest

from repro.core.gmm import fit_gmm
from repro.core.pruning import (
    fold_intervals,
    prune_candidates,
    prune_high_frequency,
    prune_sampling_rate,
    t_test_candidate,
)


class TestHighFrequencyFilter:
    def test_tdss_example_from_paper(self):
        """Fig. 6: min interval 196 s prunes all candidates below it."""
        intervals = [404, 663, 400, 362, 1933, 445, 407, 423, 372, 395,
                     362, 400, 369, 822, 5512, 196, 1023, 635, 817, 919,
                     492, 423, 391, 442, 759]
        candidates = [30.5473, 2.36615, 387.34, 8.8351, 33.1626]
        decisions = prune_high_frequency(candidates, intervals)
        kept = [d.period for d in decisions if d.kept]
        assert kept == [387.34]

    def test_all_kept_when_periods_large(self):
        decisions = prune_high_frequency([100.0, 200.0], [50.0, 60.0])
        assert all(d.kept for d in decisions)

    def test_no_positive_intervals(self):
        decisions = prune_high_frequency([10.0], [0.0, 0.0])
        assert not decisions[0].kept
        assert "no positive intervals" in decisions[0].reason


class TestFoldIntervals:
    def test_identity_for_single_period(self):
        intervals = np.array([100.0, 101.0, 99.0])
        assert np.allclose(fold_intervals(intervals, 100.0), intervals)

    def test_doubles_fold_back(self):
        intervals = np.array([100.0, 200.0, 300.0])
        folded = fold_intervals(intervals, 100.0)
        assert np.allclose(folded, [100.0, 100.0, 100.0])

    def test_sub_period_intervals_untouched(self):
        intervals = np.array([10.0, 100.0])
        folded = fold_intervals(intervals, 100.0)
        assert folded[0] == 10.0


class TestTTest:
    def test_true_period_kept(self, rng):
        intervals = rng.normal(300.0, 10.0, size=100)
        decision = t_test_candidate(300.0, intervals)
        assert decision.kept
        assert decision.p_value > 0.05

    def test_wrong_period_pruned(self, rng):
        intervals = rng.normal(300.0, 10.0, size=100)
        decision = t_test_candidate(350.0, intervals, fold=False)
        assert not decision.kept

    def test_folding_tolerates_missing_events(self, rng):
        """25% missing beacons double some intervals; folding recovers."""
        base = rng.normal(300.0, 5.0, size=200)
        doubled = np.where(rng.random(200) < 0.25, base * 2, base)
        assert not t_test_candidate(300.0, doubled, fold=False).kept
        assert t_test_candidate(300.0, doubled, fold=True).kept

    def test_mixture_restricts_to_matching_cluster(self, rng):
        """Conficker-style two-period intervals pass via the mixture."""
        intervals = np.concatenate(
            [rng.normal(7.5, 0.3, size=300), rng.normal(10800.0, 30.0, size=20)]
        )
        mixture = fit_gmm(intervals, 2)
        without = t_test_candidate(7.5, intervals, mixture=None, fold=False)
        with_mix = t_test_candidate(7.5, intervals, mixture=mixture, fold=False)
        assert not without.kept
        assert with_mix.kept

    def test_no_positive_intervals_pruned(self):
        decision = t_test_candidate(10.0, [0.0, 0.0])
        assert not decision.kept

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            t_test_candidate(0.0, [1.0, 2.0])

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            t_test_candidate(10.0, [1.0, 2.0], alpha=2.0)


class TestSamplingRateFilter:
    def test_too_few_cycles_pruned(self):
        decisions = prune_sampling_rate(
            [1000.0], n_events=100, duration=2000.0, min_cycles=3
        )
        assert not decisions[0].kept
        assert "cycles" in decisions[0].reason

    def test_enough_cycles_kept(self):
        decisions = prune_sampling_rate(
            [100.0], n_events=100, duration=2000.0, min_cycles=3
        )
        assert decisions[0].kept

    def test_too_few_events_pruned(self):
        decisions = prune_sampling_rate(
            [10.0], n_events=2, duration=2000.0, min_events=4
        )
        assert not decisions[0].kept
        assert "events" in decisions[0].reason

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            prune_sampling_rate([10.0], n_events=5, duration=100.0, min_cycles=0)
        with pytest.raises(ValueError):
            prune_sampling_rate([10.0], n_events=5, duration=100.0, min_events=1)


class TestPruneCandidates:
    def test_tdss_end_to_end(self, rng):
        """Only the true ~387 s candidate survives all three filters."""
        intervals = rng.normal(387.0, 30.0, size=200)
        intervals = np.maximum(intervals, 200.0)
        candidates = [30.5473, 2.36615, 387.34, 8.8351, 33.1626]
        decisions = prune_candidates(candidates, intervals)
        kept = [d.period for d in decisions if d.kept]
        assert kept == [387.34]

    def test_order_of_reasons(self, rng):
        """High-frequency rejection takes precedence over the t-test."""
        intervals = rng.normal(387.0, 30.0, size=200)
        decisions = prune_candidates([1.0], intervals)
        assert "min interval" in decisions[0].reason

    def test_one_decision_per_candidate(self, rng):
        intervals = rng.normal(100.0, 5.0, size=50)
        candidates = [50.0, 100.0, 150.0, 200.0]
        decisions = prune_candidates(candidates, intervals)
        assert len(decisions) == len(candidates)
        assert [d.period for d in decisions] == candidates
