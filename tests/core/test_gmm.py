"""Unit tests for repro.core.gmm."""

import numpy as np
import pytest

from repro.core.gmm import fit_gmm, select_gmm


@pytest.fixture
def two_cluster_data(rng):
    """Intervals mimicking Conficker: many ~5 s, some ~175 s."""
    fast = rng.normal(5.0, 0.5, size=400)
    slow = rng.normal(175.0, 3.0, size=100)
    return np.concatenate([fast, slow])


class TestFitGmm:
    def test_single_component_recovers_mean(self, rng):
        data = rng.normal(50.0, 2.0, size=500)
        model = fit_gmm(data, 1)
        assert model.components[0].mean == pytest.approx(50.0, abs=0.5)
        assert model.components[0].weight == pytest.approx(1.0)

    def test_two_components_recover_clusters(self, two_cluster_data):
        model = fit_gmm(two_cluster_data, 2)
        means = sorted(c.mean for c in model.components)
        assert means[0] == pytest.approx(5.0, abs=1.0)
        assert means[1] == pytest.approx(175.0, abs=5.0)

    def test_weights_sum_to_one(self, two_cluster_data):
        model = fit_gmm(two_cluster_data, 3)
        assert sum(c.weight for c in model.components) == pytest.approx(1.0)

    def test_variance_floor_respected(self):
        data = [5.0] * 20  # zero-variance data
        model = fit_gmm(data, 1)
        assert model.components[0].variance >= 1e-4

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_gmm([1.0], 2)

    def test_invalid_component_count(self):
        with pytest.raises(ValueError):
            fit_gmm([1.0, 2.0], 0)

    def test_deterministic_with_seed(self, two_cluster_data):
        a = fit_gmm(two_cluster_data, 2, rng=np.random.default_rng(1))
        b = fit_gmm(two_cluster_data, 2, rng=np.random.default_rng(1))
        assert a.log_likelihood == b.log_likelihood


class TestSelectGmm:
    def test_bic_picks_two_for_two_clusters(self, two_cluster_data):
        model = select_gmm(two_cluster_data, max_components=4)
        assert model.n_components == 2

    def test_bic_picks_one_for_unimodal(self, rng):
        data = rng.normal(60.0, 1.0, size=300)
        model = select_gmm(data, max_components=4)
        assert model.n_components == 1

    def test_candidate_periods_heaviest_first(self, two_cluster_data):
        model = select_gmm(two_cluster_data, max_components=4)
        periods = model.candidate_periods()
        assert periods[0] == pytest.approx(5.0, abs=1.0)

    def test_min_count_keeps_rare_component(self, rng):
        # 500 fast intervals, only 8 slow ones (weight 1.6%).
        data = np.concatenate(
            [rng.normal(7.5, 0.2, size=500), rng.normal(10800.0, 10.0, size=8)]
        )
        model = select_gmm(data, max_components=4)
        by_weight_only = model.candidate_periods(min_weight=0.1)
        with_count = model.candidate_periods(min_weight=0.1, min_count=6)
        assert any(p > 10_000 for p in with_count)
        assert len(with_count) >= len(by_weight_only)

    def test_respects_sample_minimum(self):
        with pytest.raises(ValueError):
            select_gmm([1.0])


class TestResponsibilities:
    def test_hard_assignment_separates_clusters(self, two_cluster_data):
        model = fit_gmm(two_cluster_data, 2)
        assignment = model.assign([5.0, 175.0])
        assert assignment[0] != assignment[1]

    def test_responsibilities_rows_sum_to_one(self, two_cluster_data):
        model = fit_gmm(two_cluster_data, 3)
        resp = model.responsibilities(two_cluster_data[:50])
        assert np.allclose(resp.sum(axis=1), 1.0)
