"""Integration tests for the full periodicity detector (Section IV)."""

import numpy as np
import pytest

from repro.core import DetectorConfig, PeriodicityDetector
from repro.core.timeseries import ActivitySummary
from repro.synthetic import (
    BeaconSpec,
    NoiseModel,
    conficker_spec,
    poisson_trace,
    tdss_spec,
    zeus_spec,
)


@pytest.fixture(scope="module")
def detector():
    return PeriodicityDetector(DetectorConfig(seed=7))


DAY = 86_400.0


class TestCleanBeacons:
    @pytest.mark.parametrize("period", [30.0, 60.0, 300.0, 901.0, 3600.0])
    def test_detects_clean_periods(self, detector, period):
        rng = np.random.default_rng(int(period))
        trace = BeaconSpec(period=period, duration=DAY).generate(rng)
        result = detector.detect(trace)
        assert result.periodic
        assert result.dominant_period == pytest.approx(period, rel=0.05)

    def test_reports_candidates_ranked(self, detector, rng):
        trace = BeaconSpec(period=120.0, duration=DAY).generate(rng)
        result = detector.detect(trace)
        scores = [c.acf_score for c in result.candidates]
        assert scores == sorted(scores, reverse=True)


class TestNoisyBeacons:
    def test_gaussian_jitter(self, detector, rng):
        noise = NoiseModel(jitter_sigma=15.0)
        trace = BeaconSpec(period=300.0, duration=DAY, noise=noise).generate(rng)
        result = detector.detect(trace)
        assert result.periodic
        assert result.dominant_period == pytest.approx(300.0, rel=0.05)

    def test_missing_events(self, detector, rng):
        noise = NoiseModel(drop_probability=0.4)
        trace = BeaconSpec(period=300.0, duration=DAY, noise=noise).generate(rng)
        result = detector.detect(trace)
        assert result.periodic
        assert min(result.periods()) == pytest.approx(300.0, rel=0.05)

    def test_added_events(self, detector, rng):
        noise = NoiseModel(add_rate=1.0 / 900.0)
        trace = BeaconSpec(period=300.0, duration=DAY, noise=noise).generate(rng)
        result = detector.detect(trace)
        assert result.periodic
        assert any(abs(p - 300.0) / 300.0 < 0.05 for p in result.periods())

    def test_combined_noise(self, detector, rng):
        noise = NoiseModel(
            jitter_sigma=10.0, drop_probability=0.2, add_rate=1.0 / 1800.0
        )
        trace = BeaconSpec(period=300.0, duration=DAY, noise=noise).generate(rng)
        result = detector.detect(trace)
        assert result.periodic

    def test_outage_gap(self, detector, rng):
        noise = NoiseModel(gaps=((20_000.0, 40_000.0),))
        trace = BeaconSpec(period=300.0, duration=DAY, noise=noise).generate(rng)
        result = detector.detect(trace)
        assert result.periodic
        assert result.dominant_period == pytest.approx(300.0, rel=0.05)


class TestBotnetBehaviours:
    def test_tdss(self, detector, rng):
        result = detector.detect(tdss_spec().generate(rng))
        assert result.periodic
        assert any(abs(p - 387.0) / 387.0 < 0.05 for p in result.periods())

    def test_conficker_multi_period(self, detector, rng):
        result = detector.detect(conficker_spec().generate(rng))
        assert result.periodic
        periods = result.periods()
        assert any(p < 10.0 for p in periods), "burst period missing"
        assert any(p > 9_000.0 for p in periods), "macro period missing"

    def test_zeus(self, detector, rng):
        result = detector.detect(zeus_spec(period=63.0).generate(rng))
        assert result.periodic
        assert min(result.periods()) == pytest.approx(63.0, rel=0.05)


class TestNegativeControls:
    @pytest.mark.parametrize("rate", [1 / 600.0, 1 / 120.0, 1 / 30.0])
    def test_poisson_not_periodic(self, detector, rate):
        rng = np.random.default_rng(int(1 / rate))
        result = detector.detect(poisson_trace(rate, DAY, rng))
        assert not result.periodic

    def test_bursty_browsing_not_periodic(self, detector, rng):
        from repro.synthetic import browsing_trace

        trace = browsing_trace(DAY, rng, session_rate=5 / 3600.0)
        if trace.size >= 4:
            result = detector.detect(trace)
            assert not result.periodic


class TestEdgeCases:
    def test_too_few_events(self, detector):
        result = detector.detect([0.0, 100.0])
        assert not result.periodic
        assert "fewer than" in result.rejection_reason

    def test_single_slot(self, detector):
        result = detector.detect([5.0, 5.1, 5.2, 5.3])
        assert not result.periodic

    def test_empty_input(self, detector):
        result = detector.detect([])
        assert not result.periodic

    def test_unsorted_input_handled(self, detector, rng):
        trace = BeaconSpec(period=60.0, duration=DAY).generate(rng)
        shuffled = rng.permutation(trace)
        result = detector.detect(shuffled)
        assert result.periodic
        assert result.dominant_period == pytest.approx(60.0, rel=0.05)

    def test_deterministic_given_seed(self, rng):
        trace = BeaconSpec(
            period=300.0, duration=DAY, noise=NoiseModel(jitter_sigma=20.0)
        ).generate(rng)
        det = PeriodicityDetector(DetectorConfig(seed=42))
        a = det.detect(trace)
        b = det.detect(trace)
        assert a.periods() == b.periods()


class TestDetectSummary:
    def test_summary_roundtrip(self, detector, rng):
        trace = BeaconSpec(period=300.0, duration=DAY).generate(rng)
        summary = ActivitySummary.from_timestamps("s", "d", trace)
        result = detector.detect_summary(summary)
        assert result.periodic
        assert result.dominant_period == pytest.approx(300.0, rel=0.05)

    def test_coarse_summary_analyzed_at_own_scale(self, detector, rng):
        trace = BeaconSpec(period=3600.0, duration=7 * DAY).generate(rng)
        summary = ActivitySummary.from_timestamps("s", "d", trace, time_scale=60.0)
        result = detector.detect_summary(summary)
        assert result.periodic
        assert result.dominant_period == pytest.approx(3600.0, rel=0.05)
        assert result.time_scale == 60.0


class TestConfigValidation:
    def test_bad_confidence(self):
        with pytest.raises(ValueError):
            DetectorConfig(confidence=1.5)

    def test_bad_scale_factor(self):
        with pytest.raises(ValueError):
            DetectorConfig(scale_factor=1.0)

    def test_bad_min_events(self):
        with pytest.raises(ValueError):
            DetectorConfig(min_events=1)


class TestPowerNearBin:
    """Regression: power_spectrum drops the DC bin, so spectrum[i] holds
    DFT bin i+1 — the GMM candidate probe must shift its slice down by
    one or it misses the left edge of its window (the old off-by-one)."""

    def test_finds_peak_at_left_edge_of_window(self):
        from repro.core.detector import _power_near_bin

        # Peak lives at spectrum index 7 == DFT bin 8; probing around
        # center=10 with half_width=2 covers bins [8, 12] == indices
        # [7, 11].  The pre-fix slice started at index 8 and missed it.
        spectrum = np.zeros(64)
        spectrum[7] = 5.0
        assert _power_near_bin(spectrum, center=10.0, half_width=2) == 5.0
        assert spectrum[8:12].max() == 0.0  # the old slice saw nothing

    def test_exact_center_bin(self):
        from repro.core.detector import _power_near_bin

        spectrum = np.zeros(32)
        spectrum[9] = 3.0  # DFT bin 10
        assert _power_near_bin(spectrum, center=10.0, half_width=0) == 3.0

    def test_window_outside_spectrum_returns_none(self):
        from repro.core.detector import _power_near_bin

        spectrum = np.ones(8)
        assert _power_near_bin(spectrum, center=100.0, half_width=1) is None

    def test_gmm_candidate_survives_detection(self, rng):
        """End to end: a beacon whose period the GMM proposes must keep
        its spectral support under the corrected bin mapping."""
        noise = NoiseModel(jitter_sigma=10.0)
        trace = BeaconSpec(period=300.0, duration=DAY, noise=noise).generate(rng)
        det = PeriodicityDetector(DetectorConfig(seed=11))
        result = det.detect(trace)
        assert result.periodic
        assert result.dominant_period == pytest.approx(300.0, rel=0.05)


class TestThresholdCacheThreading:
    """Regression: detect_summary on a coarse summary rebuilds the
    detector at the summary's own time scale — it used to silently drop
    the threshold cache in the process."""

    def test_cache_consulted_for_coarse_summary(self, rng):
        from repro.core.permutation import ThresholdCache

        cache = ThresholdCache()
        det = PeriodicityDetector(
            DetectorConfig(seed=7), threshold_cache=cache
        )
        trace = BeaconSpec(period=3600.0, duration=7 * DAY).generate(rng)
        summary = ActivitySummary.from_timestamps(
            "s", "d", trace, time_scale=60.0
        )
        det.detect_summary(summary)
        first_lookups = cache.hits + cache.misses
        assert first_lookups > 0, "coarse-scale detector dropped the cache"

        hits_before = cache.hits
        det.detect_summary(summary)
        assert cache.hits > hits_before
