"""Unit and property tests for repro.core.timeseries."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.timeseries import (
    ActivitySummary,
    bin_series,
    intervals_from_timestamps,
    merge,
    merge_rescaled,
    rescale,
    timestamps_from_intervals,
)


class TestIntervalConversions:
    def test_intervals_from_timestamps(self):
        out = intervals_from_timestamps([0.0, 10.0, 25.0])
        assert out.tolist() == [10.0, 15.0]

    def test_unsorted_input_is_sorted_first(self):
        out = intervals_from_timestamps([25.0, 0.0, 10.0])
        assert out.tolist() == [10.0, 15.0]

    def test_fewer_than_two_events(self):
        assert intervals_from_timestamps([5.0]).size == 0
        assert intervals_from_timestamps([]).size == 0

    def test_roundtrip(self):
        ts = [3.0, 8.0, 20.0, 21.5]
        intervals = intervals_from_timestamps(ts)
        back = timestamps_from_intervals(3.0, intervals)
        assert np.allclose(back, ts)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            timestamps_from_intervals(0.0, [-1.0])

    timestamps = st.lists(
        st.floats(min_value=0, max_value=1e6), min_size=2, max_size=100
    )

    @given(timestamps)
    def test_roundtrip_property(self, ts):
        ts_sorted = sorted(ts)
        intervals = intervals_from_timestamps(ts_sorted)
        back = timestamps_from_intervals(ts_sorted[0], intervals)
        assert np.allclose(back, ts_sorted, atol=1e-6)


class TestBinSeries:
    def test_counts_events_per_slot(self):
        signal = bin_series([0.0, 0.5, 1.2, 3.9], time_scale=1.0)
        assert signal.tolist() == [2.0, 1.0, 0.0, 1.0]

    def test_binary_clips_counts(self):
        signal = bin_series([0.0, 0.5, 1.2], time_scale=1.0, binary=True)
        assert signal.tolist() == [1.0, 1.0]

    def test_span_extends_window(self):
        signal = bin_series([2.0], time_scale=1.0, span=(0.0, 4.0))
        assert signal.tolist() == [0.0, 0.0, 1.0, 0.0, 0.0]

    def test_span_filters_outside_events(self):
        signal = bin_series([0.0, 10.0], time_scale=1.0, span=(0.0, 2.0))
        assert signal.sum() == 1.0

    def test_span_oob_raise_rejects_outside_events(self):
        with pytest.raises(ValueError, match="outside the span"):
            bin_series(
                [0.0, 10.0], time_scale=1.0, span=(0.0, 2.0), oob="raise"
            )

    def test_span_oob_raise_accepts_in_span_events(self):
        signal = bin_series(
            [0.0, 1.0, 2.0], time_scale=1.0, span=(0.0, 2.0), oob="raise"
        )
        assert signal.tolist() == [1.0, 1.0, 1.0]

    def test_invalid_oob_policy(self):
        with pytest.raises(ValueError):
            bin_series([1.0], time_scale=1.0, oob="fold")

    def test_slot_boundary_is_half_open(self):
        # An event exactly on a slot boundary belongs to the upper slot.
        signal = bin_series([1.0], time_scale=1.0, span=(0.0, 3.5))
        assert signal.tolist() == [0.0, 1.0, 0.0, 0.0]

    def test_end_boundary_event_lands_in_final_slot(self):
        # The covered window is the closed [start, end]: an event at
        # exactly ``end`` counts (it is not folded or dropped).
        signal = bin_series([2.0], time_scale=1.0, span=(0.0, 2.0))
        assert signal.tolist() == [0.0, 0.0, 1.0]

    def test_empty_without_span(self):
        assert bin_series([], time_scale=1.0).size == 0

    def test_total_count_preserved(self, rng):
        ts = np.sort(rng.uniform(0, 1000, size=137))
        signal = bin_series(ts, time_scale=7.0)
        assert signal.sum() == 137

    def test_invalid_time_scale(self):
        with pytest.raises(ValueError):
            bin_series([1.0], time_scale=0.0)


class TestActivitySummary:
    def make(self, **kwargs):
        defaults = dict(
            source="02:00:00:00:00:01",
            destination="evil.example.com",
            timestamps=[0.0, 60.0, 120.0, 180.0],
        )
        defaults.update(kwargs)
        return ActivitySummary.from_timestamps(**defaults)

    def test_from_timestamps_basic(self):
        summary = self.make()
        assert summary.event_count == 4
        assert summary.duration == 180.0
        assert summary.intervals == (60.0, 60.0, 60.0)

    def test_quantizes_to_time_scale(self):
        summary = ActivitySummary.from_timestamps(
            "s", "d", [0.4, 60.7, 121.2], time_scale=1.0
        )
        assert summary.intervals == (60.0, 61.0)

    def test_timestamps_roundtrip(self):
        summary = self.make()
        assert np.allclose(summary.timestamps(), [0.0, 60.0, 120.0, 180.0])

    def test_signal_length(self):
        summary = self.make()
        signal = summary.signal()
        assert signal.size == 181
        assert signal.sum() == 4

    def test_nonzero_intervals_drop_zeros(self):
        summary = ActivitySummary(
            source="s",
            destination="d",
            time_scale=1.0,
            first_timestamp=0.0,
            intervals=(0.0, 5.0, 0.0, 5.0),
        )
        assert summary.nonzero_intervals().tolist() == [5.0, 5.0]

    def test_empty_timestamps_rejected(self):
        with pytest.raises(ValueError):
            ActivitySummary.from_timestamps("s", "d", [])

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            ActivitySummary(
                source="s",
                destination="d",
                time_scale=1.0,
                first_timestamp=0.0,
                intervals=(-1.0,),
            )

    def test_urls_preserved(self):
        summary = self.make(urls=["/a", "/b"])
        assert summary.urls == ("/a", "/b")


class TestRescale:
    def test_rescale_to_coarser(self):
        summary = ActivitySummary.from_timestamps(
            "s", "d", [0.0, 61.0, 121.0, 181.0], time_scale=1.0
        )
        coarse = rescale(summary, 60.0)
        assert coarse.time_scale == 60.0
        # Slots floor(t / 60): 0, 1, 2, 3.
        assert coarse.intervals == (60.0, 60.0, 60.0)

    def test_rescale_same_scale_is_identity(self):
        summary = ActivitySummary.from_timestamps("s", "d", [0.0, 60.0])
        assert rescale(summary, 1.0) is summary

    def test_rescale_to_finer_rejected(self):
        summary = ActivitySummary.from_timestamps(
            "s", "d", [0.0, 60.0], time_scale=60.0
        )
        with pytest.raises(ValueError, match="finer"):
            rescale(summary, 1.0)

    def test_event_count_preserved(self, rng):
        ts = np.sort(rng.uniform(0, 10_000, size=50))
        summary = ActivitySummary.from_timestamps("s", "d", ts)
        coarse = rescale(summary, 300.0)
        assert coarse.event_count == summary.event_count


class TestMerge:
    def test_merges_two_days(self):
        day1 = ActivitySummary.from_timestamps("s", "d", [0.0, 60.0])
        day2 = ActivitySummary.from_timestamps("s", "d", [86400.0, 86460.0])
        merged = merge([day1, day2])
        assert merged.event_count == 4
        assert merged.duration == 86460.0

    def test_single_summary_identity(self):
        day = ActivitySummary.from_timestamps("s", "d", [0.0, 60.0])
        assert merge([day]) is day

    def test_rejects_different_pairs(self):
        a = ActivitySummary.from_timestamps("s", "d1", [0.0, 60.0])
        b = ActivitySummary.from_timestamps("s", "d2", [0.0, 60.0])
        with pytest.raises(ValueError, match="different pairs"):
            merge([a, b])

    def test_rejects_different_scales(self):
        a = ActivitySummary.from_timestamps("s", "d", [0.0, 60.0], time_scale=1.0)
        b = ActivitySummary.from_timestamps("s", "d", [0.0, 60.0], time_scale=60.0)
        with pytest.raises(ValueError, match="time scales"):
            merge([a, b])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge([])

    def test_urls_concatenated(self):
        a = ActivitySummary.from_timestamps("s", "d", [0.0, 60.0], urls=["/a"])
        b = ActivitySummary.from_timestamps("s", "d", [120.0, 180.0], urls=["/b"])
        assert merge([a, b]).urls == ("/a", "/b")


class TestMergeRescaled:
    """The fused cadence fast path must equal rescale-then-merge exactly."""

    def _days(self, seed=0, n_days=4, time_scale=60.0):
        rng = np.random.default_rng(seed)
        day = 86_400.0
        return [
            ActivitySummary.from_timestamps(
                "mac1", "evil.com",
                np.sort(rng.uniform(index * day, (index + 1) * day, size=50)),
                time_scale=time_scale,
                urls=[f"/d{index}"],
            )
            for index in range(n_days)
        ]

    def test_bitwise_matches_composed_path(self):
        days = self._days()
        fused = merge_rescaled(days, 600.0)
        composed = merge([rescale(s, 600.0) for s in days])
        # Frozen-dataclass equality compares every field, so this is a
        # bit-exact check on the interval tuples too.
        assert fused == composed

    def test_out_workspace_is_reused_and_result_unchanged(self):
        days = self._days(seed=1)
        workspace = np.empty(1024)
        fused = merge_rescaled(days, 600.0, out=workspace)
        assert fused == merge_rescaled(days, 600.0)

    def test_undersized_workspace_still_correct(self):
        days = self._days(seed=2)
        fused = merge_rescaled(days, 600.0, out=np.empty(3))
        assert fused == merge([rescale(s, 600.0) for s in days])

    def test_single_summary_matches_plain_rescale(self):
        day = self._days(n_days=1)[0]
        assert merge_rescaled([day], 600.0) == rescale(day, 600.0)

    def test_rejects_coarser_inputs(self):
        day = self._days(n_days=1, time_scale=600.0)[0]
        with pytest.raises(ValueError, match="finer"):
            merge_rescaled([day], 60.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_rescaled([], 60.0)
