"""Configuration-path tests for the detector."""

import numpy as np
import pytest

from repro.core import DetectorConfig, PeriodicityDetector
from repro.core.permutation import ThresholdCache
from repro.synthetic import BeaconSpec, NoiseModel

DAY = 86_400.0


def beacon(rng, period=300.0, **noise_kwargs):
    return BeaconSpec(
        period=period, duration=DAY, noise=NoiseModel(**noise_kwargs)
    ).generate(rng)


class TestConfigVariants:
    def test_count_signal_detects(self, rng):
        detector = PeriodicityDetector(
            DetectorConfig(seed=0, binary_signal=False)
        )
        result = detector.detect(beacon(rng))
        assert result.periodic
        assert result.dominant_period == pytest.approx(300.0, rel=0.05)

    def test_gmm_disabled_still_detects_simple_beacons(self, rng):
        detector = PeriodicityDetector(DetectorConfig(seed=0, use_gmm=False))
        result = detector.detect(beacon(rng))
        assert result.periodic
        assert result.mixture is None

    def test_fold_disabled_still_detects_clean(self, rng):
        detector = PeriodicityDetector(
            DetectorConfig(seed=0, fold_intervals=False)
        )
        assert detector.detect(beacon(rng)).periodic

    def test_signal_length_guard_skips_fine_scales(self, rng):
        # max_signal_length below the 1 s slot count: the 1 s scale is
        # skipped but coarser scales still resolve the 300 s beacon.
        detector = PeriodicityDetector(
            DetectorConfig(seed=0, max_signal_length=40_000)
        )
        result = detector.detect(beacon(rng))
        assert result.periodic
        assert all(s > 2.0 for s in result.scales)

    def test_everything_skipped_is_rejected(self, rng):
        detector = PeriodicityDetector(
            DetectorConfig(seed=0, max_scales=1, max_signal_length=64)
        )
        result = detector.detect(beacon(rng))
        assert not result.periodic

    def test_higher_alpha_prunes_more(self, rng):
        trace = beacon(rng, jitter_sigma=20.0)
        strict = PeriodicityDetector(DetectorConfig(seed=0, alpha=0.4))
        lax = PeriodicityDetector(DetectorConfig(seed=0, alpha=0.01))
        assert len(strict.detect(trace).candidates) <= len(
            lax.detect(trace).candidates
        ) + 1

    def test_min_support_one_rejects_noisy(self, rng):
        trace = beacon(rng, add_rate=1 / 600.0)
        detector = PeriodicityDetector(DetectorConfig(seed=0, min_support=1.0))
        result = detector.detect(trace)
        # With added events, no DFT candidate explains *all* intervals;
        # only GMM candidates (support-exempt) may survive.
        assert all(c.origin == "gmm" for c in result.candidates)


class TestThresholdCache:
    def test_cache_reused_across_similar_pairs(self, rng):
        cache = ThresholdCache()
        detector = PeriodicityDetector(DetectorConfig(seed=0),
                                       threshold_cache=cache)
        for seed in range(3):
            detector.detect(beacon(np.random.default_rng(seed)))
        assert cache.hits > 0

    def test_cache_detection_agrees_with_exact(self, rng):
        trace = beacon(rng, jitter_sigma=10.0)
        exact = PeriodicityDetector(DetectorConfig(seed=0)).detect(trace)
        cached = PeriodicityDetector(
            DetectorConfig(seed=0), threshold_cache=ThresholdCache()
        ).detect(trace)
        assert exact.periodic == cached.periodic
        assert cached.dominant_period == pytest.approx(
            exact.dominant_period, rel=0.02
        )

    def test_cache_threshold_close_to_exact(self):
        from repro.core.permutation import permutation_threshold

        cache = ThresholdCache()
        signal = np.zeros(10_000)
        signal[:500] = 1.0
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(signal)
        exact = permutation_threshold(
            shuffled, rng=np.random.default_rng(1)
        ).threshold
        approx = cache.threshold(10_000, 500)
        assert approx == pytest.approx(exact, rel=0.35)

    def test_cache_validates_inputs(self):
        cache = ThresholdCache()
        with pytest.raises(ValueError):
            cache.threshold(2, 1)

    def test_cache_counts(self):
        cache = ThresholdCache()
        cache.threshold(1000, 100)
        cache.threshold(1000, 100)
        assert cache.misses == 1
        assert cache.hits == 1
