"""Import-layering contract of the package graph.

The analysis layers must not depend on the synthetic-traffic substrate:
no module under ``repro.core``, ``repro.filtering``, ``repro.jobs``,
``repro.stages``, or ``repro.sources`` may import ``repro.synthetic``.
The old import location ``repro.synthetic.logs`` keeps working as a
deprecation shim that forwards to :mod:`repro.sources.proxy`.
"""

import ast
import warnings
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Packages that must stay free of repro.synthetic imports.
LAYERED_PACKAGES = ("core", "filtering", "jobs", "stages", "sources")


def synthetic_imports(path: Path):
    """All ``repro.synthetic`` imports (module-level or nested) in a file."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    offending = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro.synthetic"):
                    offending.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.startswith("repro.synthetic"):
                offending.append((node.lineno, module))
    return offending


@pytest.mark.parametrize("package", LAYERED_PACKAGES)
def test_layer_does_not_import_synthetic(package):
    violations = []
    for path in sorted((SRC / package).rglob("*.py")):
        for lineno, module in synthetic_imports(path):
            violations.append(f"{path.relative_to(SRC.parent)}:{lineno} "
                              f"imports {module}")
    assert not violations, "\n".join(violations)


class TestDeprecationShim:
    def test_moved_names_warn_and_forward(self):
        import repro.sources.proxy as proxy
        import repro.synthetic.logs as shim

        for name in ("PairConfig", "ProxyLogRecord", "read_log",
                     "records_to_summaries", "write_log"):
            with pytest.warns(DeprecationWarning, match="repro.sources.proxy"):
                obj = getattr(shim, name)
            assert obj is getattr(proxy, name)

    def test_unknown_name_raises_attribute_error(self):
        import repro.synthetic.logs as shim

        with pytest.raises(AttributeError):
            shim.does_not_exist

    def test_dir_lists_moved_names(self):
        import repro.synthetic.logs as shim

        assert {"ProxyLogRecord", "records_to_summaries"} <= set(dir(shim))

    def test_star_surface_importable_without_warning_from_new_home(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.sources.proxy import (  # noqa: F401
                PairConfig,
                ProxyLogRecord,
                read_log,
                records_to_summaries,
                write_log,
            )
