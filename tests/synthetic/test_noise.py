"""Unit tests for repro.synthetic.noise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synthetic.noise import (
    NoiseModel,
    add_events,
    drop_events,
    gaussian_jitter,
    insert_gaps,
)


@pytest.fixture
def beacon():
    return np.arange(0.0, 3600.0, 60.0)  # 60 events, 60 s apart


class TestGaussianJitter:
    def test_zero_sigma_is_identity(self, beacon, rng):
        out = gaussian_jitter(beacon, 0.0, rng)
        assert np.array_equal(out, beacon)

    def test_preserves_event_count(self, beacon, rng):
        out = gaussian_jitter(beacon, 5.0, rng)
        assert out.size == beacon.size

    def test_output_sorted(self, beacon, rng):
        out = gaussian_jitter(beacon, 20.0, rng)
        assert np.all(np.diff(out) > 0)

    def test_mean_interval_approximately_preserved(self, rng):
        long_beacon = np.arange(0.0, 360_000.0, 60.0)
        out = gaussian_jitter(long_beacon, 5.0, rng)
        assert np.diff(out).mean() == pytest.approx(60.0, rel=0.02)

    def test_negative_sigma_rejected(self, beacon, rng):
        with pytest.raises(ValueError):
            gaussian_jitter(beacon, -1.0, rng)


class TestDropEvents:
    def test_zero_probability_keeps_all(self, beacon, rng):
        out = drop_events(beacon, 0.0, rng)
        assert np.array_equal(out, beacon)

    def test_first_event_always_kept(self, beacon, rng):
        out = drop_events(beacon, 0.99, rng)
        assert out[0] == beacon[0]

    def test_expected_fraction_dropped(self, rng):
        big = np.arange(0.0, 100_000.0, 10.0)
        out = drop_events(big, 0.5, rng)
        assert out.size == pytest.approx(big.size * 0.5, rel=0.1)

    def test_invalid_probability(self, beacon, rng):
        with pytest.raises(ValueError):
            drop_events(beacon, 1.5, rng)


class TestAddEvents:
    def test_zero_rate_is_identity(self, beacon, rng):
        out = add_events(beacon, 0.0, rng)
        assert np.array_equal(out, beacon)

    def test_adds_expected_count(self, beacon, rng):
        out = add_events(beacon, 0.1, rng)  # ~360 extra over 3600 s
        added = out.size - beacon.size
        assert added == pytest.approx(360, rel=0.3)

    def test_result_sorted(self, beacon, rng):
        out = add_events(beacon, 0.05, rng)
        assert np.all(np.diff(out) >= 0)

    def test_explicit_span(self, rng):
        out = add_events([100.0], 0.1, rng, span=(0.0, 1000.0))
        assert out.min() >= 0.0
        assert out.max() <= 1000.0

    def test_missing_span_with_single_event(self, rng):
        with pytest.raises(ValueError):
            add_events([1.0], 0.1, rng)


class TestInsertGaps:
    def test_removes_gap_events(self, beacon):
        out = insert_gaps(beacon, [(600.0, 1200.0)])
        assert not np.any((out >= 600.0) & (out < 1200.0))

    def test_keeps_outside_events(self, beacon):
        out = insert_gaps(beacon, [(600.0, 1200.0)])
        assert out[0] == 0.0
        assert beacon.size - out.size == 10

    def test_multiple_gaps(self, beacon):
        out = insert_gaps(beacon, [(0.0, 120.0), (3000.0, 3600.0)])
        assert out.min() >= 120.0
        assert out.max() < 3000.0

    def test_invalid_gap(self, beacon):
        with pytest.raises(ValueError):
            insert_gaps(beacon, [(100.0, 50.0)])


class TestNoiseModel:
    def test_clean_model_is_identity(self, beacon, rng):
        model = NoiseModel()
        assert model.is_clean
        assert np.array_equal(model.apply(beacon, rng), beacon)

    def test_composite_application(self, beacon, rng):
        model = NoiseModel(jitter_sigma=2.0, drop_probability=0.2, add_rate=0.01)
        out = model.apply(beacon, rng)
        assert not model.is_clean
        assert out.size > 0
        assert np.all(np.diff(out) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(jitter_sigma=-1.0)
        with pytest.raises(ValueError):
            NoiseModel(drop_probability=2.0)
        with pytest.raises(ValueError):
            NoiseModel(add_rate=-0.5)

    @settings(max_examples=25, deadline=None)
    @given(
        sigma=st.floats(min_value=0.0, max_value=10.0),
        drop=st.floats(min_value=0.0, max_value=0.9),
        rate=st.floats(min_value=0.0, max_value=0.05),
    )
    def test_output_always_sorted(self, sigma, drop, rate):
        rng = np.random.default_rng(0)
        beacon = np.arange(0.0, 3600.0, 60.0)
        model = NoiseModel(jitter_sigma=sigma, drop_probability=drop, add_rate=rate)
        out = model.apply(beacon, rng)
        assert np.all(np.diff(out) >= 0)
