"""Tests for communication-pair feature configuration (Table I)."""

import numpy as np
import pytest

from repro.core import DetectorConfig, PeriodicityDetector
from repro.synthetic import PairConfig, ProxyLogRecord, records_to_summaries


def beacon_records_with_ip_churn(period=300.0, count=200):
    """One device (stable MAC) whose IP changes halfway (DHCP lease)."""
    records = []
    for i in range(count):
        ip = "10.0.0.5" if i < count // 2 else "10.0.7.99"
        records.append(
            ProxyLogRecord(i * period, "mac1", ip, "xqzwvkpj.com", "/g")
        )
    return records


class TestPairConfig:
    def test_defaults_match_paper(self):
        config = PairConfig()
        record = ProxyLogRecord(0.0, "mac1", "10.0.0.1", "a.b.evil.com", "/")
        assert config.source_of(record) == "mac1"
        assert config.destination_of(record) == "a.b.evil.com"

    def test_ip_source_feature(self):
        config = PairConfig(source_feature="ip")
        record = ProxyLogRecord(0.0, "mac1", "10.0.0.1", "evil.com", "/")
        assert config.source_of(record) == "10.0.0.1"

    def test_registered_domain_feature(self):
        config = PairConfig(destination_feature="registered_domain")
        record = ProxyLogRecord(0.0, "m", "ip", "a.b.evil.com", "/")
        assert config.destination_of(record) == "evil.com"

    def test_invalid_features_rejected(self):
        with pytest.raises(ValueError):
            PairConfig(source_feature="username")
        with pytest.raises(ValueError):
            PairConfig(destination_feature="asn")


class TestMacVsIpUnderChurn:
    """The paper's rationale: 'a MAC address is more reliable in device
    identification because IPs may change over time'."""

    def test_mac_pairs_survive_dhcp_churn(self):
        records = beacon_records_with_ip_churn()
        summaries = records_to_summaries(
            records, pair_config=PairConfig(source_feature="mac")
        )
        assert len(summaries) == 1
        detector = PeriodicityDetector(DetectorConfig(seed=0))
        result = detector.detect_summary(summaries[0])
        assert result.periodic
        assert result.dominant_period == pytest.approx(300.0, rel=0.05)

    def test_ip_pairs_split_by_churn(self):
        records = beacon_records_with_ip_churn()
        summaries = records_to_summaries(
            records, pair_config=PairConfig(source_feature="ip")
        )
        assert len(summaries) == 2
        # Each fragment covers only half the window — still periodic,
        # but the device-level context is gone (two "devices" now).
        assert {s.source for s in summaries} == {"10.0.0.5", "10.0.7.99"}

    def test_aggregate_entities_shorthand_equivalence(self):
        records = [
            ProxyLogRecord(float(i * 60), "m", "ip", f"s{i % 3}.evil.com", "/")
            for i in range(30)
        ]
        via_flag = records_to_summaries(records, aggregate_entities=True)
        via_config = records_to_summaries(
            records,
            pair_config=PairConfig(destination_feature="registered_domain"),
        )
        assert [s.pair for s in via_flag] == [s.pair for s in via_config]
