"""Unit tests for repro.synthetic.beacon and botnet specs."""

import numpy as np
import pytest

from repro.synthetic.beacon import (
    BeaconSpec,
    MultiPhaseBeaconSpec,
    Phase,
    poisson_trace,
)
from repro.synthetic.botnet import (
    BOTNET_CATALOGUE,
    conficker_spec,
    tdss_spec,
    zeus_spec,
)


class TestBeaconSpec:
    def test_clean_trace_is_strictly_periodic(self):
        spec = BeaconSpec(period=60.0, duration=600.0)
        trace = spec.clean()
        assert np.allclose(np.diff(trace), 60.0)
        assert trace[0] == 0.0

    def test_event_count(self):
        spec = BeaconSpec(period=60.0, duration=600.0)
        assert spec.event_count == 11
        assert spec.clean().size == 11

    def test_start_offset(self):
        spec = BeaconSpec(period=60.0, duration=600.0, start=1000.0)
        assert spec.clean()[0] == 1000.0

    def test_generate_applies_noise(self, rng):
        from repro.synthetic.noise import NoiseModel

        spec = BeaconSpec(
            period=60.0, duration=6000.0, noise=NoiseModel(drop_probability=0.5)
        )
        assert spec.generate(rng).size < spec.event_count

    def test_duration_must_cover_period(self):
        with pytest.raises(ValueError):
            BeaconSpec(period=600.0, duration=60.0)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            BeaconSpec(period=0.0, duration=60.0)


class TestMultiPhaseBeacon:
    def test_conficker_shape(self):
        spec = MultiPhaseBeaconSpec(
            phases=(Phase(7.5, 120.0), Phase(10800.0, 10800.0)),
            duration=86_400.0,
        )
        trace = spec.clean()
        intervals = np.diff(trace)
        # Mostly ~7.5 s with a few ~3 h jumps.
        assert (np.abs(intervals - 7.5) < 1.0).sum() > 100
        assert (intervals > 10_000).sum() >= 6

    def test_respects_duration(self):
        spec = MultiPhaseBeaconSpec(
            phases=(Phase(10.0, 100.0),), duration=1000.0
        )
        trace = spec.clean()
        assert trace.max() < 1000.0

    def test_needs_at_least_one_phase(self):
        with pytest.raises(ValueError):
            MultiPhaseBeaconSpec(phases=(), duration=100.0)

    def test_invalid_phase(self):
        with pytest.raises(ValueError):
            Phase(period=-1.0, length=10.0)


class TestPoissonTrace:
    def test_expected_count(self, rng):
        trace = poisson_trace(0.1, 100_000.0, rng)
        assert trace.size == pytest.approx(10_000, rel=0.1)

    def test_sorted_within_bounds(self, rng):
        trace = poisson_trace(0.01, 10_000.0, rng, start=500.0)
        assert np.all(np.diff(trace) >= 0)
        assert trace.min() >= 500.0
        assert trace.max() <= 10_500.0

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            poisson_trace(0.0, 100.0, rng)


class TestBotnetCatalogue:
    def test_catalogue_entries_generate(self, rng):
        for name, factory in BOTNET_CATALOGUE.items():
            trace = factory(86_400.0).generate(rng)
            assert trace.size > 2, f"{name} produced a trivial trace"

    def test_tdss_cadence(self, rng):
        trace = tdss_spec(86_400.0).generate(rng)
        intervals = np.diff(trace)
        median = np.median(intervals)
        assert median == pytest.approx(387.0, rel=0.15)

    def test_zeus_period_override(self, rng):
        trace = zeus_spec(86_400.0, period=63.0).generate(rng)
        assert np.median(np.diff(trace)) == pytest.approx(63.0, rel=0.1)

    def test_conficker_burst_structure(self, rng):
        trace = conficker_spec(86_400.0).generate(rng)
        intervals = np.diff(trace)
        assert (intervals < 10).sum() > 100
        assert (intervals > 10_000).sum() >= 5
