"""Unit tests for repro.synthetic.logs."""

import pytest

from repro.synthetic.logs import (
    ProxyLogRecord,
    read_log,
    records_to_summaries,
    write_log,
)


@pytest.fixture
def sample_records():
    return [
        ProxyLogRecord(0.0, "mac1", "10.0.0.1", "a.com", "/x", 200, 100),
        ProxyLogRecord(60.0, "mac1", "10.0.0.1", "a.com", "/y", 200, 150),
        ProxyLogRecord(120.0, "mac1", "10.0.0.1", "a.com", "/z", 200, 90),
        ProxyLogRecord(5.0, "mac2", "10.0.0.2", "b.com", "/", 404, 0),
    ]


class TestSerialization:
    def test_roundtrip_line(self):
        record = ProxyLogRecord(1.5, "mac", "1.2.3.4", "x.com", "/p?q=1", 200, 42)
        assert ProxyLogRecord.from_line(record.to_line()) == record

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            ProxyLogRecord.from_line("only\tthree\tfields")

    def test_write_read_roundtrip(self, sample_records, tmp_path):
        path = tmp_path / "log.tsv"
        count = write_log(sample_records, path)
        assert count == 4
        back = list(read_log(path))
        assert back == sample_records

    def test_gzip_roundtrip(self, sample_records, tmp_path):
        path = tmp_path / "log.tsv.gz"
        write_log(sample_records, path, compress=True)
        assert list(read_log(path)) == sample_records


class TestRecordsToSummaries:
    def test_grouping_by_pair(self, sample_records):
        summaries = records_to_summaries(sample_records)
        assert len(summaries) == 2
        pairs = {s.pair for s in summaries}
        assert pairs == {("mac1", "a.com"), ("mac2", "b.com")}

    def test_intervals_computed(self, sample_records):
        summaries = records_to_summaries(sample_records)
        by_pair = {s.pair: s for s in summaries}
        assert by_pair[("mac1", "a.com")].intervals == (60.0, 60.0)

    def test_urls_captured(self, sample_records):
        summaries = records_to_summaries(sample_records)
        by_pair = {s.pair: s for s in summaries}
        assert by_pair[("mac1", "a.com")].urls == ("/x", "/y", "/z")

    def test_urls_capped(self):
        records = [
            ProxyLogRecord(float(i), "m", "ip", "d.com", f"/{i}") for i in range(100)
        ]
        summaries = records_to_summaries(records, max_urls_per_pair=10)
        assert len(summaries[0].urls) == 10

    def test_urls_dropped_when_disabled(self, sample_records):
        summaries = records_to_summaries(sample_records, keep_urls=False)
        assert all(s.urls == () for s in summaries)

    def test_unsorted_records_sorted(self):
        records = [
            ProxyLogRecord(120.0, "m", "ip", "d.com", "/"),
            ProxyLogRecord(0.0, "m", "ip", "d.com", "/"),
            ProxyLogRecord(60.0, "m", "ip", "d.com", "/"),
        ]
        summaries = records_to_summaries(records)
        assert summaries[0].intervals == (60.0, 60.0)

    def test_deterministic_ordering(self, sample_records):
        a = records_to_summaries(sample_records)
        b = records_to_summaries(list(reversed(sample_records)))
        assert [s.pair for s in a] == [s.pair for s in b]
