"""Tests for domain-flux beaconing and entity aggregation (Challenge 2)."""

import numpy as np
import pytest

from repro.core import DetectorConfig, PeriodicityDetector
from repro.synthetic import BeaconSpec, FluxBeacon, subdomain_flux_pool
from repro.synthetic.logs import records_to_summaries

DAY = 86_400.0


@pytest.fixture
def flux_records(rng):
    pool = subdomain_flux_pool("evil-entity.com", 8, seed=1)
    beacon = FluxBeacon(
        spec=BeaconSpec(period=300.0, duration=DAY),
        domains=tuple(pool),
    )
    return beacon.generate(rng)


class TestSubdomainFluxPool:
    def test_pool_under_entity(self):
        pool = subdomain_flux_pool("evil.com", 5, seed=0)
        assert len(pool) == 5
        assert all(d.endswith(".evil.com") for d in pool)
        assert len(set(pool)) == 5

    def test_deterministic(self):
        assert subdomain_flux_pool("e.com", 4, seed=2) == subdomain_flux_pool(
            "e.com", 4, seed=2
        )


class TestFluxBeacon:
    def test_rotates_domains(self, flux_records):
        domains = {r.destination for r in flux_records}
        assert len(domains) == 8

    def test_total_events_match_spec(self, flux_records):
        assert len(flux_records) == 289  # 86400 / 300 + 1

    def test_random_rotation(self, rng):
        beacon = FluxBeacon(
            spec=BeaconSpec(period=600.0, duration=DAY),
            domains=("a.e.com", "b.e.com"),
            rotation="random",
        )
        records = beacon.generate(rng)
        assert {r.destination for r in records} == {"a.e.com", "b.e.com"}

    def test_invalid_rotation(self):
        with pytest.raises(ValueError):
            FluxBeacon(
                spec=BeaconSpec(period=60.0, duration=600.0),
                domains=("a.com",),
                rotation="sideways",
            )


class TestEntityAggregation:
    def test_per_fqdn_pairs_are_sparse(self, flux_records):
        summaries = records_to_summaries(flux_records)
        assert len(summaries) == 8
        # Round-robin over 8 domains: each pair sees every 8th beacon.
        assert all(s.event_count < 50 for s in summaries)

    def test_aggregation_reassembles_the_beacon(self, flux_records):
        summaries = records_to_summaries(flux_records, aggregate_entities=True)
        assert len(summaries) == 1
        assert summaries[0].destination == "evil-entity.com"
        assert summaries[0].event_count == 289

    def test_detection_requires_aggregation(self, flux_records):
        """The paper's point: flux defeats per-FQDN analysis."""
        detector = PeriodicityDetector(DetectorConfig(seed=0))
        per_fqdn = records_to_summaries(flux_records)
        # Per-FQDN the effective period is 8x the true one; the entity
        # view recovers the actual 300 s beacon.
        entity = records_to_summaries(flux_records, aggregate_entities=True)
        result = detector.detect_summary(entity[0])
        assert result.periodic
        assert result.dominant_period == pytest.approx(300.0, rel=0.05)
        fqdn_periods = [
            detector.detect_summary(s).dominant_period
            for s in per_fqdn
        ]
        assert all(p is None or p > 2_000 for p in fqdn_periods)

    def test_pipeline_config_pass_through(self, flux_records):
        from repro.filtering import BaywatchPipeline, PipelineConfig

        pipeline = BaywatchPipeline(
            PipelineConfig(
                local_whitelist_threshold=0.5,
                ranking_percentile=0.0,
                aggregate_entities=True,
            )
        )
        report = pipeline.run_records(flux_records)
        assert [c.destination for c in report.detected_cases] == [
            "evil-entity.com"
        ]
