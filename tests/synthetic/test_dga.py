"""Unit tests for repro.synthetic.dga."""

import numpy as np
import pytest

from repro.synthetic.dga import (
    consonant_heavy,
    dga_families,
    generate_pool,
    hex_label,
    pseudo_words,
    random_chars,
)


class TestGenerators:
    def test_random_chars_shape(self, rng):
        domain = random_chars(rng, length=20)
        label, tld = domain.rsplit(".", 1)
        assert len(label) == 20
        assert label.isalpha() and label.islower()
        assert tld == "com"

    def test_hex_label_alphabet(self, rng):
        domain = hex_label(rng, length=24)
        label = domain.rsplit(".", 1)[0]
        assert set(label) <= set("0123456789abcdef")

    def test_hex_label_with_prefix(self, rng):
        domain = hex_label(rng, prefix="cdn")
        assert domain.startswith("cdn.")

    def test_consonant_heavy_has_no_vowels(self, rng):
        domain = consonant_heavy(rng)
        label = domain.rsplit(".", 1)[0]
        assert not set(label) & set("aeiouy")

    def test_pseudo_words_concatenates_fragments(self, rng):
        domain = pseudo_words(rng, fragments=3)
        assert domain.endswith(".com")
        assert len(domain) > 6

    def test_invalid_length(self, rng):
        with pytest.raises(ValueError):
            random_chars(rng, length=0)


class TestGeneratePool:
    def test_pool_size_and_uniqueness(self):
        pool = generate_pool(50, family="random", seed=3)
        assert len(pool) == 50
        assert len(set(pool)) == 50

    def test_deterministic_given_seed(self):
        assert generate_pool(10, seed=1) == generate_pool(10, seed=1)

    def test_different_seeds_differ(self):
        assert generate_pool(10, seed=1) != generate_pool(10, seed=2)

    def test_all_families_work(self):
        for family in dga_families():
            pool = generate_pool(5, family=family, seed=0)
            assert len(pool) == 5

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown DGA family"):
            generate_pool(5, family="nonexistent")

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_pool(0)
