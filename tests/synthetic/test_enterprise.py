"""Integration tests for the enterprise traffic simulator."""

import numpy as np
import pytest

from repro.synthetic.enterprise import (
    EnterpriseConfig,
    EnterpriseSimulator,
    ImplantSpec,
)
from repro.synthetic.logs import records_to_summaries


@pytest.fixture(scope="module")
def small_enterprise():
    config = EnterpriseConfig(
        n_hosts=20,
        n_sites=40,
        duration=86_400.0 / 4,  # 6 hours keeps the test fast
        implants=(
            ImplantSpec("zbot", "zeus", n_infected=2, period=120.0),
            ImplantSpec("tdss", "tdss", n_infected=1),
        ),
        seed=11,
    )
    return EnterpriseSimulator(config).generate()


class TestGeneration:
    def test_produces_records_and_truth(self, small_enterprise):
        records, truth = small_enterprise
        assert len(records) > 100
        assert len(truth.malicious_destinations) == 2
        assert len(truth.infected_hosts) >= 2

    def test_records_sorted_by_time(self, small_enterprise):
        records, _ = small_enterprise
        times = [r.timestamp for r in records]
        assert times == sorted(times)

    def test_malicious_traffic_present(self, small_enterprise):
        records, truth = small_enterprise
        seen = {r.destination for r in records}
        assert truth.malicious_destinations <= seen

    def test_benign_periodic_services_present(self, small_enterprise):
        records, truth = small_enterprise
        seen = {r.destination for r in records}
        assert truth.benign_periodic_destinations
        assert truth.benign_periodic_destinations <= seen

    def test_infected_hosts_contact_malicious_domains(self, small_enterprise):
        records, truth = small_enterprise
        contacts = {
            r.source_mac for r in records
            if r.destination in truth.malicious_destinations
        }
        assert contacts == truth.infected_hosts

    def test_labels(self, small_enterprise):
        _, truth = small_enterprise
        for domain in truth.malicious_destinations:
            assert truth.label(domain) == 1
        assert truth.label("www.benign-place.com") == 0

    def test_deterministic_given_seed(self):
        config = EnterpriseConfig(n_hosts=5, n_sites=10, duration=3600.0, seed=3)
        recs_a, _ = EnterpriseSimulator(config).generate()
        recs_b, _ = EnterpriseSimulator(config).generate()
        assert recs_a == recs_b

    def test_multi_client_implants(self, small_enterprise):
        records, truth = small_enterprise
        multi = [
            d for d, spec in truth.implant_by_destination.items()
            if spec.n_infected > 1
        ]
        for domain in multi:
            clients = {r.source_mac for r in records if r.destination == domain}
            assert len(clients) > 1


class TestIpChurn:
    def test_ips_change_across_days(self):
        config = EnterpriseConfig(
            n_hosts=30, n_sites=10, duration=5 * 86_400.0,
            ip_churn_probability=0.9, session_rate=0.5 / 3600.0, seed=5,
        )
        records, _ = EnterpriseSimulator(config).generate()
        ips_per_mac = {}
        for r in records:
            ips_per_mac.setdefault(r.source_mac, set()).add(r.source_ip)
        assert any(len(ips) > 1 for ips in ips_per_mac.values())

    def test_macs_are_stable_identifiers(self):
        config = EnterpriseConfig(n_hosts=4, n_sites=5, duration=3600.0, seed=2)
        records, _ = EnterpriseSimulator(config).generate()
        macs = {r.source_mac for r in records}
        assert macs <= {f"02:00:00:00:00:0{i}" for i in range(4)}


class TestDetectionOnSimulatedTraffic:
    def test_implanted_beacons_are_detectable(self, small_enterprise):
        """End-to-end sanity: the core detector finds the implants."""
        from repro.core import DetectorConfig, PeriodicityDetector

        records, truth = small_enterprise
        summaries = records_to_summaries(records)
        detector = PeriodicityDetector(DetectorConfig(seed=0))
        detected = set()
        for summary in summaries:
            if summary.destination in truth.malicious_destinations:
                result = detector.detect_summary(summary)
                if result.periodic:
                    detected.add(summary.destination)
        assert detected == truth.malicious_destinations

    def test_invalid_period_override_rejected(self):
        with pytest.raises(ValueError, match="fixed cadence"):
            ImplantSpec("x", "tdss", period=100.0).build_spec(86_400.0, 0.0)

    def test_unknown_behaviour_rejected(self):
        with pytest.raises(ValueError, match="unknown behaviour"):
            ImplantSpec("x", "not-a-bot")
