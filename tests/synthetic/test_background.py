"""Tests for benign background traffic models."""

import numpy as np
import pytest

from repro.synthetic.background import (
    DEFAULT_SERVICES,
    PeriodicService,
    browsing_trace,
)

DAY = 86_400.0


class TestBrowsingTrace:
    def test_produces_sessions(self, rng):
        trace = browsing_trace(DAY, rng, session_rate=4 / 3600.0)
        assert trace.size > 50
        assert np.all(np.diff(trace) >= 0)

    def test_events_within_duration(self, rng):
        trace = browsing_trace(3600.0, rng, session_rate=10 / 3600.0,
                               start=500.0)
        assert trace.min() >= 500.0
        assert trace.max() <= 500.0 + 3600.0

    def test_zero_sessions_possible(self):
        rng = np.random.default_rng(0)
        trace = browsing_trace(10.0, rng, session_rate=1e-9)
        assert trace.size == 0

    def test_bursty_structure(self, rng):
        trace = browsing_trace(DAY, rng, session_rate=2 / 3600.0,
                               intra_session_gap=2.0)
        intervals = np.diff(trace)
        if intervals.size > 20:
            short = (intervals < 30).sum()
            long = (intervals > 300).sum()
            assert short > 0 and long > 0, "expected bursts separated by gaps"

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            browsing_trace(0.0, rng)
        with pytest.raises(ValueError):
            browsing_trace(100.0, rng, session_rate=0.0)


class TestPeriodicService:
    def test_beacon_spec_inherits_parameters(self):
        service = PeriodicService(
            "svc", "svc.example.com", period=600.0, adoption=0.5,
            jitter_fraction=0.05, drop_probability=0.1,
        )
        spec = service.beacon_spec(DAY)
        assert spec.period == 600.0
        assert spec.noise.jitter_sigma == pytest.approx(30.0)
        assert spec.noise.drop_probability == 0.1

    def test_generated_trace_is_near_periodic(self, rng):
        service = PeriodicService("svc", "svc.example.com",
                                  period=300.0, adoption=1.0)
        trace = service.beacon_spec(DAY).generate(rng)
        intervals = np.diff(trace)
        assert np.median(intervals) == pytest.approx(300.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicService("x", "d.com", period=0.0, adoption=0.5)
        with pytest.raises(ValueError):
            PeriodicService("x", "d.com", period=10.0, adoption=1.5)

    def test_default_catalogue_well_formed(self):
        assert len(DEFAULT_SERVICES) >= 5
        domains = [service.domain for service in DEFAULT_SERVICES]
        assert len(set(domains)) == len(domains)
        assert any(s.adoption > 0.5 for s in DEFAULT_SERVICES), (
            "the catalogue needs org-wide services for the local whitelist"
        )
        assert any(s.adoption < 0.05 for s in DEFAULT_SERVICES), (
            "the catalogue needs niche services that evade whitelisting"
        )
