"""Tests for synthetic URL generation."""

import pytest

from repro.filtering.tokens import TokenFilter
from repro.synthetic.urls import (
    browsing_url,
    browsing_urls,
    gate_url,
    update_check_url,
    url_entropy,
)


class TestBrowsingUrls:
    def test_paths_are_readable(self, rng):
        url = browsing_url(rng)
        assert url.startswith("/")
        assert url_entropy(url) < 4.5

    def test_batch(self, rng):
        urls = browsing_urls(rng, 20)
        assert len(urls) == 20
        assert len(set(urls)) > 5  # variety

    def test_invalid_count(self, rng):
        with pytest.raises(ValueError):
            browsing_urls(rng, -1)


class TestUpdateCheckUrls:
    def test_carries_benign_tokens(self, rng):
        url = update_check_url(rng)
        assert TokenFilter().url_is_benign(url)

    def test_versioned(self, rng):
        assert "ver=" in update_check_url(rng)


class TestGateUrls:
    def test_php_style(self, rng):
        url = gate_url(rng, style="php")
        assert url.startswith("/gate.php?id=")
        assert not TokenFilter().url_is_benign(url)

    def test_blob_style_high_entropy(self, rng):
        url = gate_url(rng, style="blob")
        assert len(url) == 33
        assert url_entropy(url) > 4.0
        assert not TokenFilter().url_is_benign(url)

    def test_invalid_style(self, rng):
        with pytest.raises(ValueError):
            gate_url(rng, style="exotic")


class TestTokenFilterInteraction:
    def test_filter_separates_the_three_classes(self, rng):
        """The token filter's job, on realistic URL batches."""
        token_filter = TokenFilter()
        updates = [update_check_url(rng) for _ in range(10)]
        gates = [gate_url(rng) for _ in range(10)]
        assert token_filter.is_likely_benign(updates)
        assert not token_filter.is_likely_benign(gates)
