"""Property-based tests of cross-cutting invariants (hypothesis).

Module-specific property tests live next to their unit tests; this
module covers invariants that span components or define the library's
contract:

- the detector is invariant under time translation,
- detected periods rescale with the input's time axis,
- interval folding is idempotent and bounded,
- rescaling is event-count-preserving and idempotent,
- the MapReduce engine agrees with a naive map/group/reduce,
- GMM fits produce valid probability structure on arbitrary data.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DetectorConfig, PeriodicityDetector
from repro.core.gmm import fit_gmm
from repro.core.pruning import fold_intervals
from repro.core.timeseries import ActivitySummary, rescale
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import MapReduceJob

DAY = 86_400.0

periods = st.sampled_from([30.0, 60.0, 300.0, 900.0])
offsets = st.floats(min_value=0.0, max_value=1e6)


def beacon(period, offset=0.0, n=None):
    n = n if n is not None else int(min(DAY / period, 500)) + 1
    return offset + np.arange(n) * period


@pytest.fixture(scope="module")
def detector():
    return PeriodicityDetector(DetectorConfig(seed=0))


class TestDetectorInvariants:
    @settings(max_examples=8, deadline=None)
    @given(period=periods, offset=offsets)
    def test_time_translation_invariance(self, detector, period, offset):
        base = detector.detect(beacon(period))
        shifted = detector.detect(beacon(period, offset=offset))
        assert base.periodic and shifted.periodic
        assert shifted.dominant_period == pytest.approx(
            base.dominant_period, rel=0.02
        )

    @settings(max_examples=6, deadline=None)
    @given(period=periods, factor=st.sampled_from([2.0, 3.0, 4.0]))
    def test_time_axis_rescaling(self, detector, period, factor):
        base = detector.detect(beacon(period, n=200))
        scaled = detector.detect(beacon(period * factor, n=200))
        assert base.periodic and scaled.periodic
        assert scaled.dominant_period == pytest.approx(
            base.dominant_period * factor, rel=0.05
        )

    @settings(max_examples=6, deadline=None)
    @given(period=periods)
    def test_determinism(self, detector, period):
        trace = beacon(period)
        assert detector.detect(trace).periods() == detector.detect(trace).periods()


class TestFoldingInvariants:
    intervals = st.lists(
        st.floats(min_value=0.1, max_value=10_000.0), min_size=1, max_size=50
    )
    candidate = st.floats(min_value=1.0, max_value=5_000.0)

    @settings(max_examples=50, deadline=None)
    @given(ivals=intervals, period=candidate)
    def test_folded_bounded_by_input(self, ivals, period):
        folded = fold_intervals(np.asarray(ivals), period)
        assert np.all(folded <= np.asarray(ivals) + 1e-9)
        assert np.all(folded > 0)

    @settings(max_examples=50, deadline=None)
    @given(ivals=intervals, period=candidate)
    def test_folding_near_idempotent(self, ivals, period):
        once = fold_intervals(np.asarray(ivals), period)
        twice = fold_intervals(once, period)
        # Once an interval is within [period/2, 1.5*period], folding it
        # again never moves it further from the candidate.
        assert np.all(
            np.abs(twice - period) <= np.abs(once - period) + 1e-9
        )


class TestRescaleInvariants:
    timestamps = st.lists(
        st.floats(min_value=0.0, max_value=100_000.0), min_size=2, max_size=60
    )

    @settings(max_examples=40, deadline=None)
    @given(ts=timestamps, scale=st.sampled_from([5.0, 60.0, 600.0]))
    def test_event_count_preserved(self, ts, scale):
        summary = ActivitySummary.from_timestamps("s", "d", ts)
        assert rescale(summary, scale).event_count == summary.event_count

    @settings(max_examples=40, deadline=None)
    @given(ts=timestamps)
    def test_rescale_idempotent(self, ts):
        summary = ActivitySummary.from_timestamps("s", "d", ts)
        once = rescale(summary, 60.0)
        assert rescale(once, 60.0).intervals == once.intervals

    @settings(max_examples=40, deadline=None)
    @given(ts=timestamps)
    def test_duration_never_grows(self, ts):
        summary = ActivitySummary.from_timestamps("s", "d", ts)
        coarse = rescale(summary, 300.0)
        assert coarse.duration <= summary.duration + 300.0


class _CountJob(MapReduceJob):
    n_partitions = 4

    def map(self, key, value):
        yield value % 5, 1

    def reduce(self, key, values):
        yield key, sum(values)


class TestEngineAgreesWithNaive:
    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(st.integers(min_value=0, max_value=1000), max_size=80))
    def test_group_count_equivalence(self, values):
        engine_out = dict(
            MapReduceEngine().run(_CountJob(), list(enumerate(values)))
        )
        naive = {}
        for value in values:
            naive[value % 5] = naive.get(value % 5, 0) + 1
        assert engine_out == naive


class TestGmmInvariants:
    data = st.lists(
        st.floats(min_value=0.1, max_value=1e4), min_size=4, max_size=60
    )

    @settings(max_examples=30, deadline=None)
    @given(values=data, k=st.integers(min_value=1, max_value=3))
    def test_valid_probability_structure(self, values, k):
        if len(values) < k:
            return
        model = fit_gmm(values, k, rng=np.random.default_rng(0))
        weights = [c.weight for c in model.components]
        assert sum(weights) == pytest.approx(1.0, abs=1e-6)
        assert all(w >= 0 for w in weights)
        assert all(c.variance > 0 for c in model.components)
        lo, hi = min(values), max(values)
        margin = (hi - lo) + 1.0
        assert all(lo - margin <= c.mean <= hi + margin
                   for c in model.components)
