"""Parity and resume tests for the incremental detection executor.

The contract under test, across the ticks of a rolling window:

- the warm :class:`~repro.stages.IncrementalDetection` path never
  *adds* a detection over the cold full-window
  :class:`~repro.stages.BatchedDetection` run (the screen can only
  reject), and every true beacon the cold run reports comes back with
  identical candidate periods;
- on typical workloads the reports are exactly equal (the screen's
  grid-anchored spectra may drop a borderline coarse-rung false
  positive the event-anchored cold path keeps — the one documented
  divergence);
- a run resumed from persisted state reports exactly what an
  uninterrupted warm run reports.
"""

from typing import List

import numpy as np
import pytest

from repro.core.detector import DetectorConfig
from repro.core.permutation import ThresholdCache
from repro.core.timeseries import ActivitySummary, merge_rescaled
from repro.filtering.pipeline import PipelineConfig
from repro.stages import BatchedDetection, IncrementalDetection, StageContext

DAY = 86_400.0
TIME_SCALE = 600.0
WINDOW_DAYS = 5
N_DAYS = 8
N_PAIRS = 24
N_BEACONS = 3


def _day_summaries(seed: int) -> List[List[ActivitySummary]]:
    """Per-day summaries: a few slow beacons in sparse noise."""
    rng = np.random.default_rng(seed)
    span = N_DAYS * DAY
    per_pair = []
    for pair in range(N_PAIRS):
        if pair < N_BEACONS:
            period = 7200.0 + 1200.0 * pair
            count = int(span / period) + 1
            ts = np.cumsum(rng.normal(period, 5.0, size=count))
            ts = ts[(ts > 0) & (ts < span)]
        else:
            offsets = rng.uniform(0, DAY, size=(N_DAYS, 8))
            ts = np.sort(
                (offsets + np.arange(N_DAYS)[:, None] * DAY).ravel()
            )
        per_pair.append(ts)
    days = []
    for day in range(N_DAYS):
        start, end = day * DAY, (day + 1) * DAY
        days.append([
            ActivitySummary.from_timestamps(
                f"host-{pair:02d}",
                f"dest-{pair}.example.net",
                ts[(ts >= start) & (ts < end)],
                time_scale=TIME_SCALE,
            )
            for pair, ts in enumerate(per_pair)
        ])
    return days


def _window(days, end_day) -> List[ActivitySummary]:
    window = days[end_day - WINDOW_DAYS + 1 : end_day + 1]
    return [
        merge_rescaled(list(group), TIME_SCALE) for group in zip(*window)
    ]


def _context(cache: ThresholdCache) -> StageContext:
    return StageContext(
        config=PipelineConfig(
            detector=DetectorConfig(seed=0, use_gmm=False),
            detection_batch_size=64,
            incremental_detection=True,
        ),
        threshold_cache=cache,
    )


def _verdicts(results):
    """The report-relevant outcome per pair: pair plus its periods."""
    return {
        (
            summary.pair,
            tuple(round(c.period, 6) for c in result.candidates),
        )
        for summary, result in results
    }


def _is_beacon(verdict) -> bool:
    (source, _destination), _periods = verdict
    return source in {f"host-{i:02d}" for i in range(N_BEACONS)}


@pytest.fixture(scope="module")
def days():
    # Seed 0: a workload where warm and cold reports are exactly equal
    # on every tick (no borderline coarse-rung noise positives).
    return _day_summaries(seed=0)


class TestExecutorParity:
    def test_matches_cold_batched_reports_across_ticks(self, days):
        cold_context = _context(ThresholdCache())
        warm_context = _context(ThresholdCache())
        cold = BatchedDetection(batch_size=64)
        warm = IncrementalDetection(batch_size=64)
        for end_day in range(WINDOW_DAYS - 1, N_DAYS):
            summaries = _window(days, end_day)
            cold_results, _ = cold(cold_context, summaries)
            warm_results, _ = warm(warm_context, summaries)
            assert _verdicts(warm_results) == _verdicts(cold_results)
        engine = warm.engine
        assert engine is not None
        assert engine.slides > 0  # the fast path actually ran
        assert engine.screened_out > 0  # and the screen did real work

    def test_never_adds_detections_and_keeps_beacons(self):
        # A seed with a borderline cold-only coarse-rung positive: the
        # screen may drop it, must keep every beacon, and must never
        # report a pair the cold path does not.
        days = _day_summaries(seed=1)
        cold_context = _context(ThresholdCache())
        warm_context = _context(ThresholdCache())
        cold = BatchedDetection(batch_size=64)
        warm = IncrementalDetection(batch_size=64)
        for end_day in range(WINDOW_DAYS - 1, N_DAYS):
            summaries = _window(days, end_day)
            cold_verdicts = _verdicts(cold(cold_context, summaries)[0])
            warm_verdicts = _verdicts(warm(warm_context, summaries)[0])
            assert warm_verdicts <= cold_verdicts
            assert (
                {v for v in warm_verdicts if _is_beacon(v)}
                == {v for v in cold_verdicts if _is_beacon(v)}
            )

    def test_degrades_without_threshold_cache(self, days):
        context = _context(ThresholdCache())
        context.threshold_cache = None
        executor = IncrementalDetection(batch_size=64)
        results, quarantined = executor(
            context, _window(days, WINDOW_DAYS - 1)
        )
        assert quarantined == []
        assert executor.engine is None  # fell back to plain batched
        assert all(result.periodic for _summary, result in results)


class TestInterruptResume:
    def test_persisted_state_resumes_identically(self, days, tmp_path):
        state_path = tmp_path / "incremental-state.bin"

        # Continuous run: warm executor over every tick.
        continuous_context = _context(ThresholdCache())
        continuous = IncrementalDetection(batch_size=64)
        continuous_results = None
        for end_day in range(WINDOW_DAYS - 1, N_DAYS):
            continuous_results, _ = continuous(
                continuous_context, _window(days, end_day)
            )

        # Interrupted run: same ticks, but the executor is torn down
        # and rebuilt from the persisted state before the final tick.
        first_context = _context(ThresholdCache())
        first = IncrementalDetection(batch_size=64, state_path=state_path)
        for end_day in range(WINDOW_DAYS - 1, N_DAYS - 1):
            first(first_context, _window(days, end_day))
        assert state_path.exists()

        resumed_context = _context(ThresholdCache())
        resumed = IncrementalDetection(batch_size=64, state_path=state_path)
        resumed_results, _ = resumed(
            resumed_context, _window(days, N_DAYS - 1)
        )
        assert _verdicts(resumed_results) == _verdicts(continuous_results)
        # The resumed engine slid warm states instead of rebuilding all.
        assert resumed.engine.slides > 0

    def test_mismatched_state_is_discarded_not_trusted(self, days, tmp_path):
        state_path = tmp_path / "incremental-state.bin"
        first = IncrementalDetection(batch_size=64, state_path=state_path)
        first(_context(ThresholdCache()), _window(days, WINDOW_DAYS - 1))
        assert state_path.exists()

        # A run with a different detector configuration must reject the
        # persisted warm state and still produce the cold answer.
        other_config = PipelineConfig(
            detector=DetectorConfig(seed=0, use_gmm=False, min_acf_score=0.4),
            detection_batch_size=64,
            incremental_detection=True,
        )
        other_context = StageContext(
            config=other_config, threshold_cache=ThresholdCache()
        )
        resumed = IncrementalDetection(batch_size=64, state_path=state_path)
        summaries = _window(days, WINDOW_DAYS - 1)
        warm_results, _ = resumed(other_context, summaries)
        cold_results, _ = BatchedDetection(batch_size=64)(
            StageContext(
                config=other_config, threshold_cache=ThresholdCache()
            ),
            summaries,
        )
        assert resumed.engine.rebuilds > 0  # started cold
        assert _verdicts(warm_results) == _verdicts(cold_results)
