"""Unit tests for the shared stage graph (repro.stages)."""

import pytest

from repro.core.timeseries import ActivitySummary
from repro.filtering import GlobalWhitelist, PipelineConfig
from repro.filtering.pipeline import FunnelStats
from repro.obs import MetricsRegistry, scoped_registry
from repro.stages import (
    GlobalWhitelistStage,
    LocalWhitelistStage,
    MinEventsStage,
    PeriodicityDetectionStage,
    PopularityIndex,
    Stage,
    StageContext,
    build_report,
    default_stages,
    run_stages,
)


def summary(source, destination, n_events=12, period=60.0):
    return ActivitySummary.from_timestamps(
        source, destination, [i * period for i in range(n_events)]
    )


def make_context(**overrides):
    defaults = dict(config=PipelineConfig())
    defaults.update(overrides)
    return StageContext(**defaults)


class TestPopularityIndex:
    def test_from_summaries_counts_distinct_sources(self):
        summaries = [
            summary("h1", "a.net"),
            summary("h1", "a.net"),  # duplicate pair: still one source
            summary("h2", "a.net"),
            summary("h2", "b.net"),
            summary("h3", "c.net"),
        ]
        index = PopularityIndex.from_summaries(summaries)
        assert index.population == 3
        assert index.similar_sources("a.net") == 2
        assert index.ratio("a.net") == pytest.approx(2 / 3)
        assert index.ratio("unseen.net") == 0.0

    def test_empty_population_has_zero_ratios(self):
        index = PopularityIndex.from_summaries([])
        assert index.population == 0
        assert index.ratio("x") == 0.0

    def test_whitelisting_needs_min_sources_and_threshold(self):
        index = PopularityIndex.from_counts(
            {"popular.net": 3, "rare.net": 1}, population=4
        )
        assert index.is_whitelisted("popular.net", 0.5)
        assert not index.is_whitelisted("popular.net", 0.9)  # below tau_p
        assert not index.is_whitelisted("rare.net", 0.0)  # too few sources


class TestRunStages:
    def test_records_funnel_rows_and_counters(self):
        class DropOdd(Stage):
            name = "drop odd"
            span_name = "drop_odd"

            def apply(self, context, items):
                return [x for x in items if x % 2 == 0]

        context = make_context()
        registry = MetricsRegistry()
        with scoped_registry(registry):
            out = run_stages(context, [DropOdd()], [1, 2, 3, 4])
        assert out == [2, 4]
        assert context.funnel.steps == [("drop odd", 4, 2)]
        counters = dict(registry.counters())
        assert counters["stage.drop_odd.pairs_in"] == 4
        assert counters["stage.drop_odd.pairs_out"] == 2
        names = {h.name for h in registry.histograms()}
        assert "span.drop_odd.seconds" in names

    def test_default_stage_order_matches_funnel(self):
        names = [stage.name for stage in default_stages()]
        assert names == [
            "1 global whitelist",
            "2 local whitelist",
            "  (min events)",
            "3-5 periodicity detection",
            "6 token filter",
            "7 novelty filter",
            "8 weighted ranking",
        ]

    def test_base_stage_apply_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Stage().apply(make_context(), [])


class TestIndividualStages:
    def test_global_whitelist_stage_drops_listed_destinations(self):
        context = make_context(
            global_whitelist=GlobalWhitelist(domains=("cdn.example.com",))
        )
        kept = GlobalWhitelistStage().apply(
            context, [summary("h1", "cdn.example.com"), summary("h1", "c2.net")]
        )
        assert [s.destination for s in kept] == ["c2.net"]

    def test_local_whitelist_stage_uses_context_popularity(self):
        context = make_context(
            config=PipelineConfig(local_whitelist_threshold=0.5),
            popularity=PopularityIndex.from_counts(
                {"everyone.net": 4, "rare.net": 1}, population=4
            ),
        )
        kept = LocalWhitelistStage().apply(
            context,
            [summary("h1", "everyone.net"), summary("h1", "rare.net")],
        )
        assert [s.destination for s in kept] == ["rare.net"]

    def test_min_events_stage_enforces_config(self):
        context = make_context(config=PipelineConfig(min_events=10))
        kept = MinEventsStage().apply(
            context,
            [summary("h1", "a.net", n_events=4),
             summary("h1", "b.net", n_events=12)],
        )
        assert [s.destination for s in kept] == ["b.net"]

    def test_detection_stage_publishes_cases_and_quarantine(self):
        sentinel = object()

        def executor(context, summaries):
            return [], [sentinel]

        context = make_context()
        out = PeriodicityDetectionStage(executor).apply(
            context, [summary("h1", "a.net")]
        )
        assert out == []
        assert context.detected == []
        assert context.quarantined == [sentinel]


class TestBuildReport:
    def test_report_carries_context_state(self):
        context = make_context(
            popularity=PopularityIndex.from_counts({}, population=7),
        )
        context.funnel = FunnelStats()
        context.funnel.record("1 global whitelist", 3, 3)
        report = build_report(context, [])
        assert report.population_size == 7
        assert report.ranked_cases == []
        assert report.funnel.steps == [("1 global whitelist", 3, 3)]
        assert report.quarantined == []
