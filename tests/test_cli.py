"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def trace_path(tmp_path):
    out = tmp_path / "trace.tsv"
    truth = tmp_path / "truth.json"
    code = main([
        "simulate", str(out), "--hosts", "12", "--sites", "25",
        "--hours", "6", "--seed", "3", "--truth", str(truth),
    ])
    assert code == 0
    return out, truth


class TestSimulate:
    def test_writes_log_and_truth(self, trace_path):
        out, truth = trace_path
        assert out.stat().st_size > 0
        payload = json.loads(truth.read_text())
        assert payload["malicious_destinations"]
        assert payload["infected_hosts"]

    def test_gzip_output(self, tmp_path):
        out = tmp_path / "trace.tsv.gz"
        assert main(["simulate", str(out), "--hosts", "5", "--sites", "10",
                     "--hours", "2"]) == 0
        assert out.read_bytes()[:2] == b"\x1f\x8b"


class TestDetect:
    def test_periodic_input(self, tmp_path, capsys):
        ts = tmp_path / "ts.txt"
        ts.write_text("\n".join(str(60.0 * i) for i in range(100)))
        assert main(["detect", str(ts)]) == 0
        output = capsys.readouterr().out
        assert "periodic: True" in output
        assert "60.0" in output

    def test_non_periodic_exit_code(self, tmp_path, capsys):
        import numpy as np

        rng = np.random.default_rng(0)
        ts = tmp_path / "ts.txt"
        ts.write_text("\n".join(
            str(t) for t in sorted(rng.uniform(0, 86_400, size=200))
        ))
        assert main(["detect", str(ts)]) == 1
        assert "periodic: False" in capsys.readouterr().out


class TestPipeline:
    def test_end_to_end(self, trace_path, capsys):
        out, truth = trace_path
        code = main([
            "pipeline", str(out), "--tau-p", "0.25", "--percentile", "0.0",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "global whitelist" in text
        payload = json.loads(truth.read_text())
        assert any(d in text for d in payload["malicious_destinations"])


class TestTelemetry:
    def test_pipeline_writes_telemetry_files(self, trace_path, tmp_path, capsys):
        out, _truth = trace_path
        telemetry = tmp_path / "telemetry"
        code = main([
            "pipeline", str(out), "--tau-p", "0.25", "--percentile", "0.0",
            "--telemetry", str(telemetry),
        ])
        assert code == 0
        assert "wrote telemetry" in capsys.readouterr().out
        for name in ("report.txt", "metrics.jsonl", "metrics.prom"):
            assert (telemetry / name).stat().st_size > 0
        report = (telemetry / "report.txt").read_text()
        assert "global whitelist" in report
        assert "stage latency" in report
        assert "detector.threshold_cache" in report

    def test_no_telemetry_flag_writes_nothing(self, trace_path, tmp_path):
        out, _truth = trace_path
        before = set(tmp_path.iterdir())
        assert main(["pipeline", str(out), "--tau-p", "0.25",
                     "--percentile", "0.0"]) == 0
        assert set(tmp_path.iterdir()) == before

    def test_stats_renders_saved_telemetry(self, trace_path, tmp_path, capsys):
        out, _truth = trace_path
        telemetry = tmp_path / "telemetry"
        assert main([
            "report", str(out), "--tau-p", "0.25", "--percentile", "0.0",
            "--output", str(tmp_path / "analyst.txt"),
            "--telemetry", str(telemetry),
        ]) == 0
        capsys.readouterr()
        assert main(["stats", str(telemetry)]) == 0
        text = capsys.readouterr().out
        assert "BAYWATCH run report" in text
        assert "global whitelist" in text

    def test_stats_missing_path_fails(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope")]) == 1
        assert "no telemetry found" in capsys.readouterr().err


class TestScore:
    def test_scores_and_flags(self, capsys):
        assert main(["score", "google.com", "xqzjwkvbblrwpq.com"]) == 0
        text = capsys.readouterr().out
        assert "SUSPICIOUS" in text
        assert "google.com" in text


class TestReport:
    def test_analyst_report_to_file(self, trace_path, tmp_path, capsys):
        log, _truth = trace_path
        out = tmp_path / "report.txt"
        code = main([
            "report", str(log), "--tau-p", "0.25",
            "--percentile", "0.0", "--output", str(out),
        ])
        assert code == 0
        text = out.read_text()
        assert "BAYWATCH daily report" in text
        assert "rank score" in text

    def test_analyst_report_to_stdout(self, trace_path, capsys):
        log, _truth = trace_path
        assert main(["report", str(log), "--tau-p", "0.25",
                     "--percentile", "0.0"]) == 0
        assert "BAYWATCH daily report" in capsys.readouterr().out
