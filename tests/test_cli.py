"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def trace_path(tmp_path):
    out = tmp_path / "trace.tsv"
    truth = tmp_path / "truth.json"
    code = main([
        "simulate", str(out), "--hosts", "12", "--sites", "25",
        "--hours", "6", "--seed", "3", "--truth", str(truth),
    ])
    assert code == 0
    return out, truth


class TestSimulate:
    def test_writes_log_and_truth(self, trace_path):
        out, truth = trace_path
        assert out.stat().st_size > 0
        payload = json.loads(truth.read_text())
        assert payload["malicious_destinations"]
        assert payload["infected_hosts"]

    def test_gzip_output(self, tmp_path):
        out = tmp_path / "trace.tsv.gz"
        assert main(["simulate", str(out), "--hosts", "5", "--sites", "10",
                     "--hours", "2"]) == 0
        assert out.read_bytes()[:2] == b"\x1f\x8b"


class TestDetect:
    def test_periodic_input(self, tmp_path, capsys):
        ts = tmp_path / "ts.txt"
        ts.write_text("\n".join(str(60.0 * i) for i in range(100)))
        assert main(["detect", str(ts)]) == 0
        output = capsys.readouterr().out
        assert "periodic: True" in output
        assert "60.0" in output

    def test_non_periodic_exit_code(self, tmp_path, capsys):
        import numpy as np

        rng = np.random.default_rng(0)
        ts = tmp_path / "ts.txt"
        ts.write_text("\n".join(
            str(t) for t in sorted(rng.uniform(0, 86_400, size=200))
        ))
        assert main(["detect", str(ts)]) == 1
        assert "periodic: False" in capsys.readouterr().out


class TestPipeline:
    def test_end_to_end(self, trace_path, capsys):
        out, truth = trace_path
        code = main([
            "pipeline", str(out), "--tau-p", "0.25", "--percentile", "0.0",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "global whitelist" in text
        payload = json.loads(truth.read_text())
        assert any(d in text for d in payload["malicious_destinations"])


class TestScore:
    def test_scores_and_flags(self, capsys):
        assert main(["score", "google.com", "xqzjwkvbblrwpq.com"]) == 0
        text = capsys.readouterr().out
        assert "SUSPICIOUS" in text
        assert "google.com" in text


class TestReport:
    def test_analyst_report_to_file(self, trace_path, tmp_path, capsys):
        log, _truth = trace_path
        out = tmp_path / "report.txt"
        code = main([
            "report", str(log), "--tau-p", "0.25",
            "--percentile", "0.0", "--output", str(out),
        ])
        assert code == 0
        text = out.read_text()
        assert "BAYWATCH daily report" in text
        assert "rank score" in text

    def test_analyst_report_to_stdout(self, trace_path, capsys):
        log, _truth = trace_path
        assert main(["report", str(log), "--tau-p", "0.25",
                     "--percentile", "0.0"]) == 0
        assert "BAYWATCH daily report" in capsys.readouterr().out
