"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def trace_path(tmp_path):
    out = tmp_path / "trace.tsv"
    truth = tmp_path / "truth.json"
    code = main([
        "simulate", str(out), "--hosts", "12", "--sites", "25",
        "--hours", "6", "--seed", "3", "--truth", str(truth),
    ])
    assert code == 0
    return out, truth


class TestSimulate:
    def test_writes_log_and_truth(self, trace_path):
        out, truth = trace_path
        assert out.stat().st_size > 0
        payload = json.loads(truth.read_text())
        assert payload["malicious_destinations"]
        assert payload["infected_hosts"]

    def test_gzip_output(self, tmp_path):
        out = tmp_path / "trace.tsv.gz"
        assert main(["simulate", str(out), "--hosts", "5", "--sites", "10",
                     "--hours", "2"]) == 0
        assert out.read_bytes()[:2] == b"\x1f\x8b"


class TestDetect:
    def test_periodic_input(self, tmp_path, capsys):
        ts = tmp_path / "ts.txt"
        ts.write_text("\n".join(str(60.0 * i) for i in range(100)))
        assert main(["detect", str(ts)]) == 0
        output = capsys.readouterr().out
        assert "periodic: True" in output
        assert "60.0" in output

    def test_non_periodic_exit_code(self, tmp_path, capsys):
        import numpy as np

        rng = np.random.default_rng(0)
        ts = tmp_path / "ts.txt"
        ts.write_text("\n".join(
            str(t) for t in sorted(rng.uniform(0, 86_400, size=200))
        ))
        assert main(["detect", str(ts)]) == 1
        assert "periodic: False" in capsys.readouterr().out


class TestPipeline:
    def test_end_to_end(self, trace_path, capsys):
        out, truth = trace_path
        code = main([
            "pipeline", str(out), "--tau-p", "0.25", "--percentile", "0.0",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "global whitelist" in text
        payload = json.loads(truth.read_text())
        assert any(d in text for d in payload["malicious_destinations"])


class TestTelemetry:
    def test_pipeline_writes_telemetry_files(self, trace_path, tmp_path, capsys):
        out, _truth = trace_path
        telemetry = tmp_path / "telemetry"
        code = main([
            "pipeline", str(out), "--tau-p", "0.25", "--percentile", "0.0",
            "--telemetry", str(telemetry),
        ])
        assert code == 0
        assert "wrote telemetry" in capsys.readouterr().out
        for name in ("report.txt", "metrics.jsonl", "metrics.prom"):
            assert (telemetry / name).stat().st_size > 0
        report = (telemetry / "report.txt").read_text()
        assert "global whitelist" in report
        assert "stage latency" in report
        assert "detector.threshold_cache" in report

    def test_no_telemetry_flag_writes_nothing(self, trace_path, tmp_path):
        out, _truth = trace_path
        before = set(tmp_path.iterdir())
        assert main(["pipeline", str(out), "--tau-p", "0.25",
                     "--percentile", "0.0"]) == 0
        assert set(tmp_path.iterdir()) == before

    def test_stats_renders_saved_telemetry(self, trace_path, tmp_path, capsys):
        out, _truth = trace_path
        telemetry = tmp_path / "telemetry"
        assert main([
            "report", str(out), "--tau-p", "0.25", "--percentile", "0.0",
            "--output", str(tmp_path / "analyst.txt"),
            "--telemetry", str(telemetry),
        ]) == 0
        capsys.readouterr()
        assert main(["stats", str(telemetry)]) == 0
        text = capsys.readouterr().out
        assert "BAYWATCH run report" in text
        assert "global whitelist" in text

    def test_stats_missing_path_fails(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope")]) == 1
        assert "no telemetry found" in capsys.readouterr().err

    def test_stats_empty_telemetry_fails_one_liner(self, tmp_path, capsys):
        telemetry = tmp_path / "telemetry"
        telemetry.mkdir()
        (telemetry / "metrics.jsonl").write_text("")
        assert main(["stats", str(telemetry)]) == 1
        err = capsys.readouterr().err
        assert "is empty" in err
        assert "Traceback" not in err

    def test_stats_corrupt_telemetry_fails_one_liner(self, tmp_path, capsys):
        telemetry = tmp_path / "telemetry"
        telemetry.mkdir()
        (telemetry / "metrics.jsonl").write_text("{not json\n")
        assert main(["stats", str(telemetry)]) == 1
        err = capsys.readouterr().err
        assert "not readable" in err
        assert "Traceback" not in err

    def test_stats_profile_renders_hotspots(self, trace_path, tmp_path,
                                            capsys, monkeypatch):
        from repro.obs.profiling import clear_profiles

        clear_profiles()
        monkeypatch.setenv("REPRO_PROFILE", "cprofile")
        out, _truth = trace_path
        telemetry = tmp_path / "telemetry"
        assert main([
            "pipeline", str(out), "--tau-p", "0.25", "--percentile", "0.0",
            "--telemetry", str(telemetry),
        ]) == 0
        assert (telemetry / "profiles.jsonl").stat().st_size > 0
        capsys.readouterr()
        assert main(["stats", str(telemetry), "--profile"]) == 0
        text = capsys.readouterr().out
        assert "profile [cprofile]" in text
        assert "tottime" in text

    def test_stats_profile_without_profiles_notes_it(self, trace_path,
                                                     tmp_path, capsys):
        out, _truth = trace_path
        telemetry = tmp_path / "telemetry"
        assert main([
            "pipeline", str(out), "--tau-p", "0.25", "--percentile", "0.0",
            "--telemetry", str(telemetry),
        ]) == 0
        capsys.readouterr()
        assert main(["stats", str(telemetry), "--profile"]) == 0
        assert "no profiles" in capsys.readouterr().out

    def test_run_report_has_summary_line(self, trace_path, tmp_path):
        out, _truth = trace_path
        telemetry = tmp_path / "telemetry"
        assert main([
            "pipeline", str(out), "--tau-p", "0.25", "--percentile", "0.0",
            "--telemetry", str(telemetry),
        ]) == 0
        report = (telemetry / "report.txt").read_text()
        assert "summary: threshold cache" in report
        assert "% hits" in report


class TestBench:
    def test_micro_suite_writes_report(self, tmp_path, capsys):
        code = main([
            "bench", "--suite", "micro", "--repeats", "1", "--warmup", "0",
            "--no-memory", "--output-dir", str(tmp_path),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "bench suite 'micro'" in text
        assert "wrote" in text
        payload = json.loads((tmp_path / "BENCH_micro.json").read_text())
        assert payload["suite"] == "micro"
        assert payload["schema"] == 1
        assert payload["fingerprint"]["python"]
        names = [entry["name"] for entry in payload["results"]]
        assert "periodogram.power_spectrum" in names
        for entry in payload["results"]:
            assert entry["seconds"]["mean"] > 0
            assert entry["events_per_second"] > 0

    def test_unknown_suite_fails_one_liner(self, tmp_path, capsys):
        assert main(["bench", "--suite", "nope",
                     "--output-dir", str(tmp_path)]) == 1
        assert "unknown bench suite" in capsys.readouterr().err

    def test_compare_pass_and_fail(self, tmp_path, capsys):
        from repro.obs.bench import BenchReport, BenchResult

        def report(mean):
            return BenchReport(
                suite="micro", created=1.0, fingerprint={}, config={},
                results=[BenchResult(
                    name="a", repeats=1, warmup=0, events=1,
                    seconds={"mean": mean, "min": mean, "max": mean,
                             "total": mean, "p50": mean, "p95": mean},
                    samples=[mean], events_per_second=1 / mean,
                )],
            )

        base = tmp_path / "BENCH_base.json"
        base.write_text(json.dumps(report(1.0).to_dict()))
        fast = tmp_path / "BENCH_fast.json"
        fast.write_text(json.dumps(report(0.9).to_dict()))
        slow = tmp_path / "BENCH_slow.json"
        slow.write_text(json.dumps(report(2.0).to_dict()))

        assert main(["bench", "--compare", str(base), str(fast)]) == 0
        assert "OK" in capsys.readouterr().out

        assert main(["bench", "--compare", str(base), str(slow)]) == 1
        assert "FAIL" in capsys.readouterr().out

        # A generous tolerance lets the same pair pass.
        assert main(["bench", "--compare", str(base), str(slow),
                     "--tolerance", "1.5"]) == 0

    def test_compare_unreadable_file_fails_one_liner(self, tmp_path, capsys):
        good = tmp_path / "BENCH_good.json"
        good.write_text(json.dumps({"suite": "x", "results": []}))
        assert main(["bench", "--compare", str(tmp_path / "none.json"),
                     str(good)]) == 1
        assert "cannot read bench report" in capsys.readouterr().err


class TestScore:
    def test_scores_and_flags(self, capsys):
        assert main(["score", "google.com", "xqzjwkvbblrwpq.com"]) == 0
        text = capsys.readouterr().out
        assert "SUSPICIOUS" in text
        assert "google.com" in text


class TestReport:
    def test_analyst_report_to_file(self, trace_path, tmp_path, capsys):
        log, _truth = trace_path
        out = tmp_path / "report.txt"
        code = main([
            "report", str(log), "--tau-p", "0.25",
            "--percentile", "0.0", "--output", str(out),
        ])
        assert code == 0
        text = out.read_text()
        assert "BAYWATCH daily report" in text
        assert "rank score" in text

    def test_analyst_report_to_stdout(self, trace_path, capsys):
        log, _truth = trace_path
        assert main(["report", str(log), "--tau-p", "0.25",
                     "--percentile", "0.0"]) == 0
        assert "BAYWATCH daily report" in capsys.readouterr().out


class TestRun:
    def test_sharded_run_end_to_end(self, trace_path, tmp_path, capsys):
        out, _truth = trace_path
        ckpt = tmp_path / "ckpt"
        code = main([
            "run", str(out), "--shard-size", "4",
            "--checkpoint-dir", str(ckpt), "--percentile", "0.5",
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "periodicity detection" in captured
        assert (ckpt / "manifest.json").exists()
        assert list(ckpt.glob("shard-*.jsonl"))

    def test_max_shards_exits_incomplete_then_resume_completes(
        self, trace_path, tmp_path, capsys
    ):
        out, _truth = trace_path
        ckpt = tmp_path / "ckpt"
        base = [
            "run", str(out), "--shard-size", "2",
            "--checkpoint-dir", str(ckpt), "--percentile", "0.5",
        ]
        code = main(base + ["--max-shards", "1"])
        assert code == 3
        assert "run incomplete" in capsys.readouterr().out

        code = main(base + ["--resume", "--telemetry", str(tmp_path / "tel")])
        assert code == 0
        capsys.readouterr()
        metrics = (tmp_path / "tel" / "metrics.jsonl").read_text()
        assert "mapreduce.shards_resumed" in metrics

    def test_resume_with_changed_settings_exits_2(
        self, trace_path, tmp_path, capsys
    ):
        out, _truth = trace_path
        ckpt = tmp_path / "ckpt"
        code = main([
            "run", str(out), "--shard-size", "2",
            "--checkpoint-dir", str(ckpt), "--percentile", "0.5",
            "--max-shards", "1",
        ])
        assert code == 3
        capsys.readouterr()
        code = main([
            "run", str(out), "--shard-size", "3",
            "--checkpoint-dir", str(ckpt), "--percentile", "0.5",
            "--resume",
        ])
        assert code == 2
        assert "refusing to resume" in capsys.readouterr().err

    def test_parallel_run_with_retries(self, trace_path, capsys):
        out, _truth = trace_path
        code = main([
            "run", str(out), "--workers", "2", "--shard-size", "8",
            "--max-retries", "2", "--percentile", "0.5",
        ])
        assert code == 0

    def test_run_with_threads_executor(self, trace_path, capsys):
        out, _truth = trace_path
        code = main([
            "run", str(out), "--executor", "threads", "--workers", "2",
            "--shard-size", "8", "--percentile", "0.5",
        ])
        assert code == 0
        assert "periodicity detection" in capsys.readouterr().out

    def test_shard_queue_requires_checkpoint_dir(self, trace_path, capsys):
        out, _truth = trace_path
        code = main(["run", str(out), "--executor", "shard-queue"])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_unknown_executor_rejected(self, trace_path, capsys):
        out, _truth = trace_path
        with pytest.raises(SystemExit):
            main(["run", str(out), "--executor", "mainframe"])


class TestWorker:
    def test_worker_drains_queue_and_journals(self, tmp_path, capsys):
        from repro.mapreduce.executors import ShardQueueExecutor
        from repro.obs.journal import read_events

        ckpt = tmp_path / "ckpt"
        executor = ShardQueueExecutor(
            str(ckpt / "queue"), poll_interval=0.01
        )
        handle = executor.submit(divmod, 17, 5)
        code = main([
            "worker", "--checkpoint-dir", str(ckpt),
            "--poll-interval", "0.01", "--max-tasks", "1",
        ])
        assert code == 0
        assert executor.result(handle, timeout=5.0) == (3, 2)
        output = capsys.readouterr().out
        assert "1 task(s) processed" in output
        events = [e["event"] for e in read_events(ckpt / "events.jsonl")]
        assert events == ["worker_start", "worker_task", "worker_exit"]

    def test_worker_exits_on_stop_sentinel(self, tmp_path, capsys):
        from repro.mapreduce.executors import ShardQueueExecutor

        ckpt = tmp_path / "ckpt"
        ShardQueueExecutor(str(ckpt / "queue")).close()  # raises sentinel
        code = main([
            "worker", "--checkpoint-dir", str(ckpt),
            "--poll-interval", "0.01",
        ])
        assert code == 0
        assert "0 task(s) processed" in capsys.readouterr().out

    def test_worker_idle_exit(self, tmp_path, capsys):
        (tmp_path / "ckpt" / "queue" / "tasks").mkdir(parents=True)
        code = main([
            "worker", "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--poll-interval", "0.01", "--idle-exit", "0.1",
        ])
        assert code == 0


class TestObservability:
    def test_run_journals_and_trace_renders(self, trace_path, tmp_path,
                                            capsys):
        out, _truth = trace_path
        ckpt, tel = tmp_path / "ckpt", tmp_path / "tel"
        code = main([
            "run", str(out), "--workers", "2", "--shard-size", "4",
            "--checkpoint-dir", str(ckpt), "--telemetry", str(tel),
            "--percentile", "0.5", "--run-id", "cliobs01",
        ])
        assert code == 0
        capsys.readouterr()
        journal = (ckpt / "events.jsonl").read_text()
        assert '"run_id": "cliobs01"' in journal
        assert '"event": "run_finish"' in journal

        chrome = tmp_path / "chrome.json"
        code = main(["trace", str(tel), "--chrome", str(chrome)])
        assert code == 0
        rendered = capsys.readouterr().out
        assert "cliobs01" in rendered
        assert "run" in rendered
        payload = json.loads(chrome.read_text())
        assert payload["traceEvents"]
        assert all(event["ph"] == "X" for event in payload["traceEvents"])

        code = main(["watch", str(ckpt), "--once"])
        assert code == 0
        status_text = capsys.readouterr().out
        assert "cliobs01" in status_text
        assert "[finished]" in status_text

    def test_run_with_status_port_serves_and_stops(self, trace_path,
                                                   tmp_path, capsys):
        out, _truth = trace_path
        ckpt = tmp_path / "ckpt"
        code = main([
            "run", str(out), "--shard-size", "4",
            "--checkpoint-dir", str(ckpt), "--percentile", "0.5",
            "--status-port", "0",
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "status service on http://127.0.0.1:" in captured
        assert (ckpt / "events.jsonl").exists()

    def test_status_port_requires_a_journal_home(self, trace_path, capsys):
        out, _truth = trace_path
        code = main(["run", str(out), "--status-port", "0"])
        assert code == 2
        assert "--status-port needs" in capsys.readouterr().err

    def test_watch_polls_http_service(self, tmp_path, capsys):
        from repro.obs import EventJournal, StatusServer

        journal = EventJournal.in_dir(tmp_path, run_id="httpwatch")
        journal.append("run_start", n_shards=1)
        journal.append("shard_finish", shard=0, pairs=4, seconds=0.1)
        journal.append("run_finish")
        with StatusServer(journal_path=journal.path, port=0) as server:
            code = main(["watch", "--url", server.url, "--once"])
        assert code == 0
        status_text = capsys.readouterr().out
        assert "httpwatch" in status_text
        assert "1/1" in status_text

    def test_watch_follows_until_finished(self, tmp_path, capsys):
        journal_dir = tmp_path
        from repro.obs import EventJournal

        journal = EventJournal.in_dir(journal_dir, run_id="follow")
        journal.append("run_start", n_shards=1)
        journal.append("shard_finish", shard=0, pairs=4, seconds=0.1)
        journal.append("run_finish")
        # state == finished, so the poll loop exits on the first pass
        # even without --once.
        code = main(["watch", str(journal_dir), "--interval", "0.01"])
        assert code == 0
        assert "[finished]" in capsys.readouterr().out

    def test_watch_without_source_exits_2(self, capsys):
        assert main(["watch"]) == 2
        assert "journal path" in capsys.readouterr().err

    def test_trace_missing_file_exits_1(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path)]) == 1
        assert "no trace found" in capsys.readouterr().err

    def test_trace_empty_file_exits_1(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.jsonl"
        trace_file.write_text("")
        assert main(["trace", str(trace_file)]) == 1
        assert "empty" in capsys.readouterr().err
