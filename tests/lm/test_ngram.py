"""Unit tests for the Kneser-Ney n-gram language model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lm.ngram import NgramLanguageModel


@pytest.fixture(scope="module")
def english_model():
    corpus = [
        "google", "facebook", "youtube", "amazon", "network", "internet",
        "computer", "download", "software", "security", "service", "cloud",
        "market", "social", "search", "update", "mobile", "online", "digital",
        "system", "account", "message", "player", "stream", "center",
    ] * 4
    return NgramLanguageModel(order=3).fit(corpus)


class TestTraining:
    def test_fit_returns_self(self):
        model = NgramLanguageModel()
        assert model.fit(["abc"]) is model

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            NgramLanguageModel().fit([])

    def test_empty_strings_skipped(self):
        model = NgramLanguageModel().fit(["", "abc", ""])
        assert model.vocabulary_size > 0

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            NgramLanguageModel(order=1)

    def test_invalid_discount(self):
        with pytest.raises(ValueError):
            NgramLanguageModel(discount=1.0)


class TestProbabilities:
    def test_probabilities_are_valid(self, english_model):
        for char in "abcxyz":
            p = english_model.probability(char, "oo")
            assert 0.0 < p <= 1.0

    def test_seen_transition_beats_unseen(self, english_model):
        # "oog" occurs (google); "oqz" never does.
        assert english_model.probability("g", "oo") > english_model.probability(
            "z", "oq"
        )

    def test_unseen_character_gets_smoothed_mass(self, english_model):
        assert english_model.probability("q", "zz") > 0.0

    def test_distribution_sums_to_at_most_one(self, english_model):
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        total = sum(english_model.probability(c, "co") for c in alphabet)
        assert total <= 1.0 + 1e-6

    def test_requires_fit(self):
        with pytest.raises(ValueError):
            NgramLanguageModel().probability("a", "bc")


class TestScoring:
    def test_natural_scores_higher_than_random(self, english_model):
        natural = english_model.log_score("computer")
        random_text = english_model.log_score("xqzjwkvp")
        assert natural > random_text + 5

    def test_score_decreases_with_length(self, english_model):
        short = english_model.log_score("net")
        long = english_model.log_score("networknetworknetwork")
        assert long < short

    def test_normalized_score_is_length_stable(self, english_model):
        short = english_model.normalized_score("network")
        long = english_model.normalized_score("networknetwork")
        assert abs(short - long) < 1.0

    def test_empty_text_rejected(self, english_model):
        with pytest.raises(ValueError):
            english_model.log_score("")

    def test_case_insensitive(self, english_model):
        assert english_model.log_score("GOOGLE") == english_model.log_score("google")

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=30))
    def test_scores_are_finite_and_negative(self, english_model, text):
        score = english_model.log_score(text)
        assert math.isfinite(score)
        assert score < 0
