"""Tests for domain scoring and the bundled corpus."""

import pytest

from repro.lm.corpus import POPULAR_DOMAINS, expand_corpus, training_corpus
from repro.lm.domains import DomainScorer, default_scorer, registered_domain
from repro.synthetic.dga import generate_pool


@pytest.fixture(scope="module")
def scorer():
    return default_scorer()


class TestRegisteredDomain:
    @pytest.mark.parametrize(
        "hostname,expected",
        [
            ("google.com", "google.com"),
            ("www.google.com", "google.com"),
            ("cdn.assets.google.com", "google.com"),
            ("example.co.uk", "example.co.uk"),
            ("www.example.co.uk", "example.co.uk"),
            ("localhost", "localhost"),
            ("10.0.0.1", "10.0.0.1"),
            ("GOOGLE.COM", "google.com"),
            ("google.com.", "google.com"),
        ],
    )
    def test_extraction(self, hostname, expected):
        assert registered_domain(hostname) == expected

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            registered_domain("")


class TestCorpus:
    def test_popular_domains_nonempty_and_unique(self):
        assert len(POPULAR_DOMAINS) > 300
        assert len(set(POPULAR_DOMAINS)) == len(POPULAR_DOMAINS)

    def test_expand_corpus_deterministic(self):
        assert expand_corpus(500) == expand_corpus(500)

    def test_expand_corpus_size(self):
        assert len(expand_corpus(1234)) == 1234

    def test_training_corpus_combines(self):
        corpus = training_corpus(1000)
        assert len(corpus) == len(POPULAR_DOMAINS) + 1000


class TestDomainScorer:
    def test_paper_example_separation(self, scorer):
        """The paper: google.com ~ -7.4 vs 22-char DGA ~ -45."""
        benign = scorer.score("google.com")
        dga = scorer.score("skmnikrzhrrzcjcxwfprgt.com")
        assert benign > -15
        assert dga < -45
        assert benign - dga > 30

    def test_subdomain_stripping(self, scorer):
        long_blob = "cdn.5f75b1c54f8ab29ccd2d4.com"
        assert scorer.score(long_blob) == scorer.score("5f75b1c54f8ab29ccd2d4.com")

    def test_dga_families_flagged(self, scorer):
        # Uniform-random labels occasionally come out pronounceable, so
        # the bound for "random" is a little looser than hex/consonant.
        for family, bound in (("random", 15), ("hex", 19), ("consonant", 19)):
            pool = generate_pool(20, family=family, seed=5)
            flagged = sum(scorer.is_suspicious(d) for d in pool)
            assert flagged >= bound, f"{family}: only {flagged}/20 flagged"

    def test_benign_not_flagged(self, scorer):
        flagged = sum(scorer.is_suspicious(d) for d in POPULAR_DOMAINS[:150])
        assert flagged == 0

    def test_word_dga_is_the_hard_case(self, scorer):
        """Word-composition DGAs evade the LM (by design of the threat)."""
        pool = generate_pool(20, family="words", seed=5)
        flagged = sum(scorer.is_suspicious(d) for d in pool)
        assert flagged <= 5

    def test_score_many_sorted(self, scorer):
        scored = scorer.score_many(["google.com", "xqzjwkvpllrw.com", "amazon.com"])
        values = [v for _d, v in scored]
        assert values == sorted(values)
        assert scored[0][0] == "xqzjwkvpllrw.com"

    def test_default_scorer_cached(self):
        assert default_scorer() is default_scorer()

    def test_custom_corpus(self):
        scorer = DomainScorer(corpus=["aaa.com", "aab.com", "aba.com"] * 10)
        assert scorer.normalized_score("aaa.com") > scorer.normalized_score(
            "zzz.com"
        )
