"""Persistent ActivitySummary store across analysis runs.

The paper's phases are "modularized MapReduce job[s] to avoid
reprocessing raw logs" (Section VII): once a day's logs are extracted
into ActivitySummaries, every later analysis — the weekly and monthly
passes, re-ranking with new whitelists, retrospective hunts — reads the
summaries, never the raw logs.

:class:`SummaryStore` provides that layer on top of
:class:`~repro.mapreduce.PartitionedStore`: append per-window summaries
tagged by day, then load any trailing window rescaled and merged per
pair, without touching raw records again.

Day shards persist as **packed arrays** by default: each ``append_day``
writes one columnar frame per partition (parallel float/offset arrays
plus UTF-8 string blobs) instead of one pickle per summary, which is
both smaller and faster to decode.  The read path is format
agnostic — stores written by the older pickle codec (or days appended
under both codecs) load unchanged.  Pass ``codec="pickle"`` to keep
writing the legacy format.
"""

from __future__ import annotations

import shutil
import struct
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.timeseries import ActivitySummary, merge, merge_rescaled, rescale
from repro.mapreduce.store import PartitionedStore, RecordPacker
from repro.utils.validation import require, require_positive


def _encode_strings(values: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
    """A string column -> (offsets i8[n+1], utf-8 byte blob u1[total])."""
    encoded = [value.encode("utf-8") for value in values]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    if encoded:
        np.cumsum([len(text) for text in encoded], out=offsets[1:])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8)
    return offsets, blob


def _decode_strings(offsets: np.ndarray, blob: np.ndarray) -> List[str]:
    """Inverse of :func:`_encode_strings`."""
    data = blob.tobytes()
    bounds = offsets.tolist()
    return [
        data[begin:end].decode("utf-8")
        for begin, end in zip(bounds, bounds[1:])
    ]


#: Packed-payload header: codec version, n summaries, total intervals.
#: Every later section length is derivable from these plus the offset
#: arrays that precede each blob, so the payload parses in one forward
#: sweep of zero-copy ``np.frombuffer`` views.
_PACK_HEADER = struct.Struct("<HQQ")
PACK_VERSION = 1


def pack_summaries(summaries: Sequence[ActivitySummary]) -> bytes:
    """A batch of summaries -> one blob of packed parallel arrays.

    Layout (all little-endian, raw array bytes, no container): a
    :data:`_PACK_HEADER`, per-summary scalars (``time_scale``,
    ``first_timestamp``), ragged intervals as ``interval_offsets`` +
    one concatenated ``f8`` array, and the three string columns
    (sources, destinations, and the flattened per-summary URL samples)
    as offset-indexed UTF-8 blobs.  Floats round-trip bit-exactly —
    unlike JSON or repr, no text conversion is involved.
    """
    n = len(summaries)
    interval_offsets = np.zeros(n + 1, dtype="<i8")
    if n:
        np.cumsum([len(s.intervals) for s in summaries], out=interval_offsets[1:])
    intervals = np.empty(int(interval_offsets[-1]), dtype="<f8")
    for index, summary in enumerate(summaries):
        intervals[interval_offsets[index]:interval_offsets[index + 1]] = (
            summary.intervals
        )
    url_group_offsets = np.zeros(n + 1, dtype="<i8")
    if n:
        np.cumsum([len(s.urls) for s in summaries], out=url_group_offsets[1:])
    flat_urls = [url for summary in summaries for url in summary.urls]
    source_offsets, source_blob = _encode_strings([s.source for s in summaries])
    dest_offsets, dest_blob = _encode_strings(
        [s.destination for s in summaries]
    )
    url_offsets, url_blob = _encode_strings(flat_urls)
    sections = [
        _PACK_HEADER.pack(PACK_VERSION, n, len(intervals)),
        np.array([s.time_scale for s in summaries], dtype="<f8").tobytes(),
        np.array(
            [s.first_timestamp for s in summaries], dtype="<f8"
        ).tobytes(),
        interval_offsets.tobytes(),
        intervals.tobytes(),
        url_group_offsets.tobytes(),
        source_offsets.astype("<i8").tobytes(),
        source_blob.tobytes(),
        dest_offsets.astype("<i8").tobytes(),
        dest_blob.tobytes(),
        url_offsets.astype("<i8").tobytes(),
        url_blob.tobytes(),
    ]
    return b"".join(sections)


def unpack_summaries(payload: bytes) -> List[ActivitySummary]:
    """Inverse of :func:`pack_summaries`."""
    version, n, n_intervals = _PACK_HEADER.unpack_from(payload, 0)
    if version != PACK_VERSION:
        raise ValueError(
            f"packed summary payload has version {version}, "
            f"expected {PACK_VERSION}"
        )
    cursor = _PACK_HEADER.size

    def take(dtype: str, count: int) -> np.ndarray:
        nonlocal cursor
        array = np.frombuffer(payload, dtype=dtype, count=count, offset=cursor)
        cursor += array.nbytes
        return array

    def take_strings(count: int) -> List[str]:
        offsets = take("<i8", count + 1)
        return _decode_strings(offsets, take("u1", int(offsets[-1])))

    time_scale = take("<f8", n).tolist()
    first_timestamp = take("<f8", n).tolist()
    interval_bounds = take("<i8", n + 1).tolist()
    intervals = take("<f8", n_intervals).tolist()
    url_bounds = take("<i8", n + 1).tolist()
    sources = take_strings(n)
    destinations = take_strings(n)
    urls = take_strings(int(url_bounds[-1]))
    # Constructed without __post_init__ re-validation — the payload was
    # packed from already-validated summaries, the same trust model
    # pickle applies when it restores instances via __setstate__.
    out: List[ActivitySummary] = []
    for i in range(n):
        summary = ActivitySummary.__new__(ActivitySummary)
        fields = {
            "source": sources[i],
            "destination": destinations[i],
            "time_scale": time_scale[i],
            "first_timestamp": first_timestamp[i],
            "intervals": tuple(
                intervals[interval_bounds[i]:interval_bounds[i + 1]]
            ),
            "urls": tuple(urls[url_bounds[i]:url_bounds[i + 1]]),
        }
        for name, value in fields.items():
            object.__setattr__(summary, name, value)
        out.append(summary)
    return out


class SummaryPacker(RecordPacker):
    """Packed-array codec for :class:`ActivitySummary` partitions."""

    def pack(self, records: List[ActivitySummary]) -> bytes:
        return pack_summaries(records)

    def unpack(self, payload: bytes) -> List[ActivitySummary]:
        return unpack_summaries(payload)


class SummaryStore:
    """Day-indexed persistent storage of per-pair activity summaries."""

    _CODECS = ("packed", "pickle")

    def __init__(
        self,
        root: Union[str, Path],
        *,
        n_partitions: int = 32,
        codec: str = "packed",
    ) -> None:
        require(
            codec in self._CODECS,
            f"codec must be one of {self._CODECS}, got {codec!r}",
        )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.n_partitions = n_partitions
        self.codec = codec
        self._packer = SummaryPacker()

    def _day_store(self, day: int, *, for_write: bool = False) -> PartitionedStore:
        # Reads always carry the packer so a "pickle"-configured store
        # still loads days written by a packed one; only writes honour
        # the configured codec.
        packer = None if (for_write and self.codec != "packed") else self._packer
        return PartitionedStore(
            self.root / f"day-{day:05d}",
            n_partitions=self.n_partitions,
            packer=packer,
        )

    # -- writing ---------------------------------------------------------------

    def append_day(
        self,
        day: int,
        summaries: Iterable[ActivitySummary],
        *,
        replace: bool = False,
    ) -> int:
        """Persist one day's summaries; returns the count written.

        ``replace=True`` clears the day first, making the call
        idempotent — the mode a checkpointed/resumed extraction must
        use, since blindly re-appending an already-ingested day would
        double every interval count in later analyses.
        """
        require(day >= 0, "day must be non-negative")
        store = self._day_store(day, for_write=True)
        if replace:
            store.clear()
        return store.write(list(summaries), key_of=lambda s: s.pair)

    # -- reading ---------------------------------------------------------------

    def has_day(self, day: int) -> bool:
        """True when summaries for ``day`` were already ingested.

        A direct path probe: O(1) however many days the store holds.
        (The previous implementation listed and parsed every day
        directory, so a resume loop probing each day of a long archive
        paid O(days²) in aggregate.)
        """
        return (self.root / f"day-{day:05d}").exists()

    def days(self) -> List[int]:
        """The day indices present in the store, ascending."""
        out = []
        for path in sorted(self.root.glob("day-*")):
            try:
                out.append(int(path.name.split("-")[1]))
            except (IndexError, ValueError):
                continue
        return out

    def load_day(self, day: int) -> List[ActivitySummary]:
        """All summaries of one day (empty when absent)."""
        return list(self._day_store(day).read_all())

    def load_window(
        self,
        *,
        end_day: Optional[int] = None,
        window_days: int = 7,
        time_scale: Optional[float] = None,
    ) -> List[ActivitySummary]:
        """Trailing window of summaries, merged per pair.

        ``time_scale`` optionally rescales before merging (the weekly
        and monthly passes run coarse); windows reaching before day 0
        are clipped.
        """
        require_positive(window_days, "window_days")
        days = self.days()
        if not days:
            return []
        if end_day is None:
            end_day = days[-1]
        wanted = [d for d in days if end_day - window_days < d <= end_day]
        grouped: Dict[Tuple[str, str], List[ActivitySummary]] = {}
        for day in wanted:
            for summary in self.load_day(day):
                grouped.setdefault(summary.pair, []).append(summary)
        workspace: Optional[np.ndarray] = None
        merged: List[ActivitySummary] = []
        for group in grouped.values():
            if time_scale is not None and all(
                s.time_scale <= time_scale for s in group
            ):
                # Fused rescale-and-merge: sort by the timestamp each
                # summary would start at after quantization so segment
                # order matches the copying composition.
                group.sort(
                    key=lambda s: (
                        float(np.floor(s.first_timestamp / time_scale) * time_scale)
                        if s.time_scale < time_scale
                        else s.first_timestamp
                    )
                )
                total = sum(s.event_count for s in group)
                if workspace is None or workspace.size < total:
                    workspace = np.empty(total, dtype=float)
                merged.append(merge_rescaled(group, time_scale, out=workspace))
            else:
                if time_scale is not None:
                    group = [
                        rescale(s, time_scale) if s.time_scale < time_scale else s
                        for s in group
                    ]
                group.sort(key=lambda s: s.first_timestamp)
                merged.append(merge(group))
        merged.sort(key=lambda s: s.pair)
        return merged

    # -- maintenance -----------------------------------------------------------

    def evict_before(self, day: int) -> int:
        """Drop every stored day strictly older than ``day``.

        Returns the number of days removed.  This is the rolling-window
        maintenance hook: an operator appending day ``d`` evicts
        ``d - window_days + 1`` so disk usage stays bounded by the
        longest cadence window instead of growing with run length.
        """
        removed = 0
        for stored in self.days():
            if stored < day:
                self._day_store(stored).clear()
                # clear() unlinks partition files but keeps the day
                # directory, which has_day() probes — remove it too.
                shutil.rmtree(self.root / f"day-{stored:05d}", ignore_errors=True)
                removed += 1
        return removed

    def clear(self) -> None:
        """Remove every stored day."""
        for day in self.days():
            self._day_store(day).clear()
