"""Persistent ActivitySummary store across analysis runs.

The paper's phases are "modularized MapReduce job[s] to avoid
reprocessing raw logs" (Section VII): once a day's logs are extracted
into ActivitySummaries, every later analysis — the weekly and monthly
passes, re-ranking with new whitelists, retrospective hunts — reads the
summaries, never the raw logs.

:class:`SummaryStore` provides that layer on top of
:class:`~repro.mapreduce.PartitionedStore`: append per-window summaries
tagged by day, then load any trailing window rescaled and merged per
pair, without touching raw records again.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.timeseries import ActivitySummary, merge, rescale
from repro.mapreduce.store import PartitionedStore
from repro.utils.validation import require, require_positive


class SummaryStore:
    """Day-indexed persistent storage of per-pair activity summaries."""

    def __init__(self, root: Union[str, Path], *, n_partitions: int = 32) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.n_partitions = n_partitions

    def _day_store(self, day: int) -> PartitionedStore:
        return PartitionedStore(
            self.root / f"day-{day:05d}", n_partitions=self.n_partitions
        )

    # -- writing ---------------------------------------------------------------

    def append_day(
        self,
        day: int,
        summaries: Iterable[ActivitySummary],
        *,
        replace: bool = False,
    ) -> int:
        """Persist one day's summaries; returns the count written.

        ``replace=True`` clears the day first, making the call
        idempotent — the mode a checkpointed/resumed extraction must
        use, since blindly re-appending an already-ingested day would
        double every interval count in later analyses.
        """
        require(day >= 0, "day must be non-negative")
        store = self._day_store(day)
        if replace:
            store.clear()
        return store.write(list(summaries), key_of=lambda s: s.pair)

    # -- reading ---------------------------------------------------------------

    def has_day(self, day: int) -> bool:
        """True when summaries for ``day`` were already ingested."""
        return day in self.days()

    def days(self) -> List[int]:
        """The day indices present in the store, ascending."""
        out = []
        for path in sorted(self.root.glob("day-*")):
            try:
                out.append(int(path.name.split("-")[1]))
            except (IndexError, ValueError):
                continue
        return out

    def load_day(self, day: int) -> List[ActivitySummary]:
        """All summaries of one day (empty when absent)."""
        return list(self._day_store(day).read_all())

    def load_window(
        self,
        *,
        end_day: Optional[int] = None,
        window_days: int = 7,
        time_scale: Optional[float] = None,
    ) -> List[ActivitySummary]:
        """Trailing window of summaries, merged per pair.

        ``time_scale`` optionally rescales before merging (the weekly
        and monthly passes run coarse); windows reaching before day 0
        are clipped.
        """
        require_positive(window_days, "window_days")
        days = self.days()
        if not days:
            return []
        if end_day is None:
            end_day = days[-1]
        wanted = [d for d in days if end_day - window_days < d <= end_day]
        grouped: Dict[Tuple[str, str], List[ActivitySummary]] = {}
        for day in wanted:
            for summary in self.load_day(day):
                if time_scale is not None and summary.time_scale < time_scale:
                    summary = rescale(summary, time_scale)
                grouped.setdefault(summary.pair, []).append(summary)
        merged = [
            merge(sorted(group, key=lambda s: s.first_timestamp))
            for group in grouped.values()
        ]
        merged.sort(key=lambda s: s.pair)
        return merged

    def clear(self) -> None:
        """Remove every stored day."""
        for day in self.days():
            self._day_store(day).clear()
