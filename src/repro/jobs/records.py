"""Record types exchanged between the MapReduce jobs (Section VII).

The jobs communicate with plain picklable values:

- raw input: ``(line_number, ProxyLogRecord)`` pairs,
- after extraction: ``((source, destination), ActivitySummary)``,
- after detection: ``((source, destination), DetectionCase)``,
- after ranking: ``(rank_score, DetectionCase)`` sorted descending.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.detector import DetectionResult
from repro.core.timeseries import ActivitySummary
from repro.filtering.case import BeaconingCase


@dataclass(frozen=True)
class DetectionCase:
    """A detected beaconing pair, as emitted by the detection job.

    Mirrors the paper's ``(AS, CP)`` payload: the ActivitySummary plus
    the CandidatePeriod list, extended with the popularity and
    language-model indicators computed by the ranking MAP task.
    """

    summary: ActivitySummary
    detection: DetectionResult
    popularity: float = 0.0
    similar_sources: int = 1
    lm_score: float = 0.0
    rank_score: float = 0.0

    @property
    def pair(self) -> Tuple[str, str]:
        """The (source, destination) communication pair."""
        return self.summary.pair

    @property
    def source(self) -> str:
        """Source endpoint (MAC in the paper's configuration)."""
        return self.summary.source

    @property
    def destination(self) -> str:
        """Destination endpoint (domain)."""
        return self.summary.destination


def detection_case_to_beaconing_case(case: DetectionCase) -> BeaconingCase:
    """Bridge the MapReduce record to the filtering-layer case type.

    The two types carry the same fields; this is the one sanctioned
    crossing point between the job layer's picklable records and the
    filtering layer's :class:`~repro.filtering.case.BeaconingCase`.
    """
    return BeaconingCase(
        summary=case.summary,
        detection=case.detection,
        popularity=case.popularity,
        similar_sources=case.similar_sources,
        lm_score=case.lm_score,
        rank_score=case.rank_score,
    )
