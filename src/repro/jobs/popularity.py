"""Destination-popularity MapReduce job (paper Section VII-C).

MAP: each pair summary yields ``(destination, source)``.

REDUCE: the distinct sources contacting each destination are counted;
the caller divides by the total population to obtain the popularity
ratio feeding the local whitelist.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Tuple

from repro.core.timeseries import ActivitySummary
from repro.mapreduce.job import KeyValue, MapReduceJob


class DestinationPopularityJob(MapReduceJob):
    """Pair summaries -> (destination, distinct-source count)."""

    def __init__(self, *, n_partitions: int = 32) -> None:
        self.n_partitions = n_partitions

    def map(self, key: Any, value: ActivitySummary) -> Iterator[KeyValue]:
        """``((s, d), AS) -> (d, s)``."""
        yield value.destination, value.source

    def reduce(self, key: str, values: Iterable[str]) -> Iterator[KeyValue]:
        """Count distinct sources per destination."""
        yield key, len(set(values))


def popularity_table(
    counts: List[Tuple[str, int]], population: int
) -> Dict[str, float]:
    """Turn reduce output into destination -> popularity ratio."""
    if population <= 0:
        return {destination: 0.0 for destination, _count in counts}
    return {destination: count / population for destination, count in counts}
