"""Shard checkpoints for fault-tolerant batch runs.

The paper's Hadoop deployment survives multi-hour batches because every
task's output is durable: a re-submitted job re-runs only the work that
was lost.  :class:`CheckpointStore` gives the local MapReduce runner the
same property — the expensive detection phase is processed in bounded
shards, each completed shard's output is persisted as one JSONL file
(atomically: written to a temp file, then renamed), and an interrupted
run restarted with ``resume=True`` re-runs only the shards whose files
are missing.

Layout of a checkpoint directory::

    manifest.json          run fingerprint, shard size, shard count
    shard-00007.jsonl      one line per detected case / quarantined unit
    quarantine.jsonl       consolidated quarantine report of the last run
    threshold-cache.json   warm permutation-threshold buckets (optional)
    incremental-state.bin  warm sliding-DFT spectral states (optional)

The manifest fingerprint covers the survivor pair list and the pipeline
configuration, so a checkpoint can never be resumed against different
inputs or settings — mismatches raise instead of silently mixing runs.
All records are plain JSON (no pickle) so operators can inspect a
checkpoint with standard tools.
"""

from __future__ import annotations

import base64
import hashlib
import json
import math
import os
from pathlib import Path

import numpy as np
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.detector import CandidatePeriod, DetectionResult
from repro.core.gmm import GaussianComponent, GaussianMixture
from repro.core.timeseries import ActivitySummary
from repro.jobs.records import DetectionCase
from repro.mapreduce.engine import QuarantinedTask
from repro.obs.provenance import (
    PROVENANCE_FILE,
    VerdictRecord,
    records_from_jsonl,
    records_to_jsonl,
)

MANIFEST_FILE = "manifest.json"
QUARANTINE_FILE = "quarantine.jsonl"
THRESHOLD_CACHE_FILE = "threshold-cache.json"
INCREMENTAL_STATE_FILE = "incremental-state.bin"
CHECKPOINT_VERSION = 1


# -- JSON codecs -------------------------------------------------------------


def _finite(value: float) -> Optional[float]:
    """NaN/inf are not valid JSON; encode them as null."""
    return float(value) if math.isfinite(value) else None


def _unfinite(value: Optional[float]) -> float:
    return float("nan") if value is None else float(value)


def summary_to_dict(summary: ActivitySummary) -> Dict[str, Any]:
    """JSON-encodable form of an :class:`ActivitySummary`.

    Intervals are packed as base64 little-endian ``f8`` rather than a
    JSON float list: bit-exact by construction (no text round-trip),
    ~2.5x smaller on disk, and much cheaper to parse back — interval
    arrays dominate shard size for chatty pairs.
    """
    intervals = np.asarray(summary.intervals, dtype="<f8")
    return {
        "source": summary.source,
        "destination": summary.destination,
        "time_scale": summary.time_scale,
        "first_timestamp": summary.first_timestamp,
        "intervals_f8": base64.b64encode(intervals.tobytes()).decode("ascii"),
        "urls": list(summary.urls),
    }


def summary_from_dict(payload: Dict[str, Any]) -> ActivitySummary:
    """Inverse of :func:`summary_to_dict`.

    Accepts both encodings: packed ``intervals_f8`` and the legacy
    ``intervals`` float list, so checkpoints written before the packed
    codec resume unchanged.
    """
    if "intervals_f8" in payload:
        intervals: Any = np.frombuffer(
            base64.b64decode(payload["intervals_f8"]), dtype="<f8"
        )
    else:
        intervals = tuple(payload["intervals"])
    return ActivitySummary(
        source=payload["source"],
        destination=payload["destination"],
        time_scale=payload["time_scale"],
        first_timestamp=payload["first_timestamp"],
        intervals=intervals,
        urls=tuple(payload["urls"]),
    )


def _mixture_to_dict(mixture: Optional[GaussianMixture]) -> Optional[Dict[str, Any]]:
    if mixture is None:
        return None
    return {
        "components": [
            {"mean": c.mean, "variance": c.variance, "weight": c.weight}
            for c in mixture.components
        ],
        "log_likelihood": mixture.log_likelihood,
        "bic": mixture.bic,
        "n_samples": mixture.n_samples,
        "converged": mixture.converged,
    }


def _mixture_from_dict(
    payload: Optional[Dict[str, Any]]
) -> Optional[GaussianMixture]:
    if payload is None:
        return None
    return GaussianMixture(
        components=tuple(
            GaussianComponent(
                mean=c["mean"], variance=c["variance"], weight=c["weight"]
            )
            for c in payload["components"]
        ),
        log_likelihood=payload["log_likelihood"],
        bic=payload["bic"],
        n_samples=payload["n_samples"],
        converged=payload["converged"],
    )


def detection_to_dict(result: DetectionResult) -> Dict[str, Any]:
    """JSON-encodable form of a :class:`DetectionResult`."""
    return {
        "periodic": result.periodic,
        "candidates": [
            {
                "period": c.period,
                "frequency": c.frequency,
                "power": c.power,
                "acf_score": c.acf_score,
                "p_value": c.p_value,
                "origin": c.origin,
                "time_scale": c.time_scale,
            }
            for c in result.candidates
        ],
        "power_threshold": _finite(result.power_threshold),
        "n_events": result.n_events,
        "duration": result.duration,
        "time_scale": result.time_scale,
        "scales": list(result.scales),
        "mixture": _mixture_to_dict(result.mixture),
        "rejection_reason": result.rejection_reason,
        "rejection_code": result.rejection_code,
        "n_candidates_raw": result.n_candidates_raw,
        "n_candidates_pruned": result.n_candidates_pruned,
        "spectral_margin": _finite(result.spectral_margin),
    }


def detection_from_dict(payload: Dict[str, Any]) -> DetectionResult:
    """Inverse of :func:`detection_to_dict`."""
    return DetectionResult(
        periodic=payload["periodic"],
        candidates=tuple(
            CandidatePeriod(**candidate) for candidate in payload["candidates"]
        ),
        power_threshold=_unfinite(payload["power_threshold"]),
        n_events=payload["n_events"],
        duration=payload["duration"],
        time_scale=payload["time_scale"],
        scales=tuple(payload["scales"]),
        mixture=_mixture_from_dict(payload["mixture"]),
        rejection_reason=payload["rejection_reason"],
        # .get() defaults keep checkpoints from before the provenance
        # fields readable.
        rejection_code=payload.get("rejection_code", ""),
        n_candidates_raw=payload.get("n_candidates_raw", 0),
        n_candidates_pruned=payload.get("n_candidates_pruned", 0),
        spectral_margin=_unfinite(payload.get("spectral_margin")),
    )


def case_to_dict(case: DetectionCase) -> Dict[str, Any]:
    """JSON-encodable form of a :class:`DetectionCase`."""
    return {
        "summary": summary_to_dict(case.summary),
        "detection": detection_to_dict(case.detection),
        "popularity": case.popularity,
        "similar_sources": case.similar_sources,
        "lm_score": case.lm_score,
        "rank_score": case.rank_score,
    }


def case_from_dict(payload: Dict[str, Any]) -> DetectionCase:
    """Inverse of :func:`case_to_dict`."""
    return DetectionCase(
        summary=summary_from_dict(payload["summary"]),
        detection=detection_from_dict(payload["detection"]),
        popularity=payload["popularity"],
        similar_sources=payload["similar_sources"],
        lm_score=payload["lm_score"],
        rank_score=payload["rank_score"],
    )


def quarantine_to_dict(entry: QuarantinedTask) -> Dict[str, Any]:
    """JSON-encodable form of a :class:`QuarantinedTask`.

    Keys are usually (source, destination) tuples; tuples round-trip as
    lists and are restored on read.
    """
    key: Any = entry.key
    if isinstance(key, tuple):
        key = list(key)
    elif not isinstance(key, (str, int, float, bool, type(None), list)):
        key = repr(key)
    return {
        "phase": entry.phase,
        "key": key,
        "error": entry.error,
        "attempts": entry.attempts,
    }


def quarantine_from_dict(payload: Dict[str, Any]) -> QuarantinedTask:
    """Inverse of :func:`quarantine_to_dict`."""
    key = payload["key"]
    if isinstance(key, list):
        key = tuple(key)
    return QuarantinedTask(
        phase=payload["phase"],
        key=key,
        error=payload["error"],
        attempts=payload["attempts"],
    )


def run_fingerprint(
    pairs: Iterable[Tuple[str, str]], *, config_repr: str, shard_size: int
) -> str:
    """Stable identity of one batch: its survivor pairs + settings.

    A checkpoint resumed under a different input set, pipeline
    configuration, or shard size would silently produce a frankenstein
    report; the fingerprint makes that a hard error instead.
    """
    digest = hashlib.sha256()
    digest.update(f"v{CHECKPOINT_VERSION};shard_size={shard_size};".encode())
    digest.update(config_repr.encode("utf-8", "replace"))
    for source, destination in pairs:
        digest.update(f"\x00{source}\x01{destination}".encode("utf-8", "replace"))
    return digest.hexdigest()


# -- the store ---------------------------------------------------------------


class CheckpointStore:
    """Durable per-shard outputs of one sharded batch run."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths -------------------------------------------------------------

    def _shard_path(self, index: int) -> Path:
        return self.root / f"shard-{index:05d}.jsonl"

    def _provenance_shard_path(self, index: int) -> Path:
        return self.root / f"provenance-{index:05d}.jsonl"

    @property
    def provenance_path(self) -> Path:
        """The merged provenance store the runner writes at run end."""
        return self.root / PROVENANCE_FILE

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_FILE

    @property
    def quarantine_path(self) -> Path:
        return self.root / QUARANTINE_FILE

    @property
    def threshold_cache_path(self) -> Path:
        """Where the warm threshold-cache buckets persist (see
        :meth:`repro.core.permutation.ThresholdCache.save`)."""
        return self.root / THRESHOLD_CACHE_FILE

    @property
    def incremental_state_path(self) -> Path:
        """Where the warm sliding-DFT spectral states persist (see
        :meth:`repro.core.incremental.IncrementalStateCache.save`)."""
        return self.root / INCREMENTAL_STATE_FILE

    # -- manifest ----------------------------------------------------------

    def manifest(self) -> Optional[Dict[str, Any]]:
        """The stored manifest, or None when the directory is fresh."""
        if not self.manifest_path.exists():
            return None
        return json.loads(self.manifest_path.read_text(encoding="utf-8"))

    def begin(
        self,
        fingerprint: str,
        *,
        n_shards: int,
        shard_size: int,
        resume: bool,
    ) -> None:
        """Open the checkpoint for one run.

        ``resume=False`` starts fresh: any previous shards are cleared.
        ``resume=True`` keeps shards whose manifest fingerprint matches
        and raises :class:`CheckpointMismatch` otherwise — resuming
        against different inputs or settings must never mix outputs.
        """
        existing = self.manifest()
        if resume and existing is not None:
            if existing.get("fingerprint") != fingerprint:
                raise CheckpointMismatch(
                    f"checkpoint at {self.root} was written by a different "
                    f"run (inputs, configuration, or shard size changed); "
                    f"refusing to resume"
                )
        elif not resume:
            self.clear()
        manifest = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "n_shards": n_shards,
            "shard_size": shard_size,
        }
        self._write_atomic(self.manifest_path, json.dumps(manifest, indent=2))

    # -- shards ------------------------------------------------------------

    def has_shard(self, index: int) -> bool:
        """True when shard ``index`` completed in a previous run.

        Only fully written shards count: interrupted writes live in
        ``*.tmp`` files that the atomic rename never promoted.
        """
        return self._shard_path(index).exists()

    def completed_shards(self) -> List[int]:
        """Indices of all completed shards, ascending."""
        out = []
        for path in sorted(self.root.glob("shard-*.jsonl")):
            try:
                out.append(int(path.stem.split("-")[1]))
            except (IndexError, ValueError):
                continue
        return out

    def progress(self) -> Dict[str, Any]:
        """Ground-truth run progress from the durable files alone.

        The event journal is the live view of a run; this is the
        durable one — derived purely from the manifest and the shard
        files on disk, so it is what ``/status`` consumers cross-check
        the journal's shard counts against (the two agree exactly for
        any run that was not killed mid-shard-write, and the atomic
        shard rename guarantees no partial shard ever counts).
        """
        manifest = self.manifest()
        completed = self.completed_shards()
        total = int(manifest["n_shards"]) if manifest else 0
        return {
            "n_shards": total,
            "completed": completed,
            "done": len(completed),
            "remaining": max(0, total - len(completed)),
            "fingerprint": manifest.get("fingerprint") if manifest else None,
        }

    def write_shard(
        self,
        index: int,
        cases: Sequence[DetectionCase],
        quarantined: Sequence[QuarantinedTask] = (),
    ) -> Path:
        """Persist one completed shard (atomic: tmp file + rename)."""
        lines = [
            json.dumps({"type": "case", **case_to_dict(case)})
            for case in cases
        ]
        lines.extend(
            json.dumps({"type": "quarantine", **quarantine_to_dict(entry)})
            for entry in quarantined
        )
        path = self._shard_path(index)
        self._write_atomic(path, "\n".join(lines) + "\n" if lines else "")
        return path

    def read_shard(
        self, index: int
    ) -> Tuple[List[DetectionCase], List[QuarantinedTask]]:
        """Load one completed shard's cases and quarantine entries."""
        path = self._shard_path(index)
        cases: List[DetectionCase] = []
        quarantined: List[QuarantinedTask] = []
        for line in path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            payload = json.loads(line)
            kind = payload.pop("type")
            if kind == "case":
                cases.append(case_from_dict(payload))
            elif kind == "quarantine":
                quarantined.append(quarantine_from_dict(payload))
            else:
                raise ValueError(
                    f"unknown record type {kind!r} in {path}"
                )
        return cases, quarantined

    # -- provenance --------------------------------------------------------

    def write_provenance_shard(
        self, index: int, records: Sequence[VerdictRecord]
    ) -> Path:
        """Persist one shard's verdict records (atomic: tmp + rename).

        Written *before* :meth:`write_shard` — the shard file is the
        commit point, so a completed shard always has its provenance on
        disk and a resumed run never recomputes (or duplicates) verdict
        records.
        """
        path = self._provenance_shard_path(index)
        self._write_atomic(path, records_to_jsonl(records))
        return path

    def has_provenance_shard(self, index: int) -> bool:
        """True when shard ``index`` has its provenance sidecar on disk."""
        return self._provenance_shard_path(index).exists()

    def read_provenance_shard(self, index: int) -> List[VerdictRecord]:
        """Load one shard's verdict records ([] when the file is absent)."""
        path = self._provenance_shard_path(index)
        if not path.exists():
            return []
        return records_from_jsonl(path.read_text(encoding="utf-8"))

    # -- quarantine report -------------------------------------------------

    def write_quarantine(self, entries: Sequence[QuarantinedTask]) -> Path:
        """Write the consolidated quarantine report of a finished run."""
        lines = [
            json.dumps(quarantine_to_dict(entry)) for entry in entries
        ]
        self._write_atomic(
            self.quarantine_path, "\n".join(lines) + "\n" if lines else ""
        )
        return self.quarantine_path

    def read_quarantine(self) -> List[QuarantinedTask]:
        """Load the consolidated quarantine report (empty when absent)."""
        if not self.quarantine_path.exists():
            return []
        return [
            quarantine_from_dict(json.loads(line))
            for line in self.quarantine_path.read_text(
                encoding="utf-8"
            ).splitlines()
            if line.strip()
        ]

    # -- housekeeping ------------------------------------------------------

    def clear(self) -> None:
        """Remove every shard, the manifest, and the quarantine report."""
        for path in self.root.glob("shard-*.jsonl"):
            path.unlink()
        for path in self.root.glob("provenance-*.jsonl"):
            path.unlink()
        for path in self.root.glob("*.tmp"):
            path.unlink()
        for path in (
            self.manifest_path,
            self.quarantine_path,
            self.threshold_cache_path,
            self.provenance_path,
        ):
            if path.exists():
                path.unlink()

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        """A SIGKILL mid-write must never leave a half shard behind."""
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)


class CheckpointMismatch(ValueError):
    """Resume attempted against a checkpoint from a different run."""
