"""End-to-end MapReduce orchestration of the BAYWATCH phases.

:class:`BaywatchRunner` chains the Section VII jobs — data extraction,
(optional) rescale/merge, destination popularity, beaconing detection,
and ranking — over a :class:`~repro.mapreduce.MapReduceEngine`, so the
whole methodology runs with the same modular data flow as the paper's
Hadoop deployment, serially or across worker processes.

It produces the same :class:`~repro.filtering.pipeline.PipelineReport`
as the in-process :class:`~repro.filtering.BaywatchPipeline`, so both
front ends are interchangeable for analysis and benchmarking.
"""

from __future__ import annotations

import logging
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.timeseries import ActivitySummary
from repro.filtering.case import BeaconingCase
from repro.filtering.novelty import NoveltyStore
from repro.filtering.pipeline import FunnelStats, PipelineConfig, PipelineReport
from repro.filtering.tokens import TokenFilter
from repro.filtering.whitelist import GlobalWhitelist
from repro.jobs.detection import BeaconingDetectionJob
from repro.jobs.extraction import DataExtractionJob
from repro.jobs.popularity import DestinationPopularityJob, popularity_table
from repro.jobs.ranking_job import RankingJob, _to_case
from repro.jobs.rescaling import RescaleMergeJob
from repro.jobs.records import DetectionCase
from repro.lm.domains import DomainScorer, default_scorer
from repro.mapreduce.engine import MapReduceEngine
from repro.obs import get_registry, span
from repro.synthetic.logs import ProxyLogRecord

logger = logging.getLogger(__name__)


class BaywatchRunner:
    """The MapReduce-backed front end of the 8-step methodology."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        *,
        engine: Optional[MapReduceEngine] = None,
        global_whitelist: Optional[GlobalWhitelist] = None,
        novelty: Optional[NoveltyStore] = None,
        token_filter: Optional[TokenFilter] = None,
        scorer: Optional[DomainScorer] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.engine = engine or MapReduceEngine()
        self.global_whitelist = (
            global_whitelist if global_whitelist is not None else GlobalWhitelist()
        )
        self.novelty = novelty if novelty is not None else NoveltyStore()
        self.token_filter = token_filter if token_filter is not None else TokenFilter()
        self._scorer = scorer

    @property
    def scorer(self) -> DomainScorer:
        """The domain LM scorer (built lazily)."""
        if self._scorer is None:
            self._scorer = default_scorer()
        return self._scorer

    # -- phases ------------------------------------------------------------

    def extract(
        self, records: Iterable[ProxyLogRecord]
    ) -> List[ActivitySummary]:
        """Phase A: raw records -> per-pair ActivitySummaries."""
        with span("extract"):
            job = DataExtractionJob(time_scale=self.config.time_scale)
            output = self.engine.run(job, enumerate(records))
            return [summary for _pair, summary in output]

    def rescale_merge(
        self, summaries: Iterable[ActivitySummary], new_time_scale: float
    ) -> List[ActivitySummary]:
        """Phase B: rescale to a coarser granularity and merge windows."""
        with span("rescale_merge"):
            job = RescaleMergeJob(new_time_scale)
            output = self.engine.run(
                job, [(summary.pair, summary) for summary in summaries]
            )
            return [summary for _pair, summary in output]

    def popularity(
        self, summaries: List[ActivitySummary]
    ) -> Tuple[Dict[str, float], Dict[str, int], int]:
        """Phase C: destination popularity ratios and source counts."""
        with span("popularity"):
            job = DestinationPopularityJob()
            counts = self.engine.run(
                job, [(summary.pair, summary) for summary in summaries]
            )
            population = len({summary.source for summary in summaries})
            ratios = popularity_table(counts, population)
            return ratios, dict(counts), population

    def detect(
        self,
        summaries: List[ActivitySummary],
        skip_destinations: frozenset,
    ) -> List[DetectionCase]:
        """Phase D: periodicity detection over non-whitelisted pairs."""
        with span("detect"):
            job = BeaconingDetectionJob(
                self.config.detector,
                skip_destinations=skip_destinations,
                min_events=self.config.min_events,
                use_threshold_cache=self.config.use_threshold_cache,
            )
            output = self.engine.run(
                job, [(summary.pair, summary) for summary in summaries]
            )
            return [case for _pair, case in output]

    def rank(
        self,
        cases: List[DetectionCase],
        popularity: Dict[str, float],
        similar_sources: Dict[str, int],
    ) -> List[DetectionCase]:
        """Phase E: token/novelty filtering, scoring, global ranking."""
        with span("rank"):
            lm_scores = {
                destination: self.scorer.normalized_score(destination)
                for destination in {case.summary.destination for case in cases}
            }
            job = RankingJob(
                popularity=popularity,
                similar_sources=similar_sources,
                lm_scores=lm_scores,
                reported_destinations=frozenset(self.novelty.reported_destinations),
                token_filter=self.token_filter,
                weights=self.config.ranking_weights,
                percentile=self.config.ranking_percentile,
            )
            output = self.engine.run(job, [(case.pair, case) for case in cases])
            ranked = [
                case for _rank, case in sorted(output, key=lambda kv: kv[0])
            ]
            for case in ranked:
                self.novelty.record(
                    case.summary.source, case.summary.destination
                )
            return ranked

    # -- end to end ----------------------------------------------------------

    def run(
        self,
        records: Iterable[ProxyLogRecord],
        *,
        analysis_time_scale: Optional[float] = None,
    ) -> PipelineReport:
        """Run all phases; optionally rescale before detection."""
        with span("runner"):
            return self._run(records, analysis_time_scale=analysis_time_scale)

    def _run(
        self,
        records: Iterable[ProxyLogRecord],
        *,
        analysis_time_scale: Optional[float] = None,
    ) -> PipelineReport:
        registry = get_registry()
        registry.counter("runner.runs").inc()
        funnel = FunnelStats()
        summaries = self.extract(records)
        if analysis_time_scale is not None:
            summaries = self.rescale_merge(summaries, analysis_time_scale)
        ratios, counts, population = self.popularity(summaries)
        registry.gauge("runner.population_size").set(population)

        n_in = len(summaries)
        not_global = [
            s for s in summaries if s.destination not in self.global_whitelist
        ]
        funnel.record("1 global whitelist", n_in, len(not_global))

        threshold = self.config.local_whitelist_threshold
        local_whitelisted = frozenset(
            destination
            for destination, ratio in ratios.items()
            if ratio > threshold and counts.get(destination, 0) >= 3
        )
        survivors = [
            s for s in not_global if s.destination not in local_whitelisted
        ]
        funnel.record("2 local whitelist", len(not_global), len(survivors))

        detected = self.detect(survivors, frozenset())
        funnel.record("3-5 periodicity detection", len(survivors), len(detected))

        enriched = detected
        ranked = self.rank(enriched, ratios, counts)
        funnel.record("6-8 token/novelty/ranking", len(detected), len(ranked))

        def bridge(case: DetectionCase) -> BeaconingCase:
            out = _to_case(case)
            if out.popularity == 0.0:
                out = BeaconingCase(
                    summary=out.summary,
                    detection=out.detection,
                    popularity=ratios.get(out.destination, 0.0),
                    similar_sources=counts.get(out.destination, 1),
                    lm_score=out.lm_score,
                    rank_score=out.rank_score,
                )
            return out

        logger.info(
            "runner run: %d pairs in, %d periodic, %d reported "
            "(population %d)",
            len(summaries), len(detected), len(ranked), population,
        )
        return PipelineReport(
            ranked_cases=[_to_case(case) for case in ranked],
            detected_cases=[bridge(case) for case in detected],
            funnel=funnel,
            population_size=population,
        )
