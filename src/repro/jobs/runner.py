"""End-to-end MapReduce orchestration of the BAYWATCH phases.

:class:`BaywatchRunner` chains the Section VII jobs — data extraction,
(optional) rescale/merge, destination popularity, beaconing detection,
and ranking — over a :class:`~repro.mapreduce.MapReduceEngine`, so the
whole methodology runs with the same modular data flow as the paper's
Hadoop deployment, serially or across worker processes.

It produces the same :class:`~repro.filtering.pipeline.PipelineReport`
as the in-process :class:`~repro.filtering.BaywatchPipeline`, so both
front ends are interchangeable for analysis and benchmarking.

For production-sized batches, :meth:`BaywatchRunner.run_sharded`
processes the expensive detection phase in bounded shards with durable
JSONL checkpoints (see :mod:`repro.jobs.checkpoint`): an interrupted
run restarted with ``resume=True`` re-runs only the incomplete shards,
and — with a quarantine-enabled engine — poison-pill pairs end up in
the report's quarantine list instead of aborting the batch.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.timeseries import ActivitySummary
from repro.filtering.case import BeaconingCase
from repro.filtering.novelty import NoveltyStore
from repro.filtering.pipeline import FunnelStats, PipelineConfig, PipelineReport
from repro.filtering.tokens import TokenFilter
from repro.filtering.whitelist import GlobalWhitelist
from repro.jobs.checkpoint import CheckpointStore, run_fingerprint
from repro.jobs.detection import BeaconingDetectionJob
from repro.jobs.extraction import DataExtractionJob
from repro.jobs.popularity import DestinationPopularityJob, popularity_table
from repro.jobs.ranking_job import RankingJob, _to_case
from repro.jobs.rescaling import RescaleMergeJob
from repro.jobs.records import DetectionCase
from repro.lm.domains import DomainScorer, default_scorer
from repro.mapreduce.engine import MapReduceEngine, QuarantinedTask
from repro.obs import get_registry, span
from repro.synthetic.logs import ProxyLogRecord

logger = logging.getLogger(__name__)


class IncompleteRunError(RuntimeError):
    """A sharded run stopped before every shard completed.

    Raised when ``max_shards`` bounds how much work one invocation may
    do; the completed shards are checkpointed, so re-invoking with
    ``resume=True`` continues from here.
    """

    def __init__(self, completed: int, total: int) -> None:
        super().__init__(
            f"processed shard budget exhausted: {completed} of {total} "
            f"shards complete; re-run with resume=True to continue"
        )
        self.completed = completed
        self.total = total


class BaywatchRunner:
    """The MapReduce-backed front end of the 8-step methodology."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        *,
        engine: Optional[MapReduceEngine] = None,
        global_whitelist: Optional[GlobalWhitelist] = None,
        novelty: Optional[NoveltyStore] = None,
        token_filter: Optional[TokenFilter] = None,
        scorer: Optional[DomainScorer] = None,
        detection_job_factory: Optional[Callable[..., BeaconingDetectionJob]] = None,
    ) -> None:
        """``detection_job_factory`` (optional) builds the detection job
        from the same keyword arguments as
        :class:`~repro.jobs.detection.BeaconingDetectionJob` — the seam
        fault-injection tests and custom deployments hook into."""
        self.config = config or PipelineConfig()
        self.engine = engine or MapReduceEngine()
        self.global_whitelist = (
            global_whitelist if global_whitelist is not None else GlobalWhitelist()
        )
        self.novelty = novelty if novelty is not None else NoveltyStore()
        self.token_filter = token_filter if token_filter is not None else TokenFilter()
        self._scorer = scorer
        self.detection_job_factory = (
            detection_job_factory
            if detection_job_factory is not None
            else BeaconingDetectionJob
        )

    @property
    def scorer(self) -> DomainScorer:
        """The domain LM scorer (built lazily)."""
        if self._scorer is None:
            self._scorer = default_scorer()
        return self._scorer

    # -- phases ------------------------------------------------------------

    def extract(
        self, records: Iterable[ProxyLogRecord]
    ) -> List[ActivitySummary]:
        """Phase A: raw records -> per-pair ActivitySummaries."""
        with span("extract"):
            job = DataExtractionJob(time_scale=self.config.time_scale)
            output = self.engine.run(job, enumerate(records))
            return [summary for _pair, summary in output]

    def rescale_merge(
        self, summaries: Iterable[ActivitySummary], new_time_scale: float
    ) -> List[ActivitySummary]:
        """Phase B: rescale to a coarser granularity and merge windows."""
        with span("rescale_merge"):
            job = RescaleMergeJob(new_time_scale)
            output = self.engine.run(
                job, [(summary.pair, summary) for summary in summaries]
            )
            return [summary for _pair, summary in output]

    def popularity(
        self, summaries: List[ActivitySummary]
    ) -> Tuple[Dict[str, float], Dict[str, int], int]:
        """Phase C: destination popularity ratios and source counts."""
        with span("popularity"):
            job = DestinationPopularityJob()
            counts = self.engine.run(
                job, [(summary.pair, summary) for summary in summaries]
            )
            population = len({summary.source for summary in summaries})
            ratios = popularity_table(counts, population)
            return ratios, dict(counts), population

    def detect(
        self,
        summaries: List[ActivitySummary],
        skip_destinations: frozenset,
    ) -> List[DetectionCase]:
        """Phase D: periodicity detection over non-whitelisted pairs."""
        with span("detect"):
            job = self.detection_job_factory(
                self.config.detector,
                skip_destinations=skip_destinations,
                min_events=self.config.min_events,
                use_threshold_cache=self.config.use_threshold_cache,
            )
            output = self.engine.run(
                job, [(summary.pair, summary) for summary in summaries]
            )
            return [case for _pair, case in output]

    def rank(
        self,
        cases: List[DetectionCase],
        popularity: Dict[str, float],
        similar_sources: Dict[str, int],
    ) -> List[DetectionCase]:
        """Phase E: token/novelty filtering, scoring, global ranking."""
        with span("rank"):
            lm_scores = {
                destination: self.scorer.normalized_score(destination)
                for destination in {case.summary.destination for case in cases}
            }
            job = RankingJob(
                popularity=popularity,
                similar_sources=similar_sources,
                lm_scores=lm_scores,
                reported_destinations=frozenset(self.novelty.reported_destinations),
                token_filter=self.token_filter,
                weights=self.config.ranking_weights,
                percentile=self.config.ranking_percentile,
            )
            output = self.engine.run(job, [(case.pair, case) for case in cases])
            ranked = [
                case for _rank, case in sorted(output, key=lambda kv: kv[0])
            ]
            for case in ranked:
                self.novelty.record(
                    case.summary.source, case.summary.destination
                )
            return ranked

    # -- end to end ----------------------------------------------------------

    def run(
        self,
        records: Iterable[ProxyLogRecord],
        *,
        analysis_time_scale: Optional[float] = None,
    ) -> PipelineReport:
        """Run all phases; optionally rescale before detection."""
        with span("runner"):
            return self._run(records, analysis_time_scale=analysis_time_scale)

    def _run(
        self,
        records: Iterable[ProxyLogRecord],
        *,
        analysis_time_scale: Optional[float] = None,
    ) -> PipelineReport:
        registry = get_registry()
        registry.counter("runner.runs").inc()
        funnel = FunnelStats()
        summaries = self.extract(records)
        if analysis_time_scale is not None:
            summaries = self.rescale_merge(summaries, analysis_time_scale)
        ratios, counts, population = self.popularity(summaries)
        registry.gauge("runner.population_size").set(population)

        survivors = self._whitelist_survivors(summaries, ratios, counts, funnel)
        detected = self.detect(survivors, frozenset())
        funnel.record("3-5 periodicity detection", len(survivors), len(detected))

        return self._assemble_report(
            summaries, detected, funnel, ratios, counts, population
        )

    # -- shared run plumbing -------------------------------------------------

    def _whitelist_survivors(
        self,
        summaries: List[ActivitySummary],
        ratios: Dict[str, float],
        counts: Dict[str, int],
        funnel: FunnelStats,
    ) -> List[ActivitySummary]:
        """Steps 1-2: global and local (popularity) whitelists."""
        n_in = len(summaries)
        not_global = [
            s for s in summaries if s.destination not in self.global_whitelist
        ]
        funnel.record("1 global whitelist", n_in, len(not_global))

        threshold = self.config.local_whitelist_threshold
        local_whitelisted = frozenset(
            destination
            for destination, ratio in ratios.items()
            if ratio > threshold and counts.get(destination, 0) >= 3
        )
        survivors = [
            s for s in not_global if s.destination not in local_whitelisted
        ]
        funnel.record("2 local whitelist", len(not_global), len(survivors))
        return survivors

    def _assemble_report(
        self,
        summaries: List[ActivitySummary],
        detected: List[DetectionCase],
        funnel: FunnelStats,
        ratios: Dict[str, float],
        counts: Dict[str, int],
        population: int,
        quarantined: Sequence[QuarantinedTask] = (),
    ) -> PipelineReport:
        """Steps 6-8 plus report assembly (shared by both run modes)."""
        ranked = self.rank(detected, ratios, counts)
        funnel.record("6-8 token/novelty/ranking", len(detected), len(ranked))

        def bridge(case: DetectionCase) -> BeaconingCase:
            out = _to_case(case)
            if out.popularity == 0.0:
                out = BeaconingCase(
                    summary=out.summary,
                    detection=out.detection,
                    popularity=ratios.get(out.destination, 0.0),
                    similar_sources=counts.get(out.destination, 1),
                    lm_score=out.lm_score,
                    rank_score=out.rank_score,
                )
            return out

        logger.info(
            "runner run: %d pairs in, %d periodic, %d reported, "
            "%d quarantined (population %d)",
            len(summaries), len(detected), len(ranked), len(quarantined),
            population,
        )
        return PipelineReport(
            ranked_cases=[_to_case(case) for case in ranked],
            detected_cases=[bridge(case) for case in detected],
            funnel=funnel,
            population_size=population,
            quarantined=list(quarantined),
        )

    # -- sharded, checkpointed execution -------------------------------------

    def run_sharded(
        self,
        records: Iterable[ProxyLogRecord],
        *,
        analysis_time_scale: Optional[float] = None,
        shard_size: int = 256,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        max_shards: Optional[int] = None,
        on_shard_complete: Optional[Callable[[int, int], None]] = None,
    ) -> PipelineReport:
        """Run all phases with the detection phase sharded.

        See :meth:`run_summaries_sharded` for the sharding, checkpoint,
        and resume semantics; extraction and rescaling run up front
        (they are cheap and deterministic, so a resumed run simply
        recomputes them from the same input).
        """
        with span("runner.sharded"):
            summaries = self.extract(records)
            if analysis_time_scale is not None:
                summaries = self.rescale_merge(summaries, analysis_time_scale)
            return self.run_summaries_sharded(
                summaries,
                shard_size=shard_size,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                max_shards=max_shards,
                on_shard_complete=on_shard_complete,
            )

    def run_summaries_sharded(
        self,
        summaries: List[ActivitySummary],
        *,
        shard_size: int = 256,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        max_shards: Optional[int] = None,
        on_shard_complete: Optional[Callable[[int, int], None]] = None,
    ) -> PipelineReport:
        """Detection in bounded shards with durable checkpoints.

        Post-whitelist survivors are ordered deterministically by pair
        and cut into shards of ``shard_size``; each shard runs the
        detection job independently and — when ``checkpoint_dir`` is
        set — lands in one atomically written JSONL file.  A run
        restarted with ``resume=True`` loads completed shards from disk
        (counted in ``mapreduce.shards_resumed``) and re-runs only the
        missing ones, producing a report identical to an uninterrupted
        run.  Units the engine quarantined (poison-pill pairs) are
        carried in the report's ``quarantined`` list and in the
        checkpoint's ``quarantine.jsonl``.

        ``max_shards`` bounds how many *new* shards this invocation may
        process; when the budget runs out with work remaining,
        :class:`IncompleteRunError` is raised after checkpointing the
        finished shards (requires ``checkpoint_dir``).
        """
        if shard_size < 1:
            raise ValueError("shard_size must be at least 1")
        if max_shards is not None and checkpoint_dir is None:
            raise ValueError(
                "max_shards without checkpoint_dir would discard the "
                "completed shards"
            )
        registry = get_registry()
        registry.counter("runner.runs").inc()
        funnel = FunnelStats()
        ratios, counts, population = self.popularity(summaries)
        registry.gauge("runner.population_size").set(population)

        survivors = self._whitelist_survivors(summaries, ratios, counts, funnel)
        survivors = sorted(survivors, key=lambda s: s.pair)
        shards = [
            survivors[i : i + shard_size]
            for i in range(0, len(survivors), shard_size)
        ]
        n_shards = len(shards)
        registry.gauge("runner.shards_total").set(n_shards)

        store: Optional[CheckpointStore] = None
        if checkpoint_dir is not None:
            store = CheckpointStore(checkpoint_dir)
            fingerprint = run_fingerprint(
                (s.pair for s in survivors),
                config_repr=repr(self.config),
                shard_size=shard_size,
            )
            store.begin(
                fingerprint,
                n_shards=n_shards,
                shard_size=shard_size,
                resume=resume,
            )

        detected: List[DetectionCase] = []
        quarantined: List[QuarantinedTask] = []
        processed = 0
        resumed = 0
        with span("detect.sharded"):
            for index, shard in enumerate(shards):
                if store is not None and resume and store.has_shard(index):
                    cases, shard_quarantine = store.read_shard(index)
                    detected.extend(cases)
                    quarantined.extend(shard_quarantine)
                    resumed += 1
                    registry.counter("mapreduce.shards_resumed").inc()
                    continue
                if max_shards is not None and processed >= max_shards:
                    if store is not None:
                        store.write_quarantine(quarantined)
                    completed = resumed + processed
                    logger.warning(
                        "shard budget exhausted after %d new shards "
                        "(%d of %d complete)", processed, completed, n_shards,
                    )
                    raise IncompleteRunError(completed, n_shards)
                cases = self.detect(shard, frozenset())
                shard_quarantine = list(self.engine.last_quarantine)
                detected.extend(cases)
                quarantined.extend(shard_quarantine)
                if store is not None:
                    store.write_shard(index, cases, shard_quarantine)
                processed += 1
                if on_shard_complete is not None:
                    on_shard_complete(index, n_shards)
        funnel.record(
            "3-5 periodicity detection", len(survivors), len(detected)
        )
        if resumed:
            logger.info(
                "resumed %d of %d shards from checkpoint", resumed, n_shards
            )
        if store is not None:
            store.write_quarantine(quarantined)

        return self._assemble_report(
            summaries, detected, funnel, ratios, counts, population,
            quarantined=quarantined,
        )
