"""End-to-end MapReduce orchestration of the BAYWATCH phases.

:class:`BaywatchRunner` is the MapReduce-backed *front end* of the
8-step funnel: it runs the Section VII extraction/rescale/popularity
jobs over a :class:`~repro.mapreduce.MapReduceEngine`, then composes
the same :mod:`repro.stages` objects as the in-process
:class:`~repro.filtering.BaywatchPipeline` — only the
periodicity-detection *executor* differs (engine-backed here, sharded
and checkpointed in :meth:`BaywatchRunner.run_sharded`).  Both front
ends therefore produce the same
:class:`~repro.filtering.pipeline.PipelineReport`, funnel rows
included, and are interchangeable for analysis and benchmarking.

For production-sized batches, :meth:`BaywatchRunner.run_sharded`
processes the expensive detection phase in bounded shards with durable
JSONL checkpoints (see :mod:`repro.jobs.checkpoint`): an interrupted
run restarted with ``resume=True`` re-runs only the incomplete shards,
and — with a quarantine-enabled engine — poison-pill pairs end up in
the report's quarantine list instead of aborting the batch.
"""

from __future__ import annotations

import logging
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.detector import DetectionResult
from repro.core.permutation import ThresholdCache, ThresholdCacheMismatch
from repro.core.timeseries import ActivitySummary
from repro.filtering.novelty import NoveltyStore
from repro.filtering.pipeline import PipelineConfig, PipelineReport
from repro.filtering.tokens import TokenFilter
from repro.filtering.whitelist import GlobalWhitelist
from repro.jobs.checkpoint import CheckpointStore, run_fingerprint
from repro.jobs.detection import BeaconingDetectionJob
from repro.jobs.extraction import DataExtractionJob
from repro.jobs.popularity import DestinationPopularityJob, popularity_table
from repro.jobs.ranking_job import RankingJob
from repro.jobs.records import DetectionCase
from repro.jobs.rescaling import RescaleMergeJob
from repro.lm.domains import DomainScorer, default_scorer
from repro.mapreduce.engine import MapReduceEngine, QuarantinedTask
from repro.obs.provenance import (
    ProvenanceRecorder,
    VerdictRecord,
    write_provenance,
)
from repro.obs import (
    EventJournal,
    TraceContext,
    current_trace,
    get_registry,
    journal_emit,
    new_run_id,
    new_trace_id,
    scoped_journal,
    scoped_trace,
    span,
)
from repro.sources.proxy import ProxyLogRecord, records_to_summaries
from repro.stages import (
    GlobalWhitelistStage,
    LocalWhitelistStage,
    MinEventsStage,
    NoveltyStage,
    PeriodicityDetectionStage,
    PopularityIndex,
    RankingStage,
    StageContext,
    TokenFilterStage,
    build_report,
    run_stages,
)

logger = logging.getLogger(__name__)


class IncompleteRunError(RuntimeError):
    """A sharded run stopped before every shard completed.

    Raised when ``max_shards`` bounds how much work one invocation may
    do; the completed shards are checkpointed, so re-invoking with
    ``resume=True`` continues from here.
    """

    def __init__(self, completed: int, total: int) -> None:
        super().__init__(
            f"processed shard budget exhausted: {completed} of {total} "
            f"shards complete; re-run with resume=True to continue"
        )
        self.completed = completed
        self.total = total


def _detection_records(
    cases: List[DetectionCase], recorder: ProvenanceRecorder
) -> List[VerdictRecord]:
    """Steps 3-5 verdict records for every shipped detection result."""
    from repro.stages import detection_verdicts

    return [
        record
        for case in cases
        for record in detection_verdicts(
            case.source, case.destination, case.detection, recorder.policy
        )
    ]


def _absorb_detection_provenance(
    recorder: ProvenanceRecorder,
    summaries: List[ActivitySummary],
    records: List[VerdictRecord],
) -> None:
    """Fold worker-shipped detection verdicts into the recorder.

    Pairs the workers shipped no result for were non-periodic and
    outside the sampling policy — an in-process run would have closed
    and dropped those chains, so they are discarded here, keeping the
    final store identical across executors.
    """
    recorded = {record.pair for record in records}
    recorder.extend(records)
    for summary in summaries:
        if summary.pair not in recorded:
            recorder.discard(summary.source, summary.destination)


class _EngineDetection:
    """Detection executor running one detection job over the engine."""

    def __init__(self, runner: "BaywatchRunner") -> None:
        self._runner = runner

    def __call__(
        self, context: StageContext, summaries: List[ActivitySummary]
    ) -> Tuple[List[Tuple[ActivitySummary, DetectionResult]], List[Any]]:
        runner = self._runner
        recorder = context.provenance
        if recorder is None:
            cases = runner._detect_batch(summaries)
        else:
            cases = runner._detect_batch(
                summaries, provenance_pairs=recorder.required_pairs()
            )
            _absorb_detection_provenance(
                recorder, summaries, _detection_records(cases, recorder)
            )
            cases = [case for case in cases if case.detection.periodic]
        return (
            [(case.summary, case.detection) for case in cases],
            list(runner.engine.last_quarantine),
        )


class _ShardedDetection:
    """Detection executor running bounded shards with durable checkpoints.

    Implements the sharding loop of
    :meth:`BaywatchRunner.run_summaries_sharded`: deterministic pair
    ordering, per-shard engine runs, checkpoint write/read on resume,
    quarantine collection, and the ``max_shards`` budget (raising
    :class:`IncompleteRunError` after checkpointing what finished).
    """

    def __init__(
        self,
        runner: "BaywatchRunner",
        *,
        shard_size: int,
        checkpoint_dir: Optional[str],
        resume: bool,
        max_shards: Optional[int],
        on_shard_complete: Optional[Callable[[int, int], None]],
    ) -> None:
        self._runner = runner
        self.shard_size = shard_size
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.max_shards = max_shards
        self.on_shard_complete = on_shard_complete

    def __call__(
        self, context: StageContext, summaries: List[ActivitySummary]
    ) -> Tuple[List[Tuple[ActivitySummary, DetectionResult]], List[Any]]:
        runner = self._runner
        registry = get_registry()
        survivors = sorted(summaries, key=lambda s: s.pair)
        shards = [
            survivors[i : i + self.shard_size]
            for i in range(0, len(survivors), self.shard_size)
        ]
        n_shards = len(shards)
        registry.gauge("runner.shards_total").set(n_shards)
        journal_emit(
            "run_start",
            n_shards=n_shards,
            shard_size=self.shard_size,
            resume=self.resume,
        )
        if self.resume:
            # The journal is append-only across interrupt/resume cycles;
            # this marker separates the cycles in the stream.
            journal_emit("resumed")

        store: Optional[CheckpointStore] = None
        if self.checkpoint_dir is not None:
            store = CheckpointStore(self.checkpoint_dir)
            fingerprint = run_fingerprint(
                (s.pair for s in survivors),
                config_repr=repr(runner.config),
                shard_size=self.shard_size,
            )
            store.begin(
                fingerprint,
                n_shards=n_shards,
                shard_size=self.shard_size,
                resume=self.resume,
            )
            if self.resume:
                self._load_threshold_cache(store, registry)

        detected: List[DetectionCase] = []
        quarantined: List[QuarantinedTask] = []
        engine = runner.engine
        recorder = context.provenance
        # Near-miss chains must keep full records; computed once — stage
        # records do not change while the detection loop runs.
        required = (
            recorder.required_pairs() if recorder is not None else frozenset()
        )
        processed = 0
        resumed = 0
        for index, shard in enumerate(shards):
            resumable = (
                store is not None and self.resume and store.has_shard(index)
            )
            if resumable and recorder is not None \
                    and not store.has_provenance_shard(index):
                # A shard without its provenance sidecar (a checkpoint
                # from a crash between the two writes, or one that
                # predates provenance): the checkpointed cases are only
                # the periodic survivors, so dropped-pair verdicts are
                # unrecoverable from them — re-run the shard instead.
                resumable = False
            if resumable:
                cases, shard_quarantine = store.read_shard(index)
                if recorder is not None:
                    records = store.read_provenance_shard(index)
                    _absorb_detection_provenance(recorder, shard, records)
                detected.extend(cases)
                quarantined.extend(shard_quarantine)
                resumed += 1
                registry.counter("mapreduce.shards_resumed").inc()
                # Deliberately NOT shard_finish: the fold in
                # repro.obs.service counts a shard done on either event,
                # so resume never double-counts pairs or duplicates the
                # finish record of the run that actually computed it.
                journal_emit(
                    "shard_resumed",
                    shard=index,
                    pairs=len(shard),
                    detected=len(cases),
                )
                continue
            if self.max_shards is not None and processed >= self.max_shards:
                if store is not None:
                    store.write_quarantine(quarantined)
                completed = resumed + processed
                logger.warning(
                    "shard budget exhausted after %d new shards "
                    "(%d of %d complete)", processed, completed, n_shards,
                )
                raise IncompleteRunError(completed, n_shards)
            engine.set_run_context(run_id=engine.run_id, shard=index)
            journal_emit("shard_start", shard=index, pairs=len(shard))
            started = time.perf_counter()
            try:
                with span("shard"):
                    if recorder is None:
                        cases = runner._detect_batch(shard)
                    else:
                        cases = runner._detect_batch(
                            shard, provenance_pairs=required
                        )
            finally:
                engine.set_run_context(run_id=engine.run_id)
            shard_quarantine = list(engine.last_quarantine)
            shard_records: List[VerdictRecord] = []
            if recorder is not None:
                shard_records = _detection_records(cases, recorder)
                # Only periodic cases feed the funnel and the checkpoint;
                # the policy-shipped non-periodic results live on solely
                # as verdict records.
                cases = [case for case in cases if case.detection.periodic]
            detected.extend(cases)
            quarantined.extend(shard_quarantine)
            if store is not None:
                if recorder is not None:
                    # Before write_shard: the shard file is the commit
                    # point, so shard-on-disk implies provenance-on-disk
                    # and a resume never recomputes verdict records.
                    store.write_provenance_shard(index, shard_records)
                store.write_shard(index, cases, shard_quarantine)
                self._save_threshold_cache(store, registry)
            if recorder is not None:
                _absorb_detection_provenance(recorder, shard, shard_records)
            journal_emit(
                "shard_finish",
                shard=index,
                pairs=len(shard),
                detected=len(cases),
                quarantined=len(shard_quarantine) or None,
                seconds=round(time.perf_counter() - started, 6),
            )
            processed += 1
            if self.on_shard_complete is not None:
                self.on_shard_complete(index, n_shards)
        if resumed:
            logger.info(
                "resumed %d of %d shards from checkpoint", resumed, n_shards
            )
        if store is not None:
            store.write_quarantine(quarantined)
        return (
            [(case.summary, case.detection) for case in detected],
            quarantined,
        )

    def _load_threshold_cache(
        self, store: CheckpointStore, registry
    ) -> None:
        """Warm the runner's cache from a resumed checkpoint, if present.

        A parameter mismatch (the file was written under a different
        cache configuration) is logged and skipped rather than fatal:
        warmth is purely a speed-up, never a correctness requirement.
        """
        cache = self._runner.threshold_cache
        path = store.threshold_cache_path
        if cache is None or not path.exists():
            return
        try:
            loaded = cache.load(path)
        except ThresholdCacheMismatch as exc:
            logger.warning("ignoring persisted threshold cache: %s", exc)
            return
        registry.counter("detector.threshold_cache.loaded").inc(loaded)
        journal_emit("cache_load", buckets=loaded)
        logger.info(
            "resumed %d warm threshold buckets from %s", loaded, path
        )

    def _save_threshold_cache(
        self, store: CheckpointStore, registry
    ) -> None:
        """Persist the warm buckets next to the shard checkpoints.

        Saved after every completed shard so a later ``resume=True``
        run — even after a hard kill — starts from whatever warmth this
        run accumulated.
        """
        cache = self._runner.threshold_cache
        if cache is None or len(cache) == 0:
            return
        cache.save(store.threshold_cache_path)
        registry.counter("detector.threshold_cache.persisted").inc()
        journal_emit("cache_persist", buckets=len(cache))


class BaywatchRunner:
    """The MapReduce-backed front end of the 8-step methodology."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        *,
        engine: Optional[MapReduceEngine] = None,
        global_whitelist: Optional[GlobalWhitelist] = None,
        novelty: Optional[NoveltyStore] = None,
        token_filter: Optional[TokenFilter] = None,
        scorer: Optional[DomainScorer] = None,
        detection_job_factory: Optional[Callable[..., BeaconingDetectionJob]] = None,
    ) -> None:
        """``detection_job_factory`` (optional) builds the detection job
        from the same keyword arguments as
        :class:`~repro.jobs.detection.BeaconingDetectionJob` — the seam
        fault-injection tests and custom deployments hook into."""
        self.config = config or PipelineConfig()
        if engine is None:
            if self.config.executor is not None:
                engine = MapReduceEngine(
                    n_workers=max(os.cpu_count() or 1, 2),
                    executor=self.config.executor,
                )
            else:
                engine = MapReduceEngine()
        self.engine = engine
        self.global_whitelist = (
            global_whitelist if global_whitelist is not None else GlobalWhitelist()
        )
        self.novelty = novelty if novelty is not None else NoveltyStore()
        self.token_filter = token_filter if token_filter is not None else TokenFilter()
        self._scorer = scorer
        self.detection_job_factory = (
            detection_job_factory
            if detection_job_factory is not None
            else BeaconingDetectionJob
        )
        # One threshold cache for the whole runner: every detection job
        # ships it to the workers (pickled warm), in-process shards warm
        # it cumulatively, and the sharded mode persists/restores it via
        # the checkpoint directory.
        self.threshold_cache: Optional[ThresholdCache] = (
            ThresholdCache() if self.config.use_threshold_cache else None
        )
        # Built lazily (and only once) by _detection_executor so warm
        # sliding-DFT states survive across staged runs.
        self._incremental_executor: Optional[Any] = None

    @property
    def scorer(self) -> DomainScorer:
        """The domain LM scorer (built lazily)."""
        if self._scorer is None:
            self._scorer = default_scorer()
        return self._scorer

    # -- phases ------------------------------------------------------------

    def extract(
        self, records: Iterable[ProxyLogRecord]
    ) -> List[ActivitySummary]:
        """Phase A: raw records -> per-pair ActivitySummaries."""
        with span("extract"):
            job = DataExtractionJob(time_scale=self.config.time_scale)
            output = self.engine.run(job, enumerate(records))
            return [summary for _pair, summary in output]

    def rescale_merge(
        self, summaries: Iterable[ActivitySummary], new_time_scale: float
    ) -> List[ActivitySummary]:
        """Phase B: rescale to a coarser granularity and merge windows."""
        with span("rescale_merge"):
            job = RescaleMergeJob(new_time_scale)
            output = self.engine.run(
                job, [(summary.pair, summary) for summary in summaries]
            )
            return [summary for _pair, summary in output]

    def popularity(
        self, summaries: List[ActivitySummary]
    ) -> Tuple[Dict[str, float], Dict[str, int], int]:
        """Phase C: destination popularity ratios and source counts."""
        with span("popularity"):
            job = DestinationPopularityJob()
            counts = self.engine.run(
                job, [(summary.pair, summary) for summary in summaries]
            )
            population = len({summary.source for summary in summaries})
            ratios = popularity_table(counts, population)
            return ratios, dict(counts), population

    def detect(
        self,
        summaries: List[ActivitySummary],
        skip_destinations: frozenset,
    ) -> List[DetectionCase]:
        """Phase D: periodicity detection over non-whitelisted pairs."""
        with span("detect"):
            return self._detect_batch(
                summaries, skip_destinations=skip_destinations
            )

    def _bind_shard_queue(self, checkpoint_dir: Optional[str]) -> None:
        """Point a shard-queue backend at ``<checkpoint-dir>/queue``.

        The queue lives under the checkpoint directory so the same
        shared filesystem that carries shard checkpoints also carries
        tasks, claims, and results for the ``repro worker`` fleet.  A
        queue already bound (e.g. directly by a test) is left alone;
        other backends ignore this entirely.
        """
        from repro.mapreduce.executors import ShardQueueExecutor

        executor = getattr(self.engine, "executor", None)
        if not isinstance(executor, ShardQueueExecutor) or executor.bound:
            return
        if checkpoint_dir is None:
            raise ValueError(
                "the shard-queue executor needs a checkpoint directory to "
                "host its task queue; pass checkpoint_dir (CLI: "
                "--checkpoint-dir)"
            )
        executor.bind(os.path.join(checkpoint_dir, "queue"))

    def _detect_batch(
        self,
        summaries: List[ActivitySummary],
        skip_destinations: frozenset = frozenset(),
        provenance_pairs: frozenset = frozenset(),
    ) -> List[DetectionCase]:
        """One detection job over the engine (no span of its own).

        With provenance enabled the job also ships the non-periodic
        results the policy samples (plus ``provenance_pairs``, the
        chains that must stay complete), so callers can emit full
        verdict chains without re-running detection.  The provenance
        keywords are only passed when the policy is set, keeping custom
        ``detection_job_factory`` seams that predate them working.

        With ``config.use_shared_memory`` the batch is packed into a
        :class:`~repro.mapreduce.shm.SummaryArena` and the engine sees
        ``(pair, index)`` inputs; this process owns the segment and
        always unlinks it on the way out — worker deaths mid-run cannot
        leak it (workers never own the segment; see
        :mod:`repro.mapreduce.shm`).  Under an in-process backend
        (serial, threads) the arena would be pure overhead — workers
        already share this interpreter's heap — so the flag degrades to
        plain direct references.
        """
        kwargs: Dict[str, Any] = {}
        if self.config.provenance is not None:
            kwargs["provenance_policy"] = self.config.provenance
            kwargs["provenance_pairs"] = frozenset(provenance_pairs)
        job = self.detection_job_factory(
            self.config.detector,
            skip_destinations=skip_destinations,
            min_events=self.config.min_events,
            use_threshold_cache=self.config.use_threshold_cache,
            threshold_cache=self.threshold_cache,
            batch_size=self.config.detection_batch_size,
            **kwargs,
        )
        executor = getattr(self.engine, "executor", None)
        workers_share_heap = executor is not None and executor.in_process
        arena = None
        if (
            self.config.use_shared_memory
            and not workers_share_heap
            and summaries
            and hasattr(job, "bind_arena")
        ):
            from repro.mapreduce.shm import SummaryArena

            arena = SummaryArena.pack(summaries)
            job.bind_arena(arena)
            inputs = [
                (summary.pair, index)
                for index, summary in enumerate(summaries)
            ]
        else:
            inputs = [(summary.pair, summary) for summary in summaries]
        try:
            output = self.engine.run(job, inputs)
        finally:
            if arena is not None:
                arena.close()
                arena.unlink()
        return [case for _pair, case in output]

    def rank(
        self,
        cases: List[DetectionCase],
        popularity: Dict[str, float],
        similar_sources: Dict[str, int],
    ) -> List[DetectionCase]:
        """Phase E: token/novelty filtering, scoring, global ranking.

        A standalone MapReduce counterpart of funnel steps 6-8 (the
        end-to-end run modes execute those steps through the shared
        :mod:`repro.stages` objects instead); survivors are recorded in
        the novelty store.
        """
        with span("rank"):
            lm_scores = {
                destination: self.scorer.normalized_score(destination)
                for destination in {case.summary.destination for case in cases}
            }
            job = RankingJob(
                popularity=popularity,
                similar_sources=similar_sources,
                lm_scores=lm_scores,
                reported_destinations=frozenset(self.novelty.reported_destinations),
                token_filter=self.token_filter,
                weights=self.config.ranking_weights,
                percentile=self.config.ranking_percentile,
            )
            output = self.engine.run(job, [(case.pair, case) for case in cases])
            ranked = [
                case for _rank, case in sorted(output, key=lambda kv: kv[0])
            ]
            for case in ranked:
                self.novelty.record(
                    case.summary.source, case.summary.destination
                )
            return ranked

    # -- shared stage plumbing -----------------------------------------------

    def _stage_context(
        self, summaries: List[ActivitySummary]
    ) -> StageContext:
        """Build the stage context: popularity job plus shared components."""
        _ratios, counts, population = self.popularity(summaries)
        get_registry().gauge("runner.population_size").set(population)
        return StageContext(
            config=self.config,
            global_whitelist=self.global_whitelist,
            novelty=self.novelty,
            token_filter=self.token_filter,
            popularity=PopularityIndex.from_counts(counts, population),
            threshold_cache=self.threshold_cache,
            scorer_factory=lambda: self.scorer,
            provenance=(
                ProvenanceRecorder(self.config.provenance)
                if self.config.provenance is not None
                else None
            ),
        )

    @staticmethod
    def _pre_stages() -> List[Any]:
        """Funnel steps 1-2 plus the min-events prefilter."""
        return [GlobalWhitelistStage(), LocalWhitelistStage(), MinEventsStage()]

    @staticmethod
    def _post_stages() -> List[Any]:
        """Funnel steps 6-8."""
        return [TokenFilterStage(), NoveltyStage(), RankingStage()]

    def whitelist_survivors(
        self, summaries: List[ActivitySummary]
    ) -> List[ActivitySummary]:
        """Steps 1-2 and the min-events prefilter, in-process.

        A convenience for smoke tests and ad-hoc analysis: runs the
        popularity job plus the shared whitelist stages and returns the
        pairs that would enter periodicity detection.
        """
        context = self._stage_context(summaries)
        return run_stages(context, self._pre_stages(), summaries)

    def _run_stage_graph(
        self,
        context: StageContext,
        summaries: List[ActivitySummary],
        detection: PeriodicityDetectionStage,
        *,
        detect_span: str = "detect",
    ) -> PipelineReport:
        """Whitelists -> detection -> ranking over the shared stages.

        The stages are grouped under the runner's traditional phase
        spans (``detect``, ``rank``) so phase-level timings stay
        comparable across releases; the per-stage spans nest inside.
        """
        survivors = run_stages(context, self._pre_stages(), summaries)
        with span(detect_span):
            cases = run_stages(context, [detection], survivors)
        with span("rank"):
            ranked = run_stages(context, self._post_stages(), cases)
        logger.info(
            "runner run: %d pairs in, %d periodic, %d reported, "
            "%d quarantined (population %d)",
            len(summaries), len(context.detected), len(ranked),
            len(context.quarantined), context.popularity.population,
        )
        return build_report(context, ranked)

    # -- end to end ----------------------------------------------------------

    def run(
        self,
        records: Iterable[ProxyLogRecord],
        *,
        analysis_time_scale: Optional[float] = None,
    ) -> PipelineReport:
        """Run all phases; optionally rescale before detection."""
        with span("runner"):
            return self._run(records, analysis_time_scale=analysis_time_scale)

    def _run(
        self,
        records: Iterable[ProxyLogRecord],
        *,
        analysis_time_scale: Optional[float] = None,
    ) -> PipelineReport:
        get_registry().counter("runner.runs").inc()
        summaries = self.extract(records)
        if analysis_time_scale is not None:
            summaries = self.rescale_merge(summaries, analysis_time_scale)
        context = self._stage_context(summaries)
        return self._run_stage_graph(
            context,
            summaries,
            PeriodicityDetectionStage(self._detection_executor()),
        )

    def _detection_executor(self) -> Any:
        """The staged run's detection executor.

        The engine-backed executor by default; with
        ``config.incremental_detection`` a single
        :class:`~repro.stages.IncrementalDetection` is kept on the
        runner so repeated :meth:`run` calls over a rolling window
        reuse (and, with ``config.incremental_state_dir``, persist —
        mirroring the threshold cache's checkpoint-directory home) the
        warm sliding-DFT states.
        """
        if not self.config.incremental_detection:
            return _EngineDetection(self)
        if self._incremental_executor is None:
            from repro.stages import IncrementalDetection

            state_path = None
            if self.config.incremental_state_dir is not None:
                from repro.jobs.checkpoint import INCREMENTAL_STATE_FILE

                state_path = (
                    Path(self.config.incremental_state_dir)
                    / INCREMENTAL_STATE_FILE
                )
            self._incremental_executor = IncrementalDetection(
                batch_size=max(1, self.config.detection_batch_size or 256),
                state_path=state_path,
            )
        return self._incremental_executor

    # -- sharded, checkpointed execution -------------------------------------

    def run_sharded(
        self,
        records: Iterable[ProxyLogRecord],
        *,
        analysis_time_scale: Optional[float] = None,
        shard_size: int = 256,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        max_shards: Optional[int] = None,
        on_shard_complete: Optional[Callable[[int, int], None]] = None,
        run_id: Optional[str] = None,
        journal_dir: Optional[str] = None,
    ) -> PipelineReport:
        """Run all phases with the detection phase sharded.

        See :meth:`run_summaries_sharded` for the sharding, checkpoint,
        resume, and telemetry (``run_id`` / ``journal_dir``) semantics.
        Ingestion streams the records through
        :func:`repro.sources.proxy.records_to_summaries` (``records``
        may be a lazy iterator); extraction and rescaling are cheap and
        deterministic, so a resumed run simply recomputes them from the
        same input.
        """
        with span("runner.sharded"):
            with span("extract"):
                summaries = records_to_summaries(
                    records, time_scale=self.config.time_scale
                )
            if analysis_time_scale is not None:
                summaries = self.rescale_merge(summaries, analysis_time_scale)
            return self.run_summaries_sharded(
                summaries,
                shard_size=shard_size,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                max_shards=max_shards,
                on_shard_complete=on_shard_complete,
                run_id=run_id,
                journal_dir=journal_dir,
            )

    def run_chunks_sharded(
        self,
        chunks: Iterable[Any],
        *,
        analysis_time_scale: Optional[float] = None,
        shard_size: int = 256,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        max_shards: Optional[int] = None,
        on_shard_complete: Optional[Callable[[int, int], None]] = None,
        run_id: Optional[str] = None,
        journal_dir: Optional[str] = None,
    ) -> PipelineReport:
        """:meth:`run_sharded` over columnar record chunks.

        Ingestion folds :class:`~repro.sources.columnar.RecordChunk`
        batches through the vectorized accumulator instead of streaming
        per-record objects; the resulting summaries — and therefore the
        shard fingerprint, checkpoints, and final report — are
        bit-identical to the per-record path over the same events, so a
        checkpoint written by one ingestion plane resumes under the
        other.
        """
        from repro.sources.columnar import summaries_from_chunks

        with span("runner.sharded"):
            with span("extract"):
                summaries = summaries_from_chunks(
                    chunks, time_scale=self.config.time_scale
                )
            if analysis_time_scale is not None:
                summaries = self.rescale_merge(summaries, analysis_time_scale)
            return self.run_summaries_sharded(
                summaries,
                shard_size=shard_size,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                max_shards=max_shards,
                on_shard_complete=on_shard_complete,
                run_id=run_id,
                journal_dir=journal_dir,
            )

    def run_summaries_sharded(
        self,
        summaries: List[ActivitySummary],
        *,
        shard_size: int = 256,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        max_shards: Optional[int] = None,
        on_shard_complete: Optional[Callable[[int, int], None]] = None,
        run_id: Optional[str] = None,
        journal_dir: Optional[str] = None,
    ) -> PipelineReport:
        """Detection in bounded shards with durable checkpoints.

        Post-whitelist survivors are ordered deterministically by pair
        and cut into shards of ``shard_size``; each shard runs the
        detection job independently and — when ``checkpoint_dir`` is
        set — lands in one atomically written JSONL file.  A run
        restarted with ``resume=True`` loads completed shards from disk
        (counted in ``mapreduce.shards_resumed``) and re-runs only the
        missing ones, producing a report identical to an uninterrupted
        run.  Units the engine quarantined (poison-pill pairs) are
        carried in the report's ``quarantined`` list and in the
        checkpoint's ``quarantine.jsonl``.

        ``max_shards`` bounds how many *new* shards this invocation may
        process; when the budget runs out with work remaining,
        :class:`IncompleteRunError` is raised after checkpointing the
        finished shards (requires ``checkpoint_dir``).

        Telemetry: each run gets a ``run_id`` (generated when not
        given), attached to the engine's operator log lines and to every
        record of the event journal.  The journal —
        ``events.jsonl`` under ``journal_dir`` (defaulting to
        ``checkpoint_dir``) — records the run's operational story:
        run/shard start and finish, retries, quarantines, pool restarts,
        cache persist/load, worker heartbeats; a resumed run *appends*
        with a ``resumed`` marker so the interrupt/resume history reads
        as one stream (``repro watch`` and the ``--status-port`` service
        fold it live).  When telemetry is on and no distributed trace is
        already active, a fresh trace context is installed so
        worker-side spans come back stitched under this run (see
        :mod:`repro.obs.tracing`).
        """
        if shard_size < 1:
            raise ValueError("shard_size must be at least 1")
        if max_shards is not None and checkpoint_dir is None:
            raise ValueError(
                "max_shards without checkpoint_dir would discard the "
                "completed shards"
            )
        if run_id is None:
            run_id = new_run_id()
        self._bind_shard_queue(checkpoint_dir)
        journal: Optional[EventJournal] = None
        journal_home = journal_dir if journal_dir is not None else checkpoint_dir
        if journal_home is not None:
            journal = EventJournal.in_dir(journal_home, run_id=run_id)
        trace = current_trace()
        if trace is None and get_registry().enabled:
            trace = TraceContext(trace_id=new_trace_id(), run_id=run_id)
        self.engine.set_run_context(run_id=run_id)
        try:
            # The ``run`` span is the trace root: it opens *after* the
            # trace context is installed, so every later span — the
            # stage graph here, worker-side spans shipped back by the
            # engine — stitches into one tree under it.
            with scoped_journal(journal), scoped_trace(trace), span("run"):
                get_registry().counter("runner.runs").inc()
                context = self._stage_context(summaries)
                detection = PeriodicityDetectionStage(
                    _ShardedDetection(
                        self,
                        shard_size=shard_size,
                        checkpoint_dir=checkpoint_dir,
                        resume=resume,
                        max_shards=max_shards,
                        on_shard_complete=on_shard_complete,
                    )
                )
                try:
                    report = self._run_stage_graph(
                        context, summaries, detection,
                        detect_span="detect.sharded",
                    )
                except IncompleteRunError as exc:
                    journal_emit(
                        "run_suspended",
                        completed=exc.completed,
                        total=exc.total,
                    )
                    raise
                if checkpoint_dir is not None and report.provenance:
                    write_provenance(
                        CheckpointStore(checkpoint_dir).provenance_path,
                        report.provenance,
                    )
                journal_emit(
                    "run_finish",
                    reported=len(report.ranked_cases),
                    quarantined=len(report.quarantined) or None,
                )
                return report
        finally:
            self.engine.set_run_context()
            if journal is not None:
                journal.close()
