"""The MapReduce formulation of every BAYWATCH phase (Section VII)."""

from repro.jobs.records import DetectionCase, detection_case_to_beaconing_case
from repro.jobs.checkpoint import CheckpointMismatch, CheckpointStore
from repro.jobs.extraction import DataExtractionJob
from repro.jobs.rescaling import RescaleMergeJob
from repro.jobs.popularity import DestinationPopularityJob, popularity_table
from repro.jobs.detection import BeaconingDetectionJob
from repro.jobs.ranking_job import RankingJob
from repro.jobs.runner import BaywatchRunner, IncompleteRunError
from repro.jobs.summary_store import (
    SummaryPacker,
    SummaryStore,
    pack_summaries,
    unpack_summaries,
)

__all__ = [
    "SummaryPacker",
    "SummaryStore",
    "pack_summaries",
    "unpack_summaries",
    "CheckpointMismatch",
    "CheckpointStore",
    "DetectionCase",
    "detection_case_to_beaconing_case",
    "DataExtractionJob",
    "RescaleMergeJob",
    "DestinationPopularityJob",
    "popularity_table",
    "BeaconingDetectionJob",
    "RankingJob",
    "BaywatchRunner",
    "IncompleteRunError",
]
