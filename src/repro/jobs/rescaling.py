"""Rescaling-and-merging MapReduce job (paper Section VII-B).

MAP: re-express each ActivitySummary at a coarser time scale (periodicity
detection over long windows runs on coarse summaries instead of raw
logs).

REDUCE: merge all (rescaled) summaries of the same pair — e.g. thirty
per-day summaries into one month-long summary.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Tuple

from repro.core.timeseries import ActivitySummary, merge, rescale
from repro.mapreduce.job import KeyValue, MapReduceJob
from repro.utils.validation import require_positive


class RescaleMergeJob(MapReduceJob):
    """Per-window summaries -> merged coarse summaries per pair."""

    def __init__(self, new_time_scale: float, *, n_partitions: int = 32) -> None:
        require_positive(new_time_scale, "new_time_scale")
        self.new_time_scale = new_time_scale
        self.n_partitions = n_partitions

    def map(self, key: Any, value: ActivitySummary) -> Iterator[KeyValue]:
        """Rescale one summary to the new granularity."""
        rescaled = (
            rescale(value, self.new_time_scale)
            if value.time_scale < self.new_time_scale
            else value
        )
        yield value.pair, rescaled

    def reduce(
        self, key: Tuple[str, str], values: Iterable[ActivitySummary]
    ) -> Iterator[KeyValue]:
        """Merge all summaries of the pair into one."""
        yield key, merge(sorted(values, key=lambda s: s.first_timestamp))
