"""Data-extraction MapReduce job (paper Section VII-A).

MAP: each log record yields its communication pair as the key and the
``(timestamp, sequence, url)`` observation as the value (the sequence
is the input line number, preserving arrival order across the
shuffle); the engine's hash partitioner plays the role of the paper's
``H(s, d)``.

REDUCE: one pair's observations fold into an
:class:`~repro.core.timeseries.ActivitySummary` via
:func:`repro.sources.proxy.summary_from_observations` — the same
grouping the in-process streaming ingestion uses, so both front ends
see bit-identical summaries (capped URL sample included).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Tuple

from repro.mapreduce.job import KeyValue, MapReduceJob
from repro.sources.proxy import ProxyLogRecord, summary_from_observations
from repro.utils.validation import require, require_positive


class DataExtractionJob(MapReduceJob):
    """Raw proxy-log records -> per-pair ActivitySummaries."""

    def __init__(
        self,
        *,
        time_scale: float = 1.0,
        max_urls_per_pair: int = 64,
        n_partitions: int = 32,
    ) -> None:
        require_positive(time_scale, "time_scale")
        require(max_urls_per_pair >= 0, "max_urls_per_pair must be non-negative")
        self.time_scale = time_scale
        self.max_urls_per_pair = max_urls_per_pair
        self.n_partitions = n_partitions

    def map(self, key: Any, value: ProxyLogRecord) -> Iterator[KeyValue]:
        """``(line, record) -> ((source, destination), (ts, line, url))``."""
        yield (
            (value.source_mac, value.destination),
            (value.timestamp, key, value.url),
        )

    def reduce(
        self, key: Tuple[str, str], values: Iterable[Tuple[float, int, str]]
    ) -> Iterator[KeyValue]:
        """Fold one pair's observations into an ActivitySummary."""
        source, destination = key
        yield key, summary_from_observations(
            source,
            destination,
            values,
            time_scale=self.time_scale,
            max_urls=self.max_urls_per_pair,
        )
