"""Data-extraction MapReduce job (paper Section VII-A).

MAP: each log record yields its communication pair as the key and the
``(timestamp, url)`` observation as the value; the engine's hash
partitioner plays the role of the paper's ``H(s, d)``.

REDUCE: all observations of one pair are sorted and folded into an
:class:`~repro.core.timeseries.ActivitySummary` at the configured time
scale (1 second at the finest granularity), carrying a capped sample of
URLs as side-channel information for the token filter.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Tuple

from repro.core.timeseries import ActivitySummary
from repro.mapreduce.job import KeyValue, MapReduceJob
from repro.synthetic.logs import ProxyLogRecord
from repro.utils.validation import require, require_positive


class DataExtractionJob(MapReduceJob):
    """Raw proxy-log records -> per-pair ActivitySummaries."""

    def __init__(
        self,
        *,
        time_scale: float = 1.0,
        max_urls_per_pair: int = 64,
        n_partitions: int = 32,
    ) -> None:
        require_positive(time_scale, "time_scale")
        require(max_urls_per_pair >= 0, "max_urls_per_pair must be non-negative")
        self.time_scale = time_scale
        self.max_urls_per_pair = max_urls_per_pair
        self.n_partitions = n_partitions

    def map(self, key: Any, value: ProxyLogRecord) -> Iterator[KeyValue]:
        """``(line, record) -> ((source, destination), (ts, url))``."""
        yield (value.source_mac, value.destination), (value.timestamp, value.url)

    def reduce(
        self, key: Tuple[str, str], values: Iterable[Tuple[float, str]]
    ) -> Iterator[KeyValue]:
        """Group, sort, and summarize one pair's observations."""
        observations = sorted(values)
        source, destination = key
        urls = tuple(
            url for _ts, url in observations[: self.max_urls_per_pair]
        )
        summary = ActivitySummary.from_timestamps(
            source,
            destination,
            [ts for ts, _url in observations],
            time_scale=self.time_scale,
            urls=urls,
        )
        yield key, summary
