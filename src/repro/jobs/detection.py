"""Beaconing-detection MapReduce job (paper Section VII-D).

MAP: separates communication pairs (and drops whitelisted or trivially
short ones so reduce workers never see them).

REDUCE: runs the core periodicity-detection algorithm on each pair's
request history; periodic pairs are emitted as
:class:`~repro.jobs.records.DetectionCase` records carrying the
CandidatePeriod list for the ranking and investigation phases.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.core.detector import DetectionResult, DetectorConfig, PeriodicityDetector
from repro.core.permutation import ThresholdCache
from repro.core.timeseries import ActivitySummary
from repro.jobs.records import DetectionCase
from repro.mapreduce.job import KeyValue, MapReduceJob
from repro.obs import span
from repro.obs.provenance import ProvenancePolicy
from repro.utils.validation import require


class BeaconingDetectionJob(MapReduceJob):
    """Filtered pair summaries -> detected beaconing cases.

    ``threshold_cache`` optionally ships a pre-warmed
    :class:`~repro.core.permutation.ThresholdCache` to every worker
    (the job is pickled into worker processes, cache included) so
    workers start from shared warm buckets instead of each re-deriving
    every bucket from scratch.  ``batch_size`` > 0 switches the reduce
    phase to the batched fast path of :mod:`repro.core.batch`,
    amortizing FFT/ACF dispatch across all pairs of a partition.

    **Arena mode** (:meth:`bind_arena`): instead of pickling every
    summary into every worker task, the caller packs the batch into a
    :class:`~repro.mapreduce.shm.SummaryArena` and feeds the engine
    ``(pair, index)`` inputs; workers attach to the shared segment via
    the handle pickled with the job and resolve indices to zero-copy
    :class:`~repro.mapreduce.shm.SummaryView` objects.  Results are
    bit-identical either way — views materialize back into real
    summaries only for the few cases that ship.
    """

    def __init__(
        self,
        detector_config: Optional[DetectorConfig] = None,
        *,
        skip_destinations: FrozenSet[str] = frozenset(),
        min_events: int = 4,
        use_threshold_cache: bool = True,
        threshold_cache: Optional[ThresholdCache] = None,
        batch_size: int = 0,
        n_partitions: int = 32,
        provenance_policy: Optional[ProvenancePolicy] = None,
        provenance_pairs: FrozenSet[Tuple[str, str]] = frozenset(),
    ) -> None:
        require(min_events >= 2, "min_events must be at least 2")
        require(batch_size >= 0, "batch_size must be non-negative")
        self.detector_config = detector_config or DetectorConfig(seed=0)
        self.skip_destinations = frozenset(skip_destinations)
        self.min_events = min_events
        self.use_threshold_cache = use_threshold_cache
        self.threshold_cache = threshold_cache
        self.batch_size = batch_size
        self.n_partitions = n_partitions
        #: When set, non-periodic results the provenance policy wants
        #: (sampled pairs, detection near-misses, and the explicitly
        #: requested ``provenance_pairs``) are also emitted, so the
        #: caller can reconstruct full verdict chains without re-running
        #: detection.  Both are picklable and ship to workers.
        self.provenance_policy = provenance_policy
        self.provenance_pairs = frozenset(provenance_pairs)
        self._detector: Optional[PeriodicityDetector] = None
        #: Set by :meth:`bind_arena`; a tiny picklable header that rides
        #: to workers in place of the summary payloads.
        self.arena_handle = None
        self._arena = None

    # -- shared-memory arena -----------------------------------------------

    def bind_arena(self, arena) -> None:
        """Resolve integer inputs against a shared-memory summary arena.

        The caller keeps ownership of the segment (and unlinks it after
        the run); this job only records the attachment handle and, for
        in-process execution, reuses the caller's mapping directly.
        """
        self._arena = arena
        self.arena_handle = arena.handle()

    def _get_arena(self):
        if self._arena is None and self.arena_handle is not None:
            from repro.mapreduce.shm import SummaryArena

            self._arena = SummaryArena.attach(self.arena_handle)
        return self._arena

    def _resolve(self, value):
        """An input value -> something summary-shaped (view or summary)."""
        if isinstance(value, int):
            return self._get_arena().view(value)
        return value

    @staticmethod
    def _materialize(summary) -> ActivitySummary:
        """A real :class:`ActivitySummary` for results leaving the worker."""
        if isinstance(summary, ActivitySummary):
            return summary
        return summary.materialize()

    def _ships_result(
        self, source: str, destination: str, result: DetectionResult
    ) -> bool:
        """Should this (possibly non-periodic) result leave the worker?"""
        if result.periodic:
            return True
        policy = self.provenance_policy
        if policy is None:
            return False
        if (source, destination) in self.provenance_pairs:
            return True
        if policy.pair_sampled(source, destination):
            return True
        return policy.margin_near_miss(
            result.spectral_margin, result.power_threshold
        )

    def _get_detector(self) -> PeriodicityDetector:
        """Build the detector lazily (once per worker process)."""
        if self._detector is None:
            cache: Optional[ThresholdCache] = None
            if self.use_threshold_cache:
                cache = (
                    self.threshold_cache
                    if self.threshold_cache is not None
                    else ThresholdCache()
                )
            self._detector = PeriodicityDetector(
                self.detector_config, threshold_cache=cache
            )
        return self._detector

    def __getstate__(self) -> dict:
        """Drop the per-process detector/arena when pickling to workers.

        The arena *handle* stays in the state — workers re-attach from
        it — but the mapping itself is process-local.
        """
        state = dict(self.__dict__)
        state["_detector"] = None
        state["_arena"] = None
        return state

    def map(self, key: Any, value: Any) -> Iterator[KeyValue]:
        """Separate pairs; drop whitelisted and trivially short ones.

        In arena mode ``value`` is an integer index: filters run on the
        zero-copy view, but the *index* stays the shuffled value so
        reduce tasks pay no summary serialization either.
        """
        summary = self._resolve(value)
        if summary.destination in self.skip_destinations:
            return
        if summary.event_count < self.min_events:
            return
        yield summary.pair, value

    def reduce(
        self, key: Tuple[str, str], values: Iterable[ActivitySummary]
    ) -> Iterator[KeyValue]:
        """Run the shared detection loop on each pair's history.

        Materialized under a ``detect`` span (rather than yielded
        lazily) so the span brackets the actual detector work — inside
        a worker process the span record ships back to the engine with
        its parent link, which is how worker-side detection time shows
        up in the merged trace tree.
        """
        from repro.stages import detect_pairs

        detector = self._get_detector()
        resolved = [self._resolve(value) for value in values]
        with span("detect"):
            if self.provenance_policy is None:
                output = [
                    (key, DetectionCase(summary=self._materialize(summary),
                                        detection=result))
                    for summary, result in detect_pairs(detector, resolved)
                ]
            else:
                output = []
                for summary in resolved:
                    result = detector.detect_summary(summary)
                    if self._ships_result(
                        summary.source, summary.destination, result
                    ):
                        output.append(
                            (key, DetectionCase(
                                summary=self._materialize(summary),
                                detection=result))
                        )
        return iter(output)

    def reduce_partition(
        self, grouped: Iterable[Tuple[Any, Iterable[ActivitySummary]]]
    ) -> Iterator[KeyValue]:
        """Cross-key fast path: batch all pairs of the partition.

        With ``batch_size`` > 0 the partition's summaries are flattened
        (preserving group order) and run through the shape-grouped
        batched kernels, whose results are bit-for-bit identical to the
        serial :meth:`reduce` loop.  Quarantine fallback still works:
        a failing partition is split into single-group units, each of
        which re-enters here as a batch of one group.
        """
        if self.batch_size <= 0:
            yield from super().reduce_partition(grouped)
            return
        from repro.core.batch import BatchedDetector

        flat: List[Tuple[Any, Any]] = [
            (key, self._resolve(value))
            for key, values in grouped
            for value in values
        ]
        if not flat:
            return
        batched = BatchedDetector(
            self._get_detector(), batch_size=self.batch_size
        )
        with span("detect"):
            results = batched.detect_summaries(
                [summary for _key, summary in flat]
            )
        for (key, summary), result in zip(flat, results):
            if self._ships_result(summary.source, summary.destination, result):
                yield key, DetectionCase(
                    summary=self._materialize(summary), detection=result
                )
