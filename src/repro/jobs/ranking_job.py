"""Ranking MapReduce job (paper Section VII-E).

MAP: filters out likely-benign beaconing (URL token analysis) and
non-novel cases, then computes each survivor's weighted rank score from
the precomputed popularity and language-model tables.

REDUCE: a single global group collects the scored cases, applies the
percentile threshold over the score distribution, and emits a ranked
list (rank index as key).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, FrozenSet, Iterable, Iterator

from repro.filtering.ranking import RankingWeights, percentile_cutoff, rank_score
from repro.filtering.tokens import TokenFilter
from repro.jobs.records import DetectionCase, detection_case_to_beaconing_case
from repro.mapreduce.job import KeyValue, MapReduceJob
from repro.utils.validation import require_probability

_GLOBAL_KEY = "ranked"

#: Backwards-compatible alias; the bridge is public now — see
#: :func:`repro.jobs.records.detection_case_to_beaconing_case`.
_to_case = detection_case_to_beaconing_case


class RankingJob(MapReduceJob):
    """Detected cases -> globally ranked, thresholded case list."""

    #: Global sort requires a single reduce partition.
    n_partitions = 1

    def __init__(
        self,
        *,
        popularity: Dict[str, float],
        similar_sources: Dict[str, int],
        lm_scores: Dict[str, float],
        reported_destinations: FrozenSet[str] = frozenset(),
        token_filter: TokenFilter = None,
        weights: RankingWeights = RankingWeights(),
        percentile: float = 0.9,
    ) -> None:
        require_probability(percentile, "percentile")
        self.popularity = dict(popularity)
        self.similar_sources = dict(similar_sources)
        self.lm_scores = dict(lm_scores)
        self.reported_destinations = frozenset(reported_destinations)
        self.token_filter = token_filter if token_filter is not None else TokenFilter()
        self.weights = weights
        self.percentile = percentile

    def map(self, key: Any, value: DetectionCase) -> Iterator[KeyValue]:
        """Token + novelty filters, then scoring."""
        destination = value.summary.destination
        if destination in self.reported_destinations:
            return  # novelty: destination already reported
        if self.token_filter.is_likely_benign(value.summary.urls):
            return  # likely benign periodic service
        enriched = replace(
            value,
            popularity=self.popularity.get(destination, 0.0),
            similar_sources=self.similar_sources.get(destination, 1),
            lm_score=self.lm_scores.get(destination, 0.0),
        )
        score = rank_score(
            detection_case_to_beaconing_case(enriched), self.weights
        )
        yield _GLOBAL_KEY, replace(enriched, rank_score=score)

    def reduce(
        self, key: str, values: Iterable[DetectionCase]
    ) -> Iterator[KeyValue]:
        """Consolidate, percentile-threshold, and sort the global list."""
        from repro.filtering.ranking import strongest_per_destination

        # strongest_per_destination is duck-typed: DetectionCase exposes
        # the same source/destination/rank_score/summary surface.
        consolidated = strongest_per_destination(list(values))
        cases = sorted(
            consolidated, key=lambda case: case.rank_score, reverse=True
        )
        if not cases:
            return
        cutoff = percentile_cutoff(
            [case.rank_score for case in cases], self.percentile
        )
        rank = 0
        for case in cases:
            if case.rank_score >= cutoff:
                yield rank, case
                rank += 1
