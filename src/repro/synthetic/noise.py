"""Noise models for synthetic beacon traces — paper Section VIII-A.

The paper evaluates the detector against three perturbations injected
into a clean periodic baseline:

- **Gaussian noise** — each inter-beacon interval is jittered by
  ``N(0, sigma^2)`` (network delays, retransmissions, scheduling),
- **missing events** — each beacon is independently dropped with
  probability ``q`` (device offline, observation gaps),
- **added events** — spurious events are injected at a Poisson rate
  (attacker camouflage, unrelated traffic on the same pair),

plus long *outage gaps* (device off-line for hours), which we model
explicitly.  All functions are pure: they take and return timestamp
arrays and use a caller-supplied :class:`numpy.random.Generator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import (
    as_sorted_timestamps,
    require,
    require_probability,
)


def gaussian_jitter(
    timestamps: Sequence[float], sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Jitter each inter-event interval by ``N(0, sigma^2)`` seconds.

    Jitter is applied to intervals (not timestamps) so that errors do not
    cancel between consecutive events; intervals are floored at a small
    positive value to preserve event ordering.
    """
    require(sigma >= 0, "sigma must be non-negative")
    ts = as_sorted_timestamps(timestamps)
    if ts.size < 2 or sigma == 0:
        return ts.copy()
    intervals = np.diff(ts)
    noisy = intervals + rng.normal(0.0, sigma, size=intervals.size)
    noisy = np.maximum(noisy, 1e-3)
    return ts[0] + np.concatenate([[0.0], np.cumsum(noisy)])


def drop_events(
    timestamps: Sequence[float], probability: float, rng: np.random.Generator
) -> np.ndarray:
    """Independently drop each event with the given probability.

    The first event is always kept so the trace retains its anchor; an
    empty input stays empty.
    """
    require_probability(probability, "probability")
    ts = as_sorted_timestamps(timestamps)
    if ts.size == 0 or probability == 0:
        return ts.copy()
    keep = rng.random(ts.size) >= probability
    keep[0] = True
    return ts[keep]


def add_events(
    timestamps: Sequence[float],
    rate: float,
    rng: np.random.Generator,
    *,
    span: Optional[Tuple[float, float]] = None,
) -> np.ndarray:
    """Inject spurious events at a Poisson ``rate`` (events/second).

    Events are spread uniformly over ``span`` (default: the trace's own
    extent).  The result is sorted and merged with the original events.
    """
    require(rate >= 0, "rate must be non-negative")
    ts = as_sorted_timestamps(timestamps)
    if rate == 0:
        return ts.copy()
    if span is None:
        require(ts.size >= 2, "need a span or at least 2 events")
        start, end = float(ts[0]), float(ts[-1])
    else:
        start, end = float(span[0]), float(span[1])
        require(end > start, "span end must exceed span start")
    count = rng.poisson(rate * (end - start))
    extra = rng.uniform(start, end, size=count)
    return np.sort(np.concatenate([ts, extra]))


def insert_gaps(
    timestamps: Sequence[float],
    gaps: Sequence[Tuple[float, float]],
) -> np.ndarray:
    """Remove all events falling inside the given ``(start, end)`` gaps.

    Models outages: network downtime, devices leaving the observation
    perimeter (paper Fig. 2, left).
    """
    ts = as_sorted_timestamps(timestamps)
    if ts.size == 0:
        return ts
    keep = np.ones(ts.size, dtype=bool)
    for start, end in gaps:
        require(end > start, "gap end must exceed gap start")
        keep &= ~((ts >= start) & (ts < end))
    return ts[keep]


@dataclass(frozen=True)
class NoiseModel:
    """A composite perturbation applied to a clean beacon trace.

    Application order matches the paper's synthetic evaluation: first the
    event-level models (missing/added events), then Gaussian interval
    jitter, then outage gaps.
    """

    jitter_sigma: float = 0.0
    drop_probability: float = 0.0
    add_rate: float = 0.0
    gaps: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        require(self.jitter_sigma >= 0, "jitter_sigma must be non-negative")
        require_probability(self.drop_probability, "drop_probability")
        require(self.add_rate >= 0, "add_rate must be non-negative")

    def apply(
        self, timestamps: Sequence[float], rng: np.random.Generator
    ) -> np.ndarray:
        """Apply the composite noise model to ``timestamps``."""
        ts = as_sorted_timestamps(timestamps)
        span = (float(ts[0]), float(ts[-1])) if ts.size >= 2 else None
        if self.drop_probability > 0:
            ts = drop_events(ts, self.drop_probability, rng)
        if self.add_rate > 0 and span is not None:
            ts = add_events(ts, self.add_rate, rng, span=span)
        if self.jitter_sigma > 0:
            ts = gaussian_jitter(ts, self.jitter_sigma, rng)
        if self.gaps:
            ts = insert_gaps(ts, self.gaps)
        return ts

    @property
    def is_clean(self) -> bool:
        """True when the model applies no perturbation at all."""
        return (
            self.jitter_sigma == 0
            and self.drop_probability == 0
            and self.add_rate == 0
            and not self.gaps
        )
