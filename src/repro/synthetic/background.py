"""Benign background traffic models.

Two kinds of legitimate traffic matter to BAYWATCH:

- **Browsing** — bursty, session-structured, non-periodic requests to
  popular destinations.  It dominates the volume and must *not* be
  reported.
- **Benign periodic services** — software-update checks, anti-virus
  signature polls, mail polling, license checks, news/score tickers
  (paper Challenge 4).  They *are* periodic; the whitelists, token
  filter, and classifier — not the core detector — are responsible for
  suppressing them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.synthetic.beacon import BeaconSpec
from repro.synthetic.noise import NoiseModel
from repro.utils.validation import require, require_positive, require_probability


def browsing_trace(
    duration: float,
    rng: np.random.Generator,
    *,
    session_rate: float = 2.0 / 3600.0,
    requests_per_session: float = 8.0,
    intra_session_gap: float = 4.0,
    start: float = 0.0,
) -> np.ndarray:
    """A bursty, non-periodic browsing trace for one (host, site) pair.

    Sessions arrive as a Poisson process at ``session_rate``; each
    session issues a geometric number of requests (mean
    ``requests_per_session``) spaced by exponential gaps (mean
    ``intra_session_gap`` seconds).
    """
    require_positive(duration, "duration")
    require_positive(session_rate, "session_rate")
    require_positive(requests_per_session, "requests_per_session")
    require_positive(intra_session_gap, "intra_session_gap")
    n_sessions = rng.poisson(session_rate * duration)
    events: List[float] = []
    if n_sessions == 0:
        return np.empty(0)
    session_starts = np.sort(rng.uniform(0.0, duration, size=n_sessions))
    p = 1.0 / requests_per_session
    for session_start in session_starts:
        n_requests = rng.geometric(p)
        gaps = rng.exponential(intra_session_gap, size=n_requests - 1)
        times = session_start + np.concatenate([[0.0], np.cumsum(gaps)])
        events.extend(times[times < duration])
    return start + np.sort(np.asarray(events))


@dataclass(frozen=True)
class PeriodicService:
    """A legitimate periodic network service.

    ``adoption`` is the fraction of enterprise hosts running the service
    — it drives the local-whitelist popularity of the destination.
    ``url_path`` feeds the token filter (benign updaters use stable,
    meaningful paths).
    """

    name: str
    domain: str
    period: float
    adoption: float
    jitter_fraction: float = 0.02
    drop_probability: float = 0.02
    url_path: str = "/"

    def __post_init__(self) -> None:
        require_positive(self.period, "period")
        require_probability(self.adoption, "adoption")
        require(self.jitter_fraction >= 0, "jitter_fraction must be non-negative")
        require_probability(self.drop_probability, "drop_probability")

    def beacon_spec(self, duration: float, *, start: float = 0.0) -> BeaconSpec:
        """The beacon spec emitted by one host running this service."""
        return BeaconSpec(
            period=self.period,
            duration=duration,
            start=start,
            noise=NoiseModel(
                jitter_sigma=self.period * self.jitter_fraction,
                drop_probability=self.drop_probability,
            ),
        )


#: Benign periodic services modelled after the paper's examples
#: (update checks, AV signatures, mail polling, license checks, news
#: tickers, streaming playlist refreshes — the confirmed false-positive
#: classes of Section VIII-B2).
DEFAULT_SERVICES: Tuple[PeriodicService, ...] = (
    PeriodicService(
        "os-update", "updates.osvendor.com", period=3600.0, adoption=0.9,
        url_path="/v2/check?build=17134",
    ),
    PeriodicService(
        "antivirus", "sig.avshield.com", period=14400.0, adoption=0.8,
        url_path="/signatures/latest/version.txt",
    ),
    PeriodicService(
        "mail-poll", "mail.corpmail.com", period=300.0, adoption=0.7,
        url_path="/ews/poll",
    ),
    PeriodicService(
        "license", "lic.cadsuite.com", period=7200.0, adoption=0.15,
        url_path="/license/heartbeat",
    ),
    PeriodicService(
        "news-ticker", "live.scoreticker.com", period=60.0, adoption=0.05,
        jitter_fraction=0.05, url_path="/scores/feed.json",
    ),
    PeriodicService(
        "playlist", "kdfc.web-playlist.org", period=180.0, adoption=0.01,
        jitter_fraction=0.05, url_path="/nowplaying.xml",
    ),
    PeriodicService(
        "sports-site", "2015.ausopen.com", period=120.0, adoption=0.008,
        jitter_fraction=0.08, url_path="/livescore/update",
    ),
    PeriodicService(
        "browser-ext", "api.echoenabled.com", period=600.0, adoption=0.03,
        url_path="/v1/rulesets/check",
    ),
)
