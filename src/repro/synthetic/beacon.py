"""Beacon trace generators.

A *beacon* is a near-periodic sequence of call-back events.  The
generators here produce timestamp arrays for:

- :class:`BeaconSpec` — a single-period beacon with an optional composite
  :class:`~repro.synthetic.noise.NoiseModel` (the synthetic-evaluation
  workload of Section VIII-A),
- :class:`MultiPhaseBeaconSpec` — alternating activity phases, e.g.
  Conficker's 7-8 s burst for ~2 minutes followed by a ~3 h sleep
  (paper Fig. 2, right),
- :func:`poisson_trace` — a memoryless non-periodic control used to
  measure false alarms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.synthetic.noise import NoiseModel
from repro.utils.validation import require, require_positive


@dataclass(frozen=True)
class BeaconSpec:
    """A single-period beacon.

    ``period`` is the true inter-beacon interval in seconds; the trace
    spans ``duration`` seconds starting at ``start``.  ``noise`` applies
    the paper's perturbation models on top of the clean baseline.
    """

    period: float
    duration: float
    start: float = 0.0
    noise: NoiseModel = field(default_factory=NoiseModel)

    def __post_init__(self) -> None:
        require_positive(self.period, "period")
        require_positive(self.duration, "duration")
        require(
            self.duration >= self.period,
            "duration must cover at least one period",
        )

    @property
    def event_count(self) -> int:
        """Number of clean beacons in the window."""
        return int(np.floor(self.duration / self.period)) + 1

    def clean(self) -> np.ndarray:
        """The noiseless, strictly periodic trace."""
        return self.start + np.arange(self.event_count) * self.period

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        """The trace with the configured noise applied."""
        return self.noise.apply(self.clean(), rng)


@dataclass(frozen=True)
class Phase:
    """One activity phase of a multi-phase beacon."""

    period: float
    length: float

    def __post_init__(self) -> None:
        require_positive(self.period, "period")
        require_positive(self.length, "length")


@dataclass(frozen=True)
class MultiPhaseBeaconSpec:
    """A beacon cycling through phases (burst / sleep / burst ...).

    Each cycle runs the phases in order; a phase emits beacons every
    ``period`` seconds for ``length`` seconds.  To model a silent sleep,
    use a phase whose period exceeds its length (it emits only the phase
    boundary event).  The Conficker trace of Fig. 2 is
    ``[Phase(7.5, 120), Phase(10800, 10800)]``.
    """

    phases: Tuple[Phase, ...]
    duration: float
    start: float = 0.0
    noise: NoiseModel = field(default_factory=NoiseModel)

    def __post_init__(self) -> None:
        require(len(self.phases) >= 1, "at least one phase is required")
        require_positive(self.duration, "duration")

    def clean(self) -> np.ndarray:
        """The noiseless multi-phase trace."""
        events = []
        t = self.start
        end = self.start + self.duration
        while t < end:
            for phase in self.phases:
                phase_end = min(t + phase.length, end)
                beat = t
                while beat < phase_end:
                    events.append(beat)
                    beat += phase.period
                t = phase_end
                if t >= end:
                    break
        return np.asarray(events, dtype=float)

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        """The trace with the configured noise applied."""
        return self.noise.apply(self.clean(), rng)


def poisson_trace(
    rate: float,
    duration: float,
    rng: np.random.Generator,
    *,
    start: float = 0.0,
) -> np.ndarray:
    """A memoryless (non-periodic) event trace at ``rate`` events/second.

    Serves as the negative control in the synthetic evaluation: a robust
    detector must not report periods for Poisson traffic.
    """
    require_positive(rate, "rate")
    require_positive(duration, "duration")
    count = rng.poisson(rate * duration)
    return start + np.sort(rng.uniform(0.0, duration, size=count))
