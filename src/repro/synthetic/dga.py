"""Domain generation algorithms (DGAs) for malicious destinations.

Botnets algorithmically generate large pools of rendezvous domains
(paper Section V-C).  The generators here mimic the families whose
domains appear in the paper's Tables V and VI:

- :func:`random_chars` — uniform lowercase letters
  (``skmnikrzhrrzcjcxwfprgt.com`` style),
- :func:`hex_label` — hexadecimal blobs behind a service-like prefix
  (``cdn.5f75b1c54f8...2d4.com`` style),
- :func:`consonant_heavy` — consonant-biased strings that defeat naive
  vowel-ratio heuristics but still score poorly under a 3-gram LM,
- :func:`pseudo_words` — word-fragment concatenation; the *hard* case
  that scores closer to benign names.

All generators are deterministic given a seed so experiments reproduce.
"""

from __future__ import annotations

import string
from typing import List, Optional, Sequence

import numpy as np

from repro.utils.validation import require, require_positive

_LETTERS = string.ascii_lowercase
_CONSONANTS = "bcdfghjklmnpqrstvwxz"
_HEX = "0123456789abcdef"
_FRAGMENTS = (
    "net", "web", "data", "cloud", "app", "soft", "micro", "tech", "info",
    "link", "hub", "zone", "bit", "sys", "core", "max", "pro", "star",
    "blue", "fast", "easy", "safe", "top", "one", "go", "my", "get",
)
_TLDS = (".com", ".net", ".org", ".info", ".biz", ".pl", ".ru")


def _pick(rng: np.random.Generator, alphabet: str, length: int) -> str:
    return "".join(alphabet[i] for i in rng.integers(0, len(alphabet), size=length))


def random_chars(
    rng: np.random.Generator,
    *,
    length: int = 20,
    tld: str = ".com",
) -> str:
    """A uniformly random lowercase domain label."""
    require_positive(length, "length")
    return _pick(rng, _LETTERS, length) + tld


def hex_label(
    rng: np.random.Generator,
    *,
    length: int = 24,
    prefix: Optional[str] = None,
    tld: str = ".com",
) -> str:
    """A hexadecimal label, optionally behind a benign-looking prefix."""
    require_positive(length, "length")
    label = _pick(rng, _HEX, length)
    if prefix:
        return f"{prefix}.{label}{tld}"
    return label + tld


def consonant_heavy(
    rng: np.random.Generator,
    *,
    length: int = 14,
    tld: str = ".com",
) -> str:
    """A consonant-biased label (rare character transitions)."""
    require_positive(length, "length")
    return _pick(rng, _CONSONANTS, length) + tld


def pseudo_words(
    rng: np.random.Generator,
    *,
    fragments: int = 3,
    tld: str = ".com",
) -> str:
    """Concatenated plausible word fragments (hard-to-spot DGA)."""
    require_positive(fragments, "fragments")
    picks = rng.integers(0, len(_FRAGMENTS), size=fragments)
    return "".join(_FRAGMENTS[i] for i in picks) + tld


_FAMILIES = {
    "random": random_chars,
    "hex": hex_label,
    "consonant": consonant_heavy,
    "words": pseudo_words,
}


def generate_pool(
    count: int,
    *,
    family: str = "random",
    seed: int = 0,
    tlds: Sequence[str] = _TLDS,
) -> List[str]:
    """Generate a deterministic pool of ``count`` distinct DGA domains."""
    require_positive(count, "count")
    require(family in _FAMILIES, f"unknown DGA family {family!r}; "
            f"choose from {sorted(_FAMILIES)}")
    rng = np.random.default_rng(seed)
    generator = _FAMILIES[family]
    pool: List[str] = []
    seen = set()
    while len(pool) < count:
        tld = tlds[int(rng.integers(0, len(tlds)))]
        domain = generator(rng, tld=tld)
        if domain not in seen:
            seen.add(domain)
            pool.append(domain)
    return pool


def dga_families() -> List[str]:
    """Names of the available DGA families."""
    return sorted(_FAMILIES)
