"""Deprecated alias for :mod:`repro.sources.proxy`.

The proxy-log record format, (de)serialization, and the streaming
record-to-summary grouping moved to :mod:`repro.sources.proxy` so that
ingestion lives with the other log sources and the analysis layers
(``repro.core``, ``repro.filtering``, ``repro.jobs``, ``repro.sources``)
no longer depend on the synthetic-traffic package.  Importing the moved
names from here still works but emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from typing import Any, List

_MOVED = (
    "PairConfig",
    "ProxyLogRecord",
    "read_log",
    "records_to_summaries",
    "write_log",
)

__all__ = list(_MOVED)


def __getattr__(name: str) -> Any:
    if name in _MOVED:
        warnings.warn(
            f"repro.synthetic.logs.{name} moved to repro.sources.proxy; "
            "importing it from repro.synthetic.logs is deprecated",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.sources import proxy

        return getattr(proxy, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_MOVED))
