"""Proxy-log record format, serialization, and grouping.

The paper's raw input is BlueCoat ProxySG access logs stored in HDFS.
We model one log line as a :class:`ProxyLogRecord` and provide TSV
(de)serialization plus the timestamp-grouping helper that turns a flat
event stream into per-pair :class:`~repro.core.timeseries.ActivitySummary`
records — the same transformation the data-extraction MapReduce job
performs (Section VII-A).
"""

from __future__ import annotations

import gzip
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Tuple, Union

from repro.core.timeseries import ActivitySummary
from repro.utils.validation import require

_FIELDS = ("timestamp", "source_mac", "source_ip", "destination", "url", "status", "bytes_sent")

_SOURCE_FEATURES = ("mac", "ip")
_DESTINATION_FEATURES = ("domain", "registered_domain")


@dataclass(frozen=True)
class PairConfig:
    """Which endpoint features define a communication pair (Table I).

    The paper's evaluation keys pairs on (source MAC, destination
    domain): MACs survive DHCP churn where IPs do not, and domains
    survive C&C address rotation where IPs do not.  Other deployments
    key differently (no DHCP correlation available, entity-level
    aggregation wanted), so the choice is configuration:

    - ``source_feature``: ``"mac"`` (default) or ``"ip"``,
    - ``destination_feature``: ``"domain"`` (default) or
      ``"registered_domain"`` (entity aggregation for subdomain flux).
    """

    source_feature: str = "mac"
    destination_feature: str = "domain"

    def __post_init__(self) -> None:
        require(self.source_feature in _SOURCE_FEATURES,
                f"source_feature must be one of {_SOURCE_FEATURES}")
        require(self.destination_feature in _DESTINATION_FEATURES,
                f"destination_feature must be one of {_DESTINATION_FEATURES}")

    def source_of(self, record: "ProxyLogRecord") -> str:
        """The pair's source endpoint for this configuration."""
        return (
            record.source_mac
            if self.source_feature == "mac"
            else record.source_ip
        )

    def destination_of(self, record: "ProxyLogRecord") -> str:
        """The pair's destination endpoint for this configuration."""
        if self.destination_feature == "registered_domain":
            from repro.lm.domains import registered_domain

            return registered_domain(record.destination)
        return record.destination


@dataclass(frozen=True)
class ProxyLogRecord:
    """One web-proxy log line.

    ``source_mac`` is the DHCP-correlated device identity the paper
    prefers over IPs; ``destination`` is the requested domain; ``url``
    is the path+query component consumed by the token filter.
    """

    timestamp: float
    source_mac: str
    source_ip: str
    destination: str
    url: str = "/"
    status: int = 200
    bytes_sent: int = 0

    def to_line(self) -> str:
        """Serialize to a tab-separated log line."""
        return "\t".join(
            (
                f"{self.timestamp:.3f}",
                self.source_mac,
                self.source_ip,
                self.destination,
                self.url,
                str(self.status),
                str(self.bytes_sent),
            )
        )

    @classmethod
    def from_line(cls, line: str) -> "ProxyLogRecord":
        """Parse a tab-separated log line."""
        parts = line.rstrip("\n").split("\t")
        require(len(parts) == len(_FIELDS), f"malformed log line: {line!r}")
        return cls(
            timestamp=float(parts[0]),
            source_mac=parts[1],
            source_ip=parts[2],
            destination=parts[3],
            url=parts[4],
            status=int(parts[5]),
            bytes_sent=int(parts[6]),
        )


def write_log(
    records: Iterable[ProxyLogRecord],
    path: Union[str, Path],
    *,
    compress: bool = False,
) -> int:
    """Write records as TSV lines (optionally gzipped); returns the count."""
    path = Path(path)
    opener = gzip.open if compress else open
    count = 0
    with opener(path, "wt", encoding="utf-8") as handle:
        for record in records:
            handle.write(record.to_line())
            handle.write("\n")
            count += 1
    return count


def read_log(path: Union[str, Path]) -> Iterator[ProxyLogRecord]:
    """Stream records back from a (possibly gzipped) TSV log file."""
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                yield ProxyLogRecord.from_line(line)


def records_to_summaries(
    records: Iterable[ProxyLogRecord],
    *,
    time_scale: float = 1.0,
    keep_urls: bool = True,
    max_urls_per_pair: int = 64,
    aggregate_entities: bool = False,
    pair_config: Optional[PairConfig] = None,
) -> List[ActivitySummary]:
    """Group a flat record stream into per-pair activity summaries.

    The default communication pair is (source MAC, destination domain),
    matching the paper's evaluation configuration; ``pair_config``
    selects other Table I feature combinations.  Pairs with a single
    request carry no interval information but are still emitted
    (downstream filters need the popularity signal).

    ``aggregate_entities=True`` is shorthand for a pair config whose
    destination feature is the *registered* domain, so subdomain-fluxing
    C&C — whose per-FQDN pairs are sparse and aperiodic — reassembles
    into one beaconing pair (paper Challenge 2: a destination entity
    has many addresses).
    """
    if pair_config is None:
        pair_config = PairConfig(
            destination_feature=(
                "registered_domain" if aggregate_entities else "domain"
            )
        )
    grouped: Dict[Tuple[str, str], List[ProxyLogRecord]] = {}
    for record in records:
        key = (pair_config.source_of(record), pair_config.destination_of(record))
        grouped.setdefault(key, []).append(record)
    summaries = []
    for (source, destination), pair_records in grouped.items():
        pair_records.sort(key=lambda r: r.timestamp)
        urls: Tuple[str, ...] = ()
        if keep_urls:
            urls = tuple(r.url for r in pair_records[:max_urls_per_pair])
        summaries.append(
            ActivitySummary.from_timestamps(
                source,
                destination,
                [r.timestamp for r in pair_records],
                time_scale=time_scale,
                urls=urls,
            )
        )
    summaries.sort(key=lambda s: s.pair)
    return summaries
