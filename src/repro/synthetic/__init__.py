"""Synthetic traffic substrate.

Replaces the paper's proprietary BlueCoat proxy-log corpus with
deterministic generators: noise models, beacon and botnet behaviours,
DGA domain pools, benign background traffic, proxy-log records, and a
whole-enterprise simulator that returns ground truth alongside the
traffic.
"""

from repro.synthetic.noise import (
    NoiseModel,
    add_events,
    drop_events,
    gaussian_jitter,
    insert_gaps,
)
from repro.synthetic.beacon import (
    BeaconSpec,
    MultiPhaseBeaconSpec,
    Phase,
    poisson_trace,
)
from repro.synthetic.botnet import (
    BOTNET_CATALOGUE,
    conficker_spec,
    stealthy_apt_spec,
    tdss_spec,
    zeroaccess_spec,
    zeus_spec,
)
from repro.synthetic.dga import dga_families, generate_pool
from repro.synthetic.background import (
    DEFAULT_SERVICES,
    PeriodicService,
    browsing_trace,
)
from repro.sources.proxy import (
    PairConfig,
    ProxyLogRecord,
    read_log,
    records_to_summaries,
    write_log,
)
from repro.synthetic.flux import FluxBeacon, subdomain_flux_pool
from repro.synthetic.urls import (
    browsing_url,
    browsing_urls,
    gate_url,
    update_check_url,
    url_entropy,
)
from repro.synthetic.enterprise import (
    DEFAULT_IMPLANTS,
    EnterpriseConfig,
    EnterpriseSimulator,
    GroundTruth,
    ImplantSpec,
)

__all__ = [
    "NoiseModel",
    "add_events",
    "drop_events",
    "gaussian_jitter",
    "insert_gaps",
    "BeaconSpec",
    "MultiPhaseBeaconSpec",
    "Phase",
    "poisson_trace",
    "BOTNET_CATALOGUE",
    "conficker_spec",
    "stealthy_apt_spec",
    "tdss_spec",
    "zeroaccess_spec",
    "zeus_spec",
    "dga_families",
    "generate_pool",
    "DEFAULT_SERVICES",
    "PeriodicService",
    "browsing_trace",
    "FluxBeacon",
    "subdomain_flux_pool",
    "browsing_url",
    "browsing_urls",
    "gate_url",
    "update_check_url",
    "url_entropy",
    "PairConfig",
    "ProxyLogRecord",
    "read_log",
    "records_to_summaries",
    "write_log",
    "DEFAULT_IMPLANTS",
    "EnterpriseConfig",
    "EnterpriseSimulator",
    "GroundTruth",
    "ImplantSpec",
]
