"""Botnet beaconing behaviour models observed in the paper.

Each factory returns a fully configured beacon spec reproducing a
behaviour the paper reports from the wild:

- **TDSS** (Fig. 6): ~387 s dominant period with jitter and occasional
  long gaps; the interval list's minimum is around 196 s.
- **Conficker** (Fig. 2 right, Fig. 7): 7-8 s beacons for about two
  minutes, then ~3 h dormancy, repeated.
- **Zeus/Zbot** (Table VI): steady 63 s or 180 s check-ins.
- **ZeroAccess** (Table VI): slower cadence, ~1242 s.
- **Stealthy APT**: multi-hour beacons ("every 2 hours or even longer",
  Section I) with heavy jitter and drop-out.
"""

from __future__ import annotations

from repro.synthetic.beacon import BeaconSpec, MultiPhaseBeaconSpec, Phase
from repro.synthetic.noise import NoiseModel
from repro.utils.validation import require_positive

DAY = 86_400.0
HOUR = 3_600.0


def tdss_spec(duration: float = DAY, *, start: float = 0.0) -> BeaconSpec:
    """TDSS-like bot: ~387 s period, moderate jitter, sporadic drops."""
    require_positive(duration, "duration")
    return BeaconSpec(
        period=387.0,
        duration=duration,
        start=start,
        noise=NoiseModel(jitter_sigma=25.0, drop_probability=0.05),
    )


def conficker_spec(duration: float = DAY, *, start: float = 0.0) -> MultiPhaseBeaconSpec:
    """Conficker-like bot: 7.5 s bursts for 2 min, ~3 h sleeps."""
    require_positive(duration, "duration")
    return MultiPhaseBeaconSpec(
        phases=(Phase(period=7.5, length=120.0), Phase(period=3 * HOUR, length=3 * HOUR)),
        duration=duration,
        start=start,
        noise=NoiseModel(jitter_sigma=0.5),
    )


def zeus_spec(
    duration: float = DAY, *, period: float = 180.0, start: float = 0.0
) -> BeaconSpec:
    """Zeus/Zbot-like bot: steady check-ins (Table VI: 63 s and 180 s)."""
    require_positive(duration, "duration")
    require_positive(period, "period")
    return BeaconSpec(
        period=period,
        duration=duration,
        start=start,
        noise=NoiseModel(jitter_sigma=period * 0.02, drop_probability=0.02),
    )


def zeroaccess_spec(duration: float = DAY, *, start: float = 0.0) -> BeaconSpec:
    """ZeroAccess-like bot: slow 1242 s cadence (Table VI, rank 5)."""
    require_positive(duration, "duration")
    return BeaconSpec(
        period=1242.0,
        duration=duration,
        start=start,
        noise=NoiseModel(jitter_sigma=30.0, drop_probability=0.05),
    )


def stealthy_apt_spec(
    duration: float = 7 * DAY, *, period: float = 2 * HOUR, start: float = 0.0
) -> BeaconSpec:
    """Slow-and-stealthy APT implant: multi-hour beacons, heavy noise."""
    require_positive(duration, "duration")
    require_positive(period, "period")
    return BeaconSpec(
        period=period,
        duration=duration,
        start=start,
        noise=NoiseModel(jitter_sigma=period * 0.05, drop_probability=0.15),
    )


#: Catalogue of named behaviours for the enterprise simulator.
BOTNET_CATALOGUE = {
    "tdss": tdss_spec,
    "conficker": conficker_spec,
    "zeus": zeus_spec,
    "zeroaccess": zeroaccess_spec,
    "apt": stealthy_apt_spec,
}
