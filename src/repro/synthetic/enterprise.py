"""Whole-enterprise traffic simulation with ground truth.

This is the substitute for the paper's proprietary 35.6 TB proxy-log
corpus: a deterministic generator that emits
:class:`~repro.sources.proxy.ProxyLogRecord` streams for a population
of hosts mixing

- bursty benign browsing over a Zipf-popular site catalogue,
- benign periodic services (update checks, mail polling, tickers),
- malicious implants drawn from the botnet catalogue with DGA domains,

plus DHCP-style IP churn (the paper correlates MACs for exactly this
reason).  Ground truth (which destinations are malicious, which hosts
are infected) is returned alongside the records, which the paper's
evaluation had to approximate with VirusTotal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.synthetic.background import DEFAULT_SERVICES, PeriodicService, browsing_trace
from repro.synthetic.botnet import BOTNET_CATALOGUE
from repro.synthetic.dga import generate_pool
from repro.sources.proxy import ProxyLogRecord
from repro.utils.validation import require, require_positive, require_probability

DAY = 86_400.0


@dataclass(frozen=True)
class ImplantSpec:
    """A malware implant campaign inside the enterprise.

    ``behaviour`` names an entry of
    :data:`repro.synthetic.botnet.BOTNET_CATALOGUE`; ``period`` overrides
    the behaviour's default cadence where the factory supports it
    (Zeus-style).  All ``n_infected`` hosts beacon to the same DGA
    ``domain`` — multi-client destinations are what Table V reports.
    """

    name: str
    behaviour: str
    n_infected: int = 1
    period: Optional[float] = None
    dga_family: str = "random"
    url_path: str = "/gate.php"

    def __post_init__(self) -> None:
        require(self.behaviour in BOTNET_CATALOGUE,
                f"unknown behaviour {self.behaviour!r}; "
                f"choose from {sorted(BOTNET_CATALOGUE)}")
        require(self.n_infected >= 1, "n_infected must be at least 1")

    def build_spec(self, duration: float, start: float):
        """Instantiate the beacon spec for one infected host."""
        import inspect

        factory = BOTNET_CATALOGUE[self.behaviour]
        if self.period is not None:
            if "period" not in inspect.signature(factory).parameters:
                raise ValueError(
                    f"behaviour {self.behaviour!r} has a fixed cadence and "
                    "does not accept a period override"
                )
            return factory(duration, period=self.period, start=start)
        return factory(duration, start=start)


DEFAULT_IMPLANTS: Tuple[ImplantSpec, ...] = (
    ImplantSpec("zbot-fast", "zeus", n_infected=2, period=63.0),
    ImplantSpec("zbot-slow", "zeus", n_infected=1, period=180.0),
    ImplantSpec("tdss", "tdss", n_infected=3),
    ImplantSpec("zeroaccess", "zeroaccess", n_infected=1),
)


@dataclass(frozen=True)
class EnterpriseConfig:
    """Size and composition of the simulated enterprise."""

    n_hosts: int = 50
    n_sites: int = 150
    duration: float = DAY
    start: float = 0.0
    sites_per_host: Tuple[int, int] = (3, 12)
    zipf_exponent: float = 1.2
    session_rate: float = 1.0 / 3600.0
    services: Tuple[PeriodicService, ...] = DEFAULT_SERVICES
    implants: Tuple[ImplantSpec, ...] = DEFAULT_IMPLANTS
    ip_churn_probability: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        require(self.n_hosts >= 1, "n_hosts must be at least 1")
        require(self.n_sites >= 1, "n_sites must be at least 1")
        require_positive(self.duration, "duration")
        require(1 <= self.sites_per_host[0] <= self.sites_per_host[1],
                "sites_per_host must be an increasing positive range")
        require_positive(self.zipf_exponent, "zipf_exponent")
        require_positive(self.session_rate, "session_rate")
        require_probability(self.ip_churn_probability, "ip_churn_probability")


@dataclass(frozen=True)
class GroundTruth:
    """What the simulator knows that the analyst must discover."""

    malicious_destinations: frozenset
    infected_hosts: frozenset
    benign_periodic_destinations: frozenset
    implant_by_destination: Dict[str, ImplantSpec] = field(default_factory=dict)

    def label(self, destination: str) -> int:
        """1 when the destination is malicious, else 0."""
        return 1 if destination in self.malicious_destinations else 0


_SITE_WORDS = (
    "news", "shop", "video", "photo", "travel", "forum", "wiki", "code",
    "cook", "sport", "music", "cloud", "bank", "auto", "home", "art",
    "game", "learn", "health", "map", "mail", "social", "job", "book",
)


def _site_catalogue(n_sites: int, rng: np.random.Generator) -> List[str]:
    """Deterministic catalogue of plausible benign site domains."""
    sites = []
    seen = set()
    while len(sites) < n_sites:
        a, b = rng.integers(0, len(_SITE_WORDS), size=2)
        suffix = int(rng.integers(1, 100))
        domain = f"www.{_SITE_WORDS[a]}{_SITE_WORDS[b]}{suffix}.com"
        if domain not in seen:
            seen.add(domain)
            sites.append(domain)
    return sites


def _mac(index: int) -> str:
    """Stable MAC address for host ``index``."""
    return "02:00:%02x:%02x:%02x:%02x" % (
        (index >> 24) & 0xFF, (index >> 16) & 0xFF,
        (index >> 8) & 0xFF, index & 0xFF,
    )


class EnterpriseSimulator:
    """Generate a labelled proxy-log corpus for one enterprise window."""

    def __init__(self, config: Optional[EnterpriseConfig] = None) -> None:
        self.config = config or EnterpriseConfig()
        self._rng = np.random.default_rng(self.config.seed)

    # -- public API --------------------------------------------------------

    def generate(self) -> Tuple[List[ProxyLogRecord], GroundTruth]:
        """Produce the sorted record stream and its ground truth."""
        cfg = self.config
        rng = self._rng
        hosts = [_mac(i) for i in range(cfg.n_hosts)]
        sites = _site_catalogue(cfg.n_sites, rng)
        ip_plan = self._ip_plan(hosts, rng)

        records: List[ProxyLogRecord] = []
        records.extend(self._browsing_records(hosts, sites, ip_plan, rng))
        benign_periodic = self._service_records(hosts, ip_plan, rng, records)
        truth = self._implant_records(hosts, ip_plan, rng, records, benign_periodic)
        records.sort(key=lambda r: (r.timestamp, r.source_mac, r.destination))
        return records, truth

    # -- internals ----------------------------------------------------------

    def _ip_plan(
        self, hosts: Sequence[str], rng: np.random.Generator
    ) -> Dict[str, List[str]]:
        """Per-host IP address per simulated day (DHCP churn)."""
        cfg = self.config
        n_days = max(1, int(np.ceil(cfg.duration / DAY)))
        plan: Dict[str, List[str]] = {}
        next_ip = [10, 0, 0, 1]

        def allocate() -> str:
            ip = "%d.%d.%d.%d" % tuple(next_ip)
            next_ip[3] += 1
            for pos in (3, 2, 1):
                if next_ip[pos] > 254:
                    next_ip[pos] = 1
                    next_ip[pos - 1] += 1
            return ip

        for host in hosts:
            ips = [allocate()]
            for _ in range(1, n_days):
                if rng.random() < cfg.ip_churn_probability:
                    ips.append(allocate())
                else:
                    ips.append(ips[-1])
            plan[host] = ips
        return plan

    def _ip_for(self, host: str, timestamp: float, ip_plan: Dict[str, List[str]]) -> str:
        day = int((timestamp - self.config.start) // DAY)
        ips = ip_plan[host]
        return ips[min(max(day, 0), len(ips) - 1)]

    def _emit(
        self,
        records: List[ProxyLogRecord],
        host: str,
        destination: str,
        timestamps: np.ndarray,
        ip_plan: Dict[str, List[str]],
        rng: np.random.Generator,
        url,
    ) -> None:
        """Append one record per timestamp.

        ``url`` is either a fixed string or a callable ``rng -> str``
        evaluated per request (browsing paths vary; update endpoints
        do not).
        """
        for ts in timestamps:
            records.append(
                ProxyLogRecord(
                    timestamp=float(ts),
                    source_mac=host,
                    source_ip=self._ip_for(host, float(ts), ip_plan),
                    destination=destination,
                    url=url(rng) if callable(url) else url,
                    status=200,
                    bytes_sent=int(rng.integers(200, 20_000)),
                )
            )

    def _browsing_records(
        self,
        hosts: Sequence[str],
        sites: Sequence[str],
        ip_plan: Dict[str, List[str]],
        rng: np.random.Generator,
    ) -> List[ProxyLogRecord]:
        cfg = self.config
        weights = 1.0 / np.arange(1, len(sites) + 1) ** cfg.zipf_exponent
        weights /= weights.sum()
        records: List[ProxyLogRecord] = []
        low, high = cfg.sites_per_host
        for host in hosts:
            n_pairs = int(rng.integers(low, high + 1))
            chosen = rng.choice(
                len(sites), size=min(n_pairs, len(sites)), replace=False, p=weights
            )
            for site_idx in chosen:
                trace = browsing_trace(
                    cfg.duration, rng,
                    session_rate=cfg.session_rate,
                    start=cfg.start,
                )
                if trace.size == 0:
                    continue
                from repro.synthetic.urls import browsing_url

                self._emit(records, host, sites[site_idx], trace, ip_plan,
                           rng, browsing_url)
        return records

    def _service_records(
        self,
        hosts: Sequence[str],
        ip_plan: Dict[str, List[str]],
        rng: np.random.Generator,
        records: List[ProxyLogRecord],
    ) -> frozenset:
        cfg = self.config
        benign_periodic = set()
        for service in cfg.services:
            adopters = [h for h in hosts if rng.random() < service.adoption]
            if not adopters:
                continue
            benign_periodic.add(service.domain)
            for host in adopters:
                offset = float(rng.uniform(0.0, service.period))
                spec = service.beacon_spec(
                    max(cfg.duration - offset, service.period),
                    start=cfg.start + offset,
                )
                trace = spec.generate(rng)
                trace = trace[trace < cfg.start + cfg.duration]
                self._emit(records, host, service.domain, trace, ip_plan, rng,
                           service.url_path)
        return frozenset(benign_periodic)

    def _implant_records(
        self,
        hosts: Sequence[str],
        ip_plan: Dict[str, List[str]],
        rng: np.random.Generator,
        records: List[ProxyLogRecord],
        benign_periodic: frozenset,
    ) -> GroundTruth:
        cfg = self.config
        malicious: Dict[str, ImplantSpec] = {}
        infected = set()
        pool_seed = cfg.seed + 1
        for rank, implant in enumerate(cfg.implants):
            domain = generate_pool(
                rank + 1, family=implant.dga_family, seed=pool_seed
            )[rank]
            malicious[domain] = implant
            victims = rng.choice(
                len(hosts), size=min(implant.n_infected, len(hosts)), replace=False
            )
            for victim_idx in victims:
                host = hosts[int(victim_idx)]
                infected.add(host)
                offset = float(rng.uniform(0.0, min(cfg.duration / 4, 3600.0)))
                spec = implant.build_spec(
                    max(cfg.duration - offset, 1.0), cfg.start + offset
                )
                trace = spec.generate(rng)
                trace = trace[trace < cfg.start + cfg.duration]
                self._emit(records, host, domain, trace, ip_plan, rng,
                           implant.url_path)
        return GroundTruth(
            malicious_destinations=frozenset(malicious),
            infected_hosts=frozenset(infected),
            benign_periodic_destinations=benign_periodic,
            implant_by_destination=malicious,
        )
