"""Realistic URL generation for synthetic traffic.

The URL side-channel drives the token filter (Section V-A) and shows up
in analyst reports, so the synthetic traffic should carry URLs with the
same statistical texture as real traffic:

- browsing: human-readable paths with occasional query strings,
- benign periodic services: stable self-describing endpoints with
  version-ish parameters,
- C&C gates: short opaque endpoints with high-entropy parameters, or
  blob-like paths (the paper's Table V domains hide hex blobs).

All generators draw from a caller-supplied :class:`numpy.random.Generator`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.validation import require

_PAGE_WORDS = (
    "home", "news", "article", "story", "video", "gallery", "sports",
    "weather", "profile", "search", "category", "product", "item",
    "review", "comments", "archive", "tag", "topic", "help", "about",
)
_STATIC_EXTENSIONS = (".html", ".php", "", "/", ".aspx")
_QUERY_KEYS = ("id", "page", "ref", "q", "utm_source", "sort", "lang")
_HEX = "0123456789abcdef"
_B64ISH = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"


def browsing_url(rng: np.random.Generator) -> str:
    """A plausible human-browsing URL path."""
    depth = int(rng.integers(1, 4))
    words = [
        _PAGE_WORDS[int(rng.integers(0, len(_PAGE_WORDS)))]
        for _ in range(depth)
    ]
    path = "/" + "/".join(words)
    path += _STATIC_EXTENSIONS[int(rng.integers(0, len(_STATIC_EXTENSIONS)))]
    if rng.random() < 0.4:
        key = _QUERY_KEYS[int(rng.integers(0, len(_QUERY_KEYS)))]
        path += f"?{key}={int(rng.integers(1, 10_000))}"
    return path


def update_check_url(rng: np.random.Generator, *, product: str = "agent") -> str:
    """A software-update endpoint: stable path, version parameters."""
    major = int(rng.integers(1, 12))
    minor = int(rng.integers(0, 30))
    build = int(rng.integers(1000, 99_999))
    return f"/{product}/v{major}/update/check?ver={major}.{minor}&build={build}"


def gate_url(rng: np.random.Generator, *, style: str = "php") -> str:
    """A C&C gate request.

    ``style='php'`` mimics classic Zeus-era gates (``/gate.php?x=...``);
    ``style='blob'`` hides an encoded payload in the path.
    """
    require(style in ("php", "blob"), "style must be 'php' or 'blob'")
    if style == "php":
        token = "".join(
            _HEX[i] for i in rng.integers(0, len(_HEX), size=16)
        )
        return f"/gate.php?id={token}"
    blob = "".join(
        _B64ISH[i] for i in rng.integers(0, len(_B64ISH), size=32)
    )
    return f"/{blob}"


def url_entropy(url: str) -> float:
    """Shannon entropy (bits/char) of a URL — gates run hot."""
    from repro.utils.stats import shannon_entropy

    return shannon_entropy(url)


def browsing_urls(rng: np.random.Generator, count: int) -> List[str]:
    """A batch of browsing URLs."""
    require(count >= 0, "count must be non-negative")
    return [browsing_url(rng) for _ in range(count)]
