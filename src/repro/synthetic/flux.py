"""Domain-flux beaconing (paper Challenge 2).

"The destination entity can have multiple IP addresses, making it
difficult to track the context of the communication pair": modern C&C
rotates its rendezvous point across a pool of DGA names under one
registered domain (subdomain flux) or across sibling registered domains
(full domain flux).  Per-FQDN analysis then sees several sparse,
non-periodic pairs; only aggregation at the destination-*entity* level
reassembles the beacon.

:class:`FluxBeacon` generates exactly this traffic: a strict beacon
whose successive requests rotate through a domain pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.synthetic.beacon import BeaconSpec
from repro.sources.proxy import ProxyLogRecord
from repro.utils.validation import require


@dataclass(frozen=True)
class FluxBeacon:
    """A beacon rotating over a pool of destination names.

    ``domains`` is the rotation pool — for subdomain flux, generate it
    as ``[f"{label}.evil-entity.com" for label in ...]`` so all members
    share a registered domain.
    """

    spec: BeaconSpec
    domains: Tuple[str, ...]
    source_mac: str = "02:00:00:00:00:01"
    source_ip: str = "10.0.0.1"
    url: str = "/gate.php"
    rotation: str = "round-robin"

    def __post_init__(self) -> None:
        require(len(self.domains) >= 1, "domains must not be empty")
        require(self.rotation in ("round-robin", "random"),
                "rotation must be 'round-robin' or 'random'")

    def generate(self, rng: np.random.Generator) -> List[ProxyLogRecord]:
        """Proxy-log records of the fluxing beacon."""
        timestamps = self.spec.generate(rng)
        records = []
        for index, ts in enumerate(timestamps):
            if self.rotation == "round-robin":
                domain = self.domains[index % len(self.domains)]
            else:
                domain = self.domains[int(rng.integers(0, len(self.domains)))]
            records.append(
                ProxyLogRecord(
                    timestamp=float(ts),
                    source_mac=self.source_mac,
                    source_ip=self.source_ip,
                    destination=domain,
                    url=self.url,
                )
            )
        return records


def subdomain_flux_pool(
    entity: str, count: int, *, seed: int = 0
) -> List[str]:
    """A pool of random subdomains under one registered entity."""
    require(count >= 1, "count must be at least 1")
    rng = np.random.default_rng(seed)
    letters = "abcdefghijklmnopqrstuvwxyz0123456789"
    pool = []
    seen = set()
    while len(pool) < count:
        label = "".join(
            letters[i] for i in rng.integers(0, len(letters), size=12)
        )
        if label not in seen:
            seen.add(label)
            pool.append(f"{label}.{entity}")
    return pool
