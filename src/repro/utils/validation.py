"""Argument validation helpers.

Every public entry point of the library validates its inputs eagerly and
raises :class:`ValueError` (or :class:`TypeError`) with a message naming the
offending parameter.  Centralizing the checks keeps the call sites short and
the error messages uniform.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def require_in_range(
    value: float, name: str, low: float, high: float, *, inclusive: bool = True
) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high`` (or strict)."""
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is a probability in [0, 1]."""
    require_in_range(value, name, 0.0, 1.0)


def as_float_array(values: Iterable[float], name: str) -> np.ndarray:
    """Convert ``values`` to a 1-D float array, rejecting NaN and inf."""
    array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                       dtype=float)
    if array.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size and not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must not contain NaN or infinite values")
    return array


def as_sorted_timestamps(timestamps: Sequence[float], name: str = "timestamps") -> np.ndarray:
    """Convert ``timestamps`` to a sorted 1-D float array.

    Timestamps are seconds (absolute epoch or relative); duplicates are
    allowed (several requests may share a 1-second log resolution), but
    negative spacing after sorting is impossible by construction.
    """
    array = as_float_array(timestamps, name)
    if array.size == 0:
        return array
    if np.any(np.diff(array) < 0):
        array = np.sort(array)
    return array
