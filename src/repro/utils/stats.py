"""Small statistical helpers used across the pipeline.

The helpers here are deliberately dependency-light: the one-sample t-test
delegates to :mod:`scipy.stats`, entropy and compressibility operate on
plain byte strings, and :func:`percentile_threshold` implements the
"(C x m)-th highest value" rule used by the permutation filter
(paper Section IV-B).
"""

from __future__ import annotations

import gzip
import math
from collections import Counter
from typing import Iterable, Sequence

import numpy as np
from scipy import special as _special

from repro.utils.validation import as_float_array, require, require_probability


def one_sample_t_test(samples: Iterable[float], popmean: float) -> float:
    """Return the two-sided p-value of a one-sample t-test.

    Tests the null hypothesis that ``samples`` are drawn from a normal
    distribution with mean ``popmean`` (paper Section IV-C, "Hypothesis
    Testing").  Degenerate inputs are handled conservatively:

    - fewer than 2 samples: p = 1.0 (no evidence against the null),
    - zero sample variance: p = 1.0 when the sample mean equals
      ``popmean`` exactly, else p = 0.0.
    """
    array = as_float_array(samples, "samples")
    if array.size < 2:
        return 1.0
    n = array.size
    mean = float(array.mean())
    std = float(array.std(ddof=1))
    if np.isclose(std, 0.0):
        return 1.0 if math.isclose(mean, popmean, rel_tol=1e-9,
                                   abs_tol=1e-9) else 0.0
    # Direct Student-t computation (equivalent to scipy.stats.ttest_1samp
    # but without its per-call dispatch overhead — this sits on the
    # pruning hot path, millions of calls per batch run).
    t_stat = (mean - popmean) / (std / math.sqrt(n))
    return float(2.0 * _special.stdtr(n - 1, -abs(t_stat)))


def shannon_entropy(symbols: Sequence) -> float:
    """Shannon entropy (bits per symbol) of a sequence of hashable symbols."""
    if len(symbols) == 0:
        return 0.0
    counts = Counter(symbols)
    total = len(symbols)
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def gzip_compression_ratio(text: str) -> float:
    """Compression ratio of ``text`` under gzip at the highest level.

    Defined as ``compressed_size / original_size`` (smaller means more
    compressible, i.e. more regular).  The empty string has ratio 1.0 by
    convention.  Used to measure the compressibility of symbolized
    interval series (paper Table II).
    """
    data = text.encode("utf-8")
    if not data:
        return 1.0
    compressed = gzip.compress(data, compresslevel=9)
    return len(compressed) / len(data)


def percentile_threshold(values: Iterable[float], confidence: float) -> float:
    """Return the ``confidence``-level order statistic of ``values``.

    Implements the paper's permutation-threshold rule: with ``m`` values
    (one maximum power per random permutation) and confidence ``C``, the
    threshold is the ``ceil(C * m)``-th smallest value — e.g. the 19th of
    20 at C = 95%, so that a fraction ``C`` of the random maxima fall at
    or below the threshold.
    """
    require_probability(confidence, "confidence")
    array = as_float_array(values, "values")
    require(array.size > 0, "values must not be empty")
    ordered = np.sort(array)
    rank = min(array.size, max(1, math.ceil(confidence * array.size)))
    return float(ordered[rank - 1])
