"""Shared utilities: argument validation and small statistical helpers."""

from repro.utils.validation import (
    require,
    require_positive,
    require_in_range,
    require_probability,
    as_float_array,
    as_sorted_timestamps,
)
from repro.utils.stats import (
    one_sample_t_test,
    shannon_entropy,
    gzip_compression_ratio,
    percentile_threshold,
)

__all__ = [
    "require",
    "require_positive",
    "require_in_range",
    "require_probability",
    "as_float_array",
    "as_sorted_timestamps",
    "one_sample_t_test",
    "shannon_entropy",
    "gzip_compression_ratio",
    "percentile_threshold",
]
