"""Baseline periodicity detectors from the related work.

The paper positions its detector against simpler schemes (Section IX):
plain spectral thresholds, plain autocorrelation, and interval-variance
heuristics in the spirit of BotFinder (Tegeler et al.) and temporal
persistence (Giroire et al.).  We implement the three canonical
baselines so the robustness comparison can be *measured* rather than
argued:

- :class:`FftBaseline` — the strongest DFT peak wins if its power
  exceeds a fixed multiple of the mean spectral power; no permutation
  calibration, no pruning, no verification.
- :class:`AcfBaseline` — the highest autocorrelation peak (outside lag
  0) wins if it exceeds a fixed score; no spectral localization.
- :class:`CvBaseline` — BotFinder-style: the pair is periodic when the
  coefficient of variation of its inter-request intervals is below a
  threshold; the period estimate is the mean interval.

All three expose ``detect(timestamps) -> BaselineResult`` so the
comparison bench can sweep them uniformly against the BAYWATCH
detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.autocorrelation import autocorrelation
from repro.core.periodogram import power_spectrum, spectrum_frequencies
from repro.core.timeseries import bin_series, intervals_from_timestamps
from repro.utils.validation import as_sorted_timestamps, require_positive


@dataclass(frozen=True)
class BaselineResult:
    """Uniform output of the baseline detectors."""

    periodic: bool
    period: Optional[float]
    score: float
    method: str

    def periods(self) -> list:
        """Match the core detector's result surface."""
        return [self.period] if self.periodic and self.period else []


class FftBaseline:
    """Fixed-threshold periodogram peak picking."""

    def __init__(
        self,
        *,
        time_scale: float = 1.0,
        snr_threshold: float = 20.0,
        max_slots: int = 1 << 21,
    ) -> None:
        require_positive(time_scale, "time_scale")
        require_positive(snr_threshold, "snr_threshold")
        self.time_scale = time_scale
        self.snr_threshold = snr_threshold
        self.max_slots = max_slots

    def detect(self, timestamps: Sequence[float]) -> BaselineResult:
        """Report the strongest spectral peak if it clears the SNR bar."""
        ts = as_sorted_timestamps(timestamps)
        if ts.size < 4 or ts[-1] - ts[0] <= 0:
            return BaselineResult(False, None, 0.0, "fft")
        if (ts[-1] - ts[0]) / self.time_scale > self.max_slots:
            return BaselineResult(False, None, 0.0, "fft")
        signal = bin_series(ts, self.time_scale, binary=True)
        if signal.size < 8:
            return BaselineResult(False, None, 0.0, "fft")
        power = power_spectrum(signal)
        freqs = spectrum_frequencies(signal.size)
        mean_power = float(power.mean()) or 1e-12
        best = int(np.argmax(power))
        snr = float(power[best]) / mean_power
        if snr < self.snr_threshold:
            return BaselineResult(False, None, snr, "fft")
        period = self.time_scale / freqs[best]
        return BaselineResult(True, float(period), snr, "fft")


class AcfBaseline:
    """Fixed-threshold autocorrelation peak picking."""

    def __init__(
        self,
        *,
        time_scale: float = 1.0,
        min_score: float = 0.3,
        max_slots: int = 1 << 21,
    ) -> None:
        require_positive(time_scale, "time_scale")
        self.time_scale = time_scale
        self.min_score = min_score
        self.max_slots = max_slots

    def detect(self, timestamps: Sequence[float]) -> BaselineResult:
        """Report the strongest ACF lag if it clears the score bar."""
        ts = as_sorted_timestamps(timestamps)
        if ts.size < 4 or ts[-1] - ts[0] <= 0:
            return BaselineResult(False, None, 0.0, "acf")
        if (ts[-1] - ts[0]) / self.time_scale > self.max_slots:
            return BaselineResult(False, None, 0.0, "acf")
        signal = bin_series(ts, self.time_scale, binary=True)
        if signal.size < 8:
            return BaselineResult(False, None, 0.0, "acf")
        acf = autocorrelation(signal)
        # Skip lag 0 and the trivially correlated first lag.
        search = acf[2 : signal.size // 2]
        if search.size == 0:
            return BaselineResult(False, None, 0.0, "acf")
        best = int(np.argmax(search)) + 2
        score = float(acf[best])
        if score < self.min_score:
            return BaselineResult(False, None, score, "acf")
        return BaselineResult(True, best * self.time_scale, score, "acf")


class CvBaseline:
    """Interval coefficient-of-variation heuristic (BotFinder-style)."""

    def __init__(self, *, max_cv: float = 0.1, min_events: int = 4) -> None:
        require_positive(max_cv, "max_cv")
        self.max_cv = max_cv
        self.min_events = min_events

    def detect(self, timestamps: Sequence[float]) -> BaselineResult:
        """Periodic iff the intervals are nearly constant."""
        ts = as_sorted_timestamps(timestamps)
        if ts.size < self.min_events:
            return BaselineResult(False, None, float("inf"), "cv")
        intervals = intervals_from_timestamps(ts)
        intervals = intervals[intervals > 0]
        if intervals.size < 2 or intervals.mean() <= 0:
            return BaselineResult(False, None, float("inf"), "cv")
        cv = float(intervals.std() / intervals.mean())
        if cv > self.max_cv:
            return BaselineResult(False, None, cv, "cv")
        return BaselineResult(True, float(intervals.mean()), cv, "cv")
