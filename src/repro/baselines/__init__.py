"""Baseline periodicity detectors from the related work (Section IX)."""

from repro.baselines.simple import (
    AcfBaseline,
    BaselineResult,
    CvBaseline,
    FftBaseline,
)

__all__ = [
    "AcfBaseline",
    "BaselineResult",
    "CvBaseline",
    "FftBaseline",
]
