"""Local MapReduce substrate (replaces the paper's Hadoop cluster).

Same programming model — modular jobs with hash-partitioned shuffles —
executed in-process or over a multiprocessing pool, plus a partitioned
on-disk store standing in for HDFS.
"""

from repro.mapreduce.job import KeyValue, MapReduceJob, stable_hash
from repro.mapreduce.engine import JobStats, MapReduceEngine, QuarantinedTask
from repro.mapreduce.store import PartitionedStore

__all__ = [
    "KeyValue",
    "MapReduceJob",
    "stable_hash",
    "JobStats",
    "MapReduceEngine",
    "QuarantinedTask",
    "PartitionedStore",
]
