"""Local MapReduce substrate (replaces the paper's Hadoop cluster).

Same programming model — modular jobs with hash-partitioned shuffles —
executed behind a pluggable :class:`TaskExecutor` (serial inline,
worker threads for GIL-releasing kernels, a process pool, or a
multi-host shard queue drained by ``repro worker`` processes), plus a
partitioned on-disk store standing in for HDFS and a shared-memory
arena (:mod:`repro.mapreduce.shm`) that hands process workers
zero-copy pair payloads instead of pickled summaries.
"""

from repro.mapreduce.job import KeyValue, MapReduceJob, stable_hash
from repro.mapreduce.engine import JobStats, MapReduceEngine, QuarantinedTask
from repro.mapreduce.executors import (
    EXECUTOR_NAMES,
    ProcessPoolTaskExecutor,
    SerialExecutor,
    ShardQueueExecutor,
    TaskExecutor,
    TaskTimeout,
    ThreadPoolTaskExecutor,
    WorkerCrash,
    make_executor,
    run_worker,
)
from repro.mapreduce.shm import ArenaHandle, SummaryArena, SummaryView
from repro.mapreduce.store import PartitionedStore

__all__ = [
    "KeyValue",
    "MapReduceJob",
    "stable_hash",
    "JobStats",
    "MapReduceEngine",
    "QuarantinedTask",
    "EXECUTOR_NAMES",
    "TaskExecutor",
    "TaskTimeout",
    "WorkerCrash",
    "make_executor",
    "run_worker",
    "SerialExecutor",
    "ThreadPoolTaskExecutor",
    "ProcessPoolTaskExecutor",
    "ShardQueueExecutor",
    "ArenaHandle",
    "SummaryArena",
    "SummaryView",
    "PartitionedStore",
]
