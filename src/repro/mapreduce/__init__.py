"""Local MapReduce substrate (replaces the paper's Hadoop cluster).

Same programming model — modular jobs with hash-partitioned shuffles —
executed in-process or over a multiprocessing pool, plus a partitioned
on-disk store standing in for HDFS and a shared-memory arena
(:mod:`repro.mapreduce.shm`) that hands workers zero-copy pair
payloads instead of pickled summaries.
"""

from repro.mapreduce.job import KeyValue, MapReduceJob, stable_hash
from repro.mapreduce.engine import JobStats, MapReduceEngine, QuarantinedTask
from repro.mapreduce.shm import ArenaHandle, SummaryArena, SummaryView
from repro.mapreduce.store import PartitionedStore

__all__ = [
    "KeyValue",
    "MapReduceJob",
    "stable_hash",
    "JobStats",
    "MapReduceEngine",
    "QuarantinedTask",
    "ArenaHandle",
    "SummaryArena",
    "SummaryView",
    "PartitionedStore",
]
