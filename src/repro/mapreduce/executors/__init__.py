"""Pluggable execution backends for the MapReduce engine.

See :mod:`repro.mapreduce.executors.base` for the protocol and the
design notes; :func:`make_executor` builds a backend by name.
"""

from repro.mapreduce.executors.base import (
    EXECUTOR_NAMES,
    TaskExecutor,
    TaskTimeout,
    WorkerCrash,
    make_executor,
)
from repro.mapreduce.executors.local import (
    ProcessPoolTaskExecutor,
    SerialExecutor,
    ThreadPoolTaskExecutor,
)
from repro.mapreduce.executors.shardqueue import ShardQueueExecutor, run_worker

__all__ = [
    "EXECUTOR_NAMES",
    "TaskExecutor",
    "TaskTimeout",
    "WorkerCrash",
    "make_executor",
    "SerialExecutor",
    "ThreadPoolTaskExecutor",
    "ProcessPoolTaskExecutor",
    "ShardQueueExecutor",
    "run_worker",
]
