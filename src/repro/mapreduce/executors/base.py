"""The :class:`TaskExecutor` protocol: one engine, many backends.

The paper ran BAYWATCH on a 13-node Hadoop cluster; the engine's job
here is the *computation* (map/shuffle/reduce, retries, backoff,
quarantine) while the executor supplies the *mechanism* — where a task
runs and how a stuck one is put down.  Four backends implement the
protocol:

- :class:`~repro.mapreduce.executors.local.SerialExecutor` — inline,
  zero dispatch overhead, the debugging default;
- :class:`~repro.mapreduce.executors.local.ThreadPoolTaskExecutor` —
  worker threads, the right backend for the batched scipy.fft kernels
  that release the GIL (``workers=`` inside one process);
- :class:`~repro.mapreduce.executors.local.ProcessPoolTaskExecutor` —
  worker processes, full isolation, hung workers can be reaped;
- :class:`~repro.mapreduce.executors.shardqueue.ShardQueueExecutor` —
  a file-backed task queue under the checkpoint directory that any
  number of ``repro worker`` processes (local or remote, over a shared
  filesystem) drain by atomic-rename claims.

The engine speaks to all of them through four calls — :meth:`submit`,
:meth:`result`, :meth:`restart`, :meth:`close` — plus three traits:

``parallelism``
    How many tasks can genuinely run at once; 1 keeps the engine on its
    serial inline path.
``reaps_hung_tasks``
    Whether :meth:`restart` actually kills a straggler.  When True, a
    :class:`TaskTimeout` from :meth:`result` is a *hard* failure (the
    task is presumed lost; the engine restarts the backend and retries
    it).  When False (serial, threads — nothing can kill a running
    Python thread), the engine downgrades the deadline to a *soft*
    breach: warn, journal a ``task_deadline`` event, and let the task
    finish.
``in_process``
    Whether tasks share the caller's interpreter.  In-process backends
    see the ambient metrics registry / trace / journal directly, so the
    engine skips the snapshot-shipping wrapper it uses for process and
    shard-queue workers (swapping the module-global registry from a
    worker thread would race the parent's).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

__all__ = [
    "EXECUTOR_NAMES",
    "TaskExecutor",
    "TaskTimeout",
    "WorkerCrash",
    "make_executor",
]

#: The backends ``make_executor`` (and the CLI ``--executor`` flag, and
#: ``PipelineConfig.executor``) accept.
EXECUTOR_NAMES: Tuple[str, ...] = (
    "serial",
    "threads",
    "processes",
    "shard-queue",
)


class TaskTimeout(Exception):
    """A task missed its ``task_timeout`` deadline.

    From a backend with ``reaps_hung_tasks=True`` this means the task is
    presumed hung and abandoned (the engine restarts the backend and
    retries).  From a non-reaping backend it is advisory: the engine
    journals the breach and keeps waiting.
    """


class WorkerCrash(Exception):
    """A worker died mid-task (the backend itself may be broken).

    The executor-agnostic analogue of ``BrokenProcessPool``: the engine
    responds by restarting the backend, re-running lost tasks without
    charging their retry budget, and charging one attempt to the task
    the crash was observed on.
    """


class TaskExecutor:
    """Base class / protocol for engine task backends.

    Subclasses set the class traits and implement :meth:`submit`,
    :meth:`result`, :meth:`restart`, and :meth:`close`.  Handles are
    opaque to the engine — a future, a thunk, a task file name.
    """

    #: Short name used in logs, journal events, and CLI flags.
    name: str = "abstract"
    #: Tasks that can truly run concurrently (1 = serial inline path).
    parallelism: int = 1
    #: True when :meth:`restart` kills stragglers (hard deadlines).
    reaps_hung_tasks: bool = False
    #: True when tasks share the caller's interpreter (ambient telemetry).
    in_process: bool = True

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> Any:
        """Schedule ``fn(*args)``; returns an opaque handle."""
        raise NotImplementedError

    def result(self, handle: Any, timeout: Optional[float] = None) -> Any:
        """Await one handle.

        Raises the task's own exception if it failed,
        :class:`TaskTimeout` if it missed ``timeout`` seconds, or
        :class:`WorkerCrash` if its worker died.
        """
        raise NotImplementedError

    def restart(self, reason: str) -> None:
        """Tear the backend down — killing stragglers where the backend
        can — so the next :meth:`submit` starts clean.

        This is the *public* kill-children contract: the engine calls it
        on crashes and hard timeouts and may immediately resubmit the
        surviving work.  Backends that cannot kill (threads) discard the
        pool and leak the stragglers, which is still safe — they hold no
        engine state.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (idempotent)."""
        raise NotImplementedError

    @property
    def active(self) -> bool:
        """True once the backend has lazily spun up its resources."""
        return False

    def __enter__(self) -> "TaskExecutor":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} parallelism={self.parallelism}>"


def make_executor(
    name: str,
    *,
    n_workers: int = 1,
    queue_dir: Optional[str] = None,
    claim_ttl: float = 30.0,
    poll_interval: float = 0.05,
) -> TaskExecutor:
    """Build a backend by name (see :data:`EXECUTOR_NAMES`).

    ``n_workers`` sizes the thread/process pools; for the shard queue it
    is the *expected* worker-fleet size (used only for the parallelism
    trait — actual workers are whatever ``repro worker`` processes are
    pointed at the queue).  ``queue_dir``/``claim_ttl``/``poll_interval``
    apply to the shard queue only; a queue left unbound here is bound by
    the sharded runner to ``<checkpoint-dir>/queue``.
    """
    from repro.mapreduce.executors.local import (
        ProcessPoolTaskExecutor,
        SerialExecutor,
        ThreadPoolTaskExecutor,
    )
    from repro.mapreduce.executors.shardqueue import ShardQueueExecutor

    if name == "serial":
        return SerialExecutor()
    if name == "threads":
        return ThreadPoolTaskExecutor(n_workers)
    if name == "processes":
        return ProcessPoolTaskExecutor(n_workers)
    if name == "shard-queue":
        return ShardQueueExecutor(
            queue_dir,
            parallelism=max(2, n_workers),
            claim_ttl=claim_ttl,
            poll_interval=poll_interval,
        )
    raise ValueError(
        f"unknown executor {name!r}; known: {', '.join(EXECUTOR_NAMES)}"
    )
