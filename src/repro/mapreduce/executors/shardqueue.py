"""Multi-host execution over a shared filesystem: the shard queue.

The paper's 13-node Hadoop deployment distributed detection tasks over
a cluster; this backend reproduces the *operational* shape with nothing
but a directory every participant can reach (the PR 3 checkpoint
directory — NFS at enterprise scale, ``tmp_path`` under test):

- the engine (the coordinator) pickles each task into
  ``<queue>/tasks/<name>`` with an atomic tmp-write-then-rename;
- any number of ``repro worker`` processes — local or on other hosts —
  *claim* a task by ``os.rename``-ing it into ``<queue>/claims/``
  (rename is atomic on POSIX: exactly one claimant wins, losers get
  ``FileNotFoundError`` and move on);
- a worker refreshes its claim's mtime while the task runs (a lease),
  writes the outcome into ``<queue>/results/<name>`` atomically, and
  only then drops the claim;
- the coordinator polls for results; a claim whose mtime goes stale by
  ``claim_ttl`` means its worker died mid-task — the claim is renamed
  back into ``tasks/`` (journalled as ``claim_expired``) and another
  worker simply picks it up.  A crashed worker therefore costs one
  lease, not the run.

A task whose claim expires ``max_claim_expiries`` times is reported as
a :class:`~repro.mapreduce.executors.base.WorkerCrash` so the engine's
ordinary retry/quarantine budget takes over (otherwise a task that
kills every worker it touches would ping-pong forever).

Task names are never reused (per-coordinator nonce + sequence), so a
zombie worker finishing an abandoned task writes an orphan result file
that nothing ever reads — harmless, and cleared on :meth:`close`.
"""

from __future__ import annotations

import logging
import os
import pickle
import threading
import time
from typing import Any, Callable, Optional

from repro.mapreduce.executors.base import TaskExecutor, TaskTimeout, WorkerCrash
from repro.obs import journal_emit
from repro.utils.validation import require

__all__ = ["ShardQueueExecutor", "run_worker"]

logger = logging.getLogger(__name__)

#: Subdirectories of a queue directory.
TASKS_DIR = "tasks"
CLAIMS_DIR = "claims"
RESULTS_DIR = "results"
#: Sentinel file telling idle workers to exit.
STOP_FILE = "stop"


def _write_atomic(path: str, payload: bytes) -> None:
    """tmp-write + ``os.replace``: readers never see a torn file."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _dump_outcome(status: str, value: Any) -> bytes:
    """Pickle a result record, degrading unpicklable exceptions."""
    try:
        return pickle.dumps((status, value), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return pickle.dumps(
            ("error", RuntimeError(f"unpicklable task outcome: {value!r}")),
            protocol=pickle.HIGHEST_PROTOCOL,
        )


class ShardQueueExecutor(TaskExecutor):
    """Coordinator side of the file-backed multi-host task queue.

    ``parallelism`` is the *expected* fleet size (it only gates the
    engine's go-parallel decision); the true concurrency is however
    many ``repro worker`` processes are pointed at the queue.  The
    queue directory may be given up front or bound later — the sharded
    runner binds an unbound queue to ``<checkpoint-dir>/queue`` so the
    CLI flow is just ``repro run --executor shard-queue
    --checkpoint-dir DIR`` plus N ``repro worker --checkpoint-dir DIR``
    processes.
    """

    name = "shard-queue"
    reaps_hung_tasks = True
    in_process = False

    def __init__(
        self,
        queue_dir: Optional[str] = None,
        *,
        parallelism: int = 2,
        claim_ttl: float = 30.0,
        poll_interval: float = 0.05,
        max_claim_expiries: int = 3,
    ) -> None:
        require(parallelism >= 1, "parallelism must be at least 1")
        require(claim_ttl > 0, "claim_ttl must be positive")
        require(poll_interval > 0, "poll_interval must be positive")
        self.parallelism = parallelism
        self.claim_ttl = claim_ttl
        self.poll_interval = poll_interval
        self.max_claim_expiries = max_claim_expiries
        self.queue_dir: Optional[str] = None
        self._seq = 0
        self._nonce = f"{os.getpid():x}"
        self._expiries: dict = {}
        if queue_dir is not None:
            self.bind(str(queue_dir))

    # -- binding -------------------------------------------------------------

    @property
    def bound(self) -> bool:
        return self.queue_dir is not None

    @property
    def active(self) -> bool:
        return self.bound

    def bind(self, queue_dir: str) -> None:
        """Attach to (and create) the queue directory tree."""
        self.queue_dir = str(queue_dir)
        for sub in (TASKS_DIR, CLAIMS_DIR, RESULTS_DIR):
            os.makedirs(os.path.join(self.queue_dir, sub), exist_ok=True)
        # A previous run's stop sentinel must not stall fresh workers.
        try:
            os.unlink(os.path.join(self.queue_dir, STOP_FILE))
        except FileNotFoundError:
            pass

    def _path(self, sub: str, name: str = "") -> str:
        if self.queue_dir is None:
            raise RuntimeError(
                "shard-queue executor is not bound to a queue directory; "
                "run through run_sharded with checkpoint_dir (the runner "
                "binds <checkpoint-dir>/queue) or call bind() first"
            )
        return os.path.join(self.queue_dir, sub, name)

    # -- coordinator protocol --------------------------------------------------

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> Any:
        self._seq += 1
        name = f"task-{self._nonce}-{self._seq:06d}"
        payload = pickle.dumps((fn, args), protocol=pickle.HIGHEST_PROTOCOL)
        _write_atomic(self._path(TASKS_DIR, name), payload)
        return name

    def result(self, handle: Any, timeout: Optional[float] = None) -> Any:
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        result_path = self._path(RESULTS_DIR, handle)
        claim_path = self._path(CLAIMS_DIR, handle)
        task_path = self._path(TASKS_DIR, handle)
        while True:
            try:
                with open(result_path, "rb") as handle_file:
                    status, value = pickle.load(handle_file)
            except FileNotFoundError:
                pass
            else:
                os.unlink(result_path)
                self._expiries.pop(handle, None)
                if status == "error":
                    raise value
                return value
            self._expire_if_stale(handle, claim_path, task_path)
            if deadline is not None and time.monotonic() > deadline:
                raise TaskTimeout(
                    f"shard-queue task {handle} unfinished after {timeout}s"
                )
            time.sleep(self.poll_interval)

    def _expire_if_stale(
        self, handle: Any, claim_path: str, task_path: str
    ) -> None:
        """Requeue a claim whose worker stopped renewing the lease."""
        try:
            age = time.time() - os.stat(claim_path).st_mtime
        except FileNotFoundError:
            return
        if age <= self.claim_ttl:
            return
        try:
            os.rename(claim_path, task_path)
        except FileNotFoundError:
            return  # the worker finished (or another poller requeued) first
        count = self._expiries[handle] = self._expiries.get(handle, 0) + 1
        logger.warning(
            "shard-queue claim on %s expired after %.1fs (lease %d of %d); "
            "requeued", handle, age, count, self.max_claim_expiries,
        )
        journal_emit(
            "claim_expired", task=str(handle), age=round(age, 3), lease=count
        )
        if count >= self.max_claim_expiries:
            try:
                os.unlink(task_path)
            except FileNotFoundError:
                pass
            self._expiries.pop(handle, None)
            raise WorkerCrash(
                f"shard-queue task {handle} lost {count} workers in a row"
            )

    def restart(self, reason: str) -> None:
        """Abandon all outstanding work: the engine resubmits what it
        still needs, so queued tasks, live claims, and unread results
        are cleared (a zombie worker mid-task will write an orphan
        result nothing reads)."""
        if not self.bound:
            return
        cleared = 0
        for sub in (TASKS_DIR, CLAIMS_DIR, RESULTS_DIR):
            directory = self._path(sub)
            for name in os.listdir(directory):
                try:
                    os.unlink(os.path.join(directory, name))
                    cleared += 1
                except FileNotFoundError:
                    continue
        self._expiries = {}
        logger.warning(
            "shard queue cleared (%s): %d outstanding entr%s dropped",
            reason, cleared, "y" if cleared == 1 else "ies",
        )

    def close(self) -> None:
        """Raise the stop sentinel so idle workers drain and exit."""
        if not self.bound:
            return
        _write_atomic(self._path("", STOP_FILE).rstrip(os.sep), b"stop\n")


# -- worker side ---------------------------------------------------------------


def _claim_next(queue_dir: str) -> Optional[str]:
    """Claim the lexically first queued task; None when there is none."""
    tasks = os.path.join(queue_dir, TASKS_DIR)
    try:
        names = sorted(os.listdir(tasks))
    except FileNotFoundError:
        return None
    for name in names:
        if name.endswith(".tmp") or ".tmp." in name:
            continue
        try:
            os.rename(
                os.path.join(tasks, name),
                os.path.join(queue_dir, CLAIMS_DIR, name),
            )
        except FileNotFoundError:
            continue  # another worker won the rename
        return name
    return None


class _Lease(threading.Thread):
    """Daemon thread refreshing a claim's mtime while the task runs."""

    def __init__(self, claim_path: str, interval: float) -> None:
        super().__init__(daemon=True, name="shard-queue-lease")
        self.claim_path = claim_path
        self.interval = interval
        # Not ``_stop``: the Thread base class owns that name.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            try:
                os.utime(self.claim_path)
            except OSError:
                return  # claim withdrawn (coordinator restart): stop renewing

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=2.0)


def run_worker(
    queue_dir: str,
    *,
    poll_interval: float = 0.2,
    idle_exit: Optional[float] = None,
    max_tasks: Optional[int] = None,
    claim_ttl: float = 30.0,
    journal: Any = None,
) -> int:
    """Drain tasks from ``queue_dir`` until told (or left) to stop.

    The body of ``repro worker``: claim by atomic rename, renew the
    claim lease every ``claim_ttl / 4`` seconds, execute the pickled
    ``(fn, args)`` payload, write the outcome atomically, drop the
    claim.  Exits when the coordinator's stop sentinel appears, after
    ``idle_exit`` seconds without work, or after ``max_tasks`` tasks;
    returns how many tasks it ran.  A worker SIGKILLed mid-task leaves
    its claim to expire — recovery is entirely the coordinator's.

    ``journal`` (an :class:`~repro.obs.journal.EventJournal`) records
    ``worker_task`` pickups; per-task heartbeats ride inside the
    payload when the coordinating engine has a journal active.
    """
    queue_dir = str(queue_dir)
    stop_path = os.path.join(queue_dir, STOP_FILE)
    lease_interval = max(claim_ttl / 4.0, 0.01)
    processed = 0
    idle_since = time.monotonic()
    while True:
        if max_tasks is not None and processed >= max_tasks:
            break
        name = _claim_next(queue_dir)
        if name is None:
            if os.path.exists(stop_path):
                break
            if (
                idle_exit is not None
                and time.monotonic() - idle_since > idle_exit
            ):
                break
            time.sleep(poll_interval)
            continue
        claim_path = os.path.join(queue_dir, CLAIMS_DIR, name)
        if journal is not None:
            journal.append("worker_task", worker=os.getpid(), task=name)
        lease = _Lease(claim_path, lease_interval)
        lease.start()
        try:
            try:
                with open(claim_path, "rb") as handle:
                    fn, args = pickle.load(handle)
            except FileNotFoundError:
                continue  # claim withdrawn by a coordinator restart
            try:
                payload = _dump_outcome("ok", fn(*args))
            except Exception as exc:  # ship the failure to the coordinator
                payload = _dump_outcome("error", exc)
        finally:
            lease.stop()
        if os.path.exists(claim_path):
            _write_atomic(os.path.join(queue_dir, RESULTS_DIR, name), payload)
            try:
                os.unlink(claim_path)
            except FileNotFoundError:
                pass
        processed += 1
        idle_since = time.monotonic()
    return processed
