"""Single-host executors: serial, thread pool, process pool.

All three live behind the :class:`~repro.mapreduce.executors.base.TaskExecutor`
protocol so the engine's fault tolerance (retry rounds, backoff,
quarantine, backend restarts) is identical across them; only the
dispatch mechanism differs.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Optional, Set

from repro.mapreduce.executors.base import TaskExecutor, TaskTimeout, WorkerCrash
from repro.utils.validation import require

__all__ = [
    "ProcessPoolTaskExecutor",
    "SerialExecutor",
    "ThreadPoolTaskExecutor",
]

logger = logging.getLogger(__name__)


class SerialExecutor(TaskExecutor):
    """Run tasks inline in the caller — zero overhead, full debugger.

    ``parallelism == 1`` keeps the engine on its serial path (which
    handles retries, quarantine, and the soft ``task_timeout`` check
    itself), so :meth:`submit`/:meth:`result` exist only for protocol
    completeness: a handle is a deferred thunk, awaited by running it.
    """

    name = "serial"
    parallelism = 1
    reaps_hung_tasks = False
    in_process = True

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> Any:
        return (fn, args)

    def result(self, handle: Any, timeout: Optional[float] = None) -> Any:
        fn, args = handle
        return fn(*args)

    def restart(self, reason: str) -> None:
        """Nothing to tear down; the caller is the worker."""

    def close(self) -> None:
        pass


class ThreadPoolTaskExecutor(TaskExecutor):
    """A ``ThreadPoolExecutor`` backend for GIL-releasing kernels.

    The batched detection path spends its time inside scipy.fft /
    numpy linalg calls that drop the GIL, so worker *threads* scale
    it across cores without pickling jobs or records.  Threads cannot
    be killed: ``reaps_hung_tasks`` is False, a :class:`TaskTimeout`
    from :meth:`result` is advisory (the engine warns, journals, and
    keeps waiting), and :meth:`restart` abandons the old pool — the
    stragglers finish (or leak) harmlessly on daemon threads.
    """

    name = "threads"
    reaps_hung_tasks = False
    in_process = True

    def __init__(self, n_workers: int = 2) -> None:
        require(n_workers >= 1, "n_workers must be at least 1")
        self.parallelism = n_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _get_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.parallelism,
                thread_name_prefix="mapreduce-task",
            )
        return self._pool

    @property
    def active(self) -> bool:
        return self._pool is not None

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> Any:
        return self._get_pool().submit(fn, *args)

    def result(self, handle: Any, timeout: Optional[float] = None) -> Any:
        try:
            return handle.result(timeout=timeout)
        except FuturesTimeout:
            raise TaskTimeout(
                f"thread task still running after {timeout}s"
            ) from None

    def restart(self, reason: str) -> None:
        """Discard the pool; running threads cannot be killed and are
        left to drain (they hold no engine state)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            logger.warning(
                "thread pool discarded (%s); running threads cannot be "
                "reaped and will finish in the background", reason,
            )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


def _register_worker_pid(pid_queue: Any) -> None:
    """Pool initializer: report this worker's pid to the parent.

    Runs once per worker process before any task.  The parent drains
    the queue whenever it needs the fleet roster — the *public* basis
    for :meth:`ProcessPoolTaskExecutor.restart`'s kill-children
    contract (``ProcessPoolExecutor`` offers no supported way to
    enumerate its workers).
    """
    pid_queue.put(os.getpid())


class ProcessPoolTaskExecutor(TaskExecutor):
    """The classic backend: a lazily created ``ProcessPoolExecutor``.

    Worker pids are collected through a pool *initializer* (a public
    ``ProcessPoolExecutor`` hook) into a ``multiprocessing.SimpleQueue``
    so :meth:`restart` can put hung workers down without touching the
    pool's private ``_processes`` map.  A crash surfaces as
    :class:`WorkerCrash`, a missed deadline as :class:`TaskTimeout`;
    both are hard here (``reaps_hung_tasks=True``).
    """

    name = "processes"
    reaps_hung_tasks = True
    in_process = False

    def __init__(self, n_workers: int = 2) -> None:
        require(n_workers >= 1, "n_workers must be at least 1")
        self.parallelism = n_workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pid_queue: Optional[Any] = None
        self._worker_pids: Set[int] = set()

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # Fresh queue per pool generation: pids registered by a
            # previous (killed) pool can never leak into this roster.
            self._pid_queue = multiprocessing.SimpleQueue()
            self._worker_pids = set()
            self._pool = ProcessPoolExecutor(
                max_workers=self.parallelism,
                initializer=_register_worker_pid,
                initargs=(self._pid_queue,),
            )
        return self._pool

    @property
    def active(self) -> bool:
        return self._pool is not None

    def _drain_roster(self) -> Set[int]:
        """Fold newly registered worker pids into the roster."""
        queue = self._pid_queue
        if queue is not None:
            while not queue.empty():
                self._worker_pids.add(queue.get())
        return self._worker_pids

    def worker_pids(self) -> Set[int]:
        """Pids of every worker the current pool has started."""
        return set(self._drain_roster())

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> Any:
        return self._get_pool().submit(fn, *args)

    def result(self, handle: Any, timeout: Optional[float] = None) -> Any:
        try:
            return handle.result(timeout=timeout)
        except BrokenProcessPool as exc:
            raise WorkerCrash(str(exc) or "worker process died") from exc
        except FuturesTimeout:
            raise TaskTimeout(
                f"worker still running after {timeout}s"
            ) from None

    def restart(self, reason: str) -> None:
        """Kill every worker of the current pool and discard it.

        ``shutdown`` alone would wait forever on a hung worker, so each
        registered worker is SIGKILLed (and reaped) explicitly.  The
        next :meth:`submit` builds a fresh pool with a fresh roster.
        """
        if self._pool is None:
            return
        pids = self._drain_roster()
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None
        self._pid_queue = None
        for pid in pids:
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                continue
        for pid in pids:
            try:
                os.waitpid(pid, 0)
            except (ChildProcessError, OSError):
                # Already reaped by the pool's own machinery.
                pass
        self._worker_pids = set()
        logger.warning(
            "process pool killed and discarded (%s): %d worker(s)",
            reason, len(pids),
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pid_queue = None
            self._worker_pids = set()
