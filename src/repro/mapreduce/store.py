"""Partitioned on-disk record store (the HDFS stand-in).

The paper persists each phase's output in HDFS so later phases (and the
next day's run) never reprocess raw logs.  :class:`PartitionedStore`
provides the same contract locally: records are appended to hash
partitions under a directory and read back partition by partition.

Two on-disk encodings coexist, distinguished per record frame:

* the legacy pickle stream — one pickle per record, appended; and
* **packed frames** — when the store is built with a ``packer``, each
  ``write`` call emits one framed columnar blob per partition
  (``magic + length + payload``) instead of per-record pickles.

The read path dispatches on the frame header, so a packed store reads
partitions written by older pickle-only code (and files that mix both,
e.g. a day appended before and after an upgrade) without migration.
"""

from __future__ import annotations

import pickle
import struct
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Union

from repro.mapreduce.job import stable_hash
from repro.utils.validation import require

#: Frame header of a packed batch.  Pickle records written by any
#: supported protocol start with ``b"\x80"``, so the first byte alone
#: disambiguates the two encodings at every record boundary.
PACKED_MAGIC = b"BAYPACK1"
_LENGTH = struct.Struct("<Q")


class RecordPacker:
    """Codec contract for packed frames (see :class:`PartitionedStore`).

    Implementations turn a *batch* of records into one contiguous blob
    and back.  The store never interprets the payload — it only frames
    it — so packers are free to use any columnar layout.
    """

    def pack(self, records: List[Any]) -> bytes:
        """One batch of records -> an opaque payload blob."""
        raise NotImplementedError

    def unpack(self, payload: bytes) -> List[Any]:
        """Inverse of :meth:`pack`."""
        raise NotImplementedError


class PartitionedStore:
    """Append-only partitioned storage for picklable records.

    ``packer`` switches writes to packed frames: one columnar blob per
    partition per ``write`` call rather than one pickle per record.
    Reading stays format-agnostic — pickle records and packed frames
    are recognised per frame — but decoding a packed frame requires a
    packer, so only a packer-configured store can read packed files.
    """

    def __init__(
        self,
        root: Union[str, Path],
        n_partitions: int = 32,
        *,
        packer: "RecordPacker | None" = None,
    ) -> None:
        require(n_partitions >= 1, "n_partitions must be at least 1")
        self.root = Path(root)
        self.n_partitions = n_partitions
        self.packer = packer
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, partition: int) -> Path:
        return self.root / f"part-{partition:05d}.pkl"

    def write(self, records: Iterable[Any], key_of=lambda record: record) -> int:
        """Append records, routing each by ``stable_hash(key_of(record))``.

        Returns the number of records written.
        """
        if self.packer is not None:
            return self._write_packed(records, key_of)
        handles = {}
        count = 0
        try:
            for record in records:
                partition = stable_hash(key_of(record)) % self.n_partitions
                handle = handles.get(partition)
                if handle is None:
                    handle = self._path(partition).open("ab")
                    handles[partition] = handle
                pickle.dump(record, handle)
                count += 1
        finally:
            for handle in handles.values():
                handle.close()
        return count

    def _write_packed(self, records: Iterable[Any], key_of) -> int:
        """Bucket records per partition, then append one frame each."""
        buckets: Dict[int, List[Any]] = {}
        count = 0
        for record in records:
            partition = stable_hash(key_of(record)) % self.n_partitions
            buckets.setdefault(partition, []).append(record)
            count += 1
        for partition, batch in buckets.items():
            payload = self.packer.pack(batch)
            with self._path(partition).open("ab") as handle:
                handle.write(PACKED_MAGIC)
                handle.write(_LENGTH.pack(len(payload)))
                handle.write(payload)
        return count

    def read_partition(self, partition: int) -> Iterator[Any]:
        """Stream the records of one partition (empty if absent)."""
        require(0 <= partition < self.n_partitions, "partition out of range")
        path = self._path(partition)
        if not path.exists():
            return
        with path.open("rb") as handle:
            while True:
                head = handle.read(len(PACKED_MAGIC))
                if not head:
                    break
                if head == PACKED_MAGIC:
                    raw = handle.read(_LENGTH.size)
                    if len(raw) != _LENGTH.size:
                        raise ValueError(f"truncated packed frame in {path}")
                    (length,) = _LENGTH.unpack(raw)
                    payload = handle.read(length)
                    if len(payload) != length:
                        raise ValueError(f"truncated packed frame in {path}")
                    if self.packer is None:
                        raise ValueError(
                            f"{path} contains packed frames but this store "
                            f"has no packer configured to decode them"
                        )
                    yield from self.packer.unpack(payload)
                else:
                    handle.seek(-len(head), 1)
                    try:
                        yield pickle.load(handle)
                    except EOFError:
                        break

    def read_all(self) -> Iterator[Any]:
        """Stream every record, partition by partition."""
        for partition in range(self.n_partitions):
            yield from self.read_partition(partition)

    def partition_sizes(self) -> List[int]:
        """On-disk bytes per partition (0 for absent partitions)."""
        return [
            self._path(p).stat().st_size if self._path(p).exists() else 0
            for p in range(self.n_partitions)
        ]

    def clear(self) -> None:
        """Delete all partitions."""
        for partition in range(self.n_partitions):
            path = self._path(partition)
            if path.exists():
                path.unlink()
