"""Partitioned on-disk record store (the HDFS stand-in).

The paper persists each phase's output in HDFS so later phases (and the
next day's run) never reprocess raw logs.  :class:`PartitionedStore`
provides the same contract locally: records are appended to hash
partitions under a directory, each partition a pickle-stream file, and
read back partition by partition.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any, Iterable, Iterator, List, Union

from repro.mapreduce.job import stable_hash
from repro.utils.validation import require


class PartitionedStore:
    """Append-only partitioned storage for picklable records."""

    def __init__(self, root: Union[str, Path], n_partitions: int = 32) -> None:
        require(n_partitions >= 1, "n_partitions must be at least 1")
        self.root = Path(root)
        self.n_partitions = n_partitions
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, partition: int) -> Path:
        return self.root / f"part-{partition:05d}.pkl"

    def write(self, records: Iterable[Any], key_of=lambda record: record) -> int:
        """Append records, routing each by ``stable_hash(key_of(record))``.

        Returns the number of records written.
        """
        handles = {}
        count = 0
        try:
            for record in records:
                partition = stable_hash(key_of(record)) % self.n_partitions
                handle = handles.get(partition)
                if handle is None:
                    handle = self._path(partition).open("ab")
                    handles[partition] = handle
                pickle.dump(record, handle)
                count += 1
        finally:
            for handle in handles.values():
                handle.close()
        return count

    def read_partition(self, partition: int) -> Iterator[Any]:
        """Stream the records of one partition (empty if absent)."""
        require(0 <= partition < self.n_partitions, "partition out of range")
        path = self._path(partition)
        if not path.exists():
            return
        with path.open("rb") as handle:
            while True:
                try:
                    yield pickle.load(handle)
                except EOFError:
                    break

    def read_all(self) -> Iterator[Any]:
        """Stream every record, partition by partition."""
        for partition in range(self.n_partitions):
            yield from self.read_partition(partition)

    def partition_sizes(self) -> List[int]:
        """On-disk bytes per partition (0 for absent partitions)."""
        return [
            self._path(p).stat().st_size if self._path(p).exists() else 0
            for p in range(self.n_partitions)
        ]

    def clear(self) -> None:
        """Delete all partitions."""
        for partition in range(self.n_partitions):
            path = self._path(partition)
            if path.exists():
                path.unlink()
