"""Shared-memory summary arena: zero-copy pair payloads for workers.

The engine pickles the job plus its inputs into every worker task.  For
detection over millions of pairs that means serializing every
:class:`~repro.core.timeseries.ActivitySummary` — interval tuples,
URLs, endpoint strings — once per task.  The arena replaces that with a
``multiprocessing.shared_memory`` handoff:

- the *creator* (the runner process) packs all summaries into one
  segment of flat arrays (:meth:`SummaryArena.pack`) and sends workers
  only ``(pair, index)`` inputs plus a tiny picklable
  :class:`ArenaHandle`;
- each *worker* attaches lazily (:meth:`SummaryArena.attach`) and reads
  summaries as :class:`SummaryView` objects — array slices over the
  shared buffer, no copies, duck-typed for everything detection needs
  (``time_scale``, ``timestamps()``, the pair endpoints) and able to
  :meth:`~SummaryView.materialize` a real ``ActivitySummary`` for the
  few results that ship back.

Lifecycle: the creator owns the segment — it unlinks in a ``finally``
once the engine run returns, so the segment never outlives its batch.
Workers never unlink: on Python < 3.13 merely *attaching* registers the
segment with the worker's ``resource_tracker``, whose exit-time cleanup
would unlink it out from under everyone else, so :func:`attach_segment`
immediately unregisters.  A worker killed mid-task therefore cannot
leak or destroy the segment; a creator that crashes still gets
exit-time cleanup from its own resource tracker.
"""

from __future__ import annotations

import os
import uuid
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.timeseries import ActivitySummary, timestamps_from_intervals

__all__ = [
    "ArenaHandle",
    "SEGMENT_PREFIX",
    "SummaryArena",
    "SummaryView",
    "attach_segment",
]

#: Every arena segment name starts with this, so tests (and operators
#: inspecting /dev/shm) can attribute segments to this code.
SEGMENT_PREFIX = "baywatch-"


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without claiming ownership.

    Python < 3.13 registers every ``SharedMemory`` — attachments
    included — with a resource tracker.  For a worker borrowing the
    creator's segment that is wrong twice over: under ``spawn`` the
    worker's own tracker would unlink the segment when the worker
    exits, and under ``fork`` (where workers share the creator's
    tracker) an unregister-after-attach repair would strip the
    *creator's* registration instead.  Suppressing registration for
    the duration of the attach sidesteps both: the tracker state is
    exactly as if only the creator had ever touched the segment.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class ArenaHandle:
    """Everything a worker needs to attach: segment name plus shapes.

    A few dozen bytes, pickled with the job — the "small header" that
    replaces the per-task summary payloads.
    """

    name: str
    count: int
    n_intervals: int
    n_urls: int
    pair_bytes: int
    url_bytes: int


def _segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid():x}-{uuid.uuid4().hex[:12]}"


class SummaryArena:
    """A batch of activity summaries packed into one shm segment.

    Layout (all sections 8-byte aligned, sizes fixed by the handle):

    ========================  =========  =====================================
    section                   dtype      meaning
    ========================  =========  =====================================
    ``time_scale``            f8[n]      per-summary time scale
    ``first_timestamp``       f8[n]      per-summary first timestamp
    ``interval_offsets``      i8[n+1]    summary i's intervals are
                                         ``intervals[o[i]:o[i+1]]``
    ``url_group_offsets``     i8[n+1]    summary i's URLs are entries
                                         ``o[i]:o[i+1]`` of ``url_offsets``
    ``pair_offsets``          i8[2n+1]   byte offsets into ``pair_blob``
                                         (source i at ``2i``, dest at ``2i+1``)
    ``url_offsets``           i8[u+1]    byte offsets into ``url_blob``
    ``intervals``             f8[total]  all interval lists, concatenated
    ``pair_blob``             u1[...]    utf-8 of all sources/destinations
    ``url_blob``              u1[...]    utf-8 of all URLs
    ========================  =========  =====================================
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        handle: ArenaHandle,
        *,
        owner: bool,
    ) -> None:
        self._segment: Optional[shared_memory.SharedMemory] = segment
        self._handle = handle
        self._owner = owner
        buf = segment.buf
        n = handle.count
        offset = 0

        def section(dtype: str, length: int) -> np.ndarray:
            nonlocal offset
            array = np.ndarray(
                (length,), dtype=dtype, buffer=buf, offset=offset
            )
            offset += array.nbytes
            return array

        self.time_scale = section("f8", n)
        self.first_timestamp = section("f8", n)
        self.interval_offsets = section("i8", n + 1)
        self.url_group_offsets = section("i8", n + 1)
        self.pair_offsets = section("i8", 2 * n + 1)
        self.url_offsets = section("i8", handle.n_urls + 1)
        self.intervals = section("f8", handle.n_intervals)
        self.pair_blob = section("u1", handle.pair_bytes)
        self.url_blob = section("u1", handle.url_bytes)

    # -- construction ------------------------------------------------------

    @classmethod
    def pack(cls, summaries: Sequence[ActivitySummary]) -> "SummaryArena":
        """Create a segment holding ``summaries``; the caller owns it."""
        n = len(summaries)
        interval_counts = [len(s.intervals) for s in summaries]
        url_counts = [len(s.urls) for s in summaries]
        pair_parts: List[bytes] = []
        for summary in summaries:
            pair_parts.append(summary.source.encode("utf-8"))
            pair_parts.append(summary.destination.encode("utf-8"))
        url_parts = [
            url.encode("utf-8") for s in summaries for url in s.urls
        ]
        handle = ArenaHandle(
            name=_segment_name(),
            count=n,
            n_intervals=sum(interval_counts),
            n_urls=sum(url_counts),
            pair_bytes=sum(len(p) for p in pair_parts),
            url_bytes=sum(len(p) for p in url_parts),
        )
        total = (
            8 * (2 * n)                      # time_scale + first_timestamp
            + 8 * (2 * (n + 1))              # interval/url group offsets
            + 8 * (2 * n + 1)                # pair offsets
            + 8 * (handle.n_urls + 1)        # url offsets
            + 8 * handle.n_intervals
            + handle.pair_bytes
            + handle.url_bytes
        )
        segment = shared_memory.SharedMemory(
            name=handle.name, create=True, size=max(1, total)
        )
        arena = cls(segment, handle, owner=True)
        arena.time_scale[:] = [s.time_scale for s in summaries]
        arena.first_timestamp[:] = [s.first_timestamp for s in summaries]
        arena.interval_offsets[0] = 0
        np.cumsum(interval_counts, out=arena.interval_offsets[1:])
        arena.url_group_offsets[0] = 0
        np.cumsum(url_counts, out=arena.url_group_offsets[1:])
        arena.pair_offsets[0] = 0
        np.cumsum(
            [len(p) for p in pair_parts], out=arena.pair_offsets[1:]
        )
        arena.url_offsets[0] = 0
        if url_parts:
            np.cumsum([len(p) for p in url_parts], out=arena.url_offsets[1:])
        for index, summary in enumerate(summaries):
            start = arena.interval_offsets[index]
            stop = arena.interval_offsets[index + 1]
            arena.intervals[start:stop] = summary.intervals
        if pair_parts:
            arena.pair_blob[:] = np.frombuffer(
                b"".join(pair_parts), dtype=np.uint8
            )
        if url_parts:
            arena.url_blob[:] = np.frombuffer(
                b"".join(url_parts), dtype=np.uint8
            )
        return arena

    @classmethod
    def attach(cls, handle: ArenaHandle) -> "SummaryArena":
        """Attach to an existing arena (worker side, never owns it)."""
        return cls(attach_segment(handle.name), handle, owner=False)

    # -- access ------------------------------------------------------------

    def handle(self) -> ArenaHandle:
        """The picklable attachment header."""
        return self._handle

    def __len__(self) -> int:
        return self._handle.count

    def view(self, index: int) -> "SummaryView":
        """A zero-copy summary view over the shared arrays."""
        if not 0 <= index < self._handle.count:
            raise IndexError(f"arena index {index} out of range")
        return SummaryView(self, index)

    def views(self) -> Iterator["SummaryView"]:
        return (SummaryView(self, i) for i in range(self._handle.count))

    def _string(self, blob: np.ndarray, start: int, stop: int) -> str:
        return bytes(blob[start:stop]).decode("utf-8")

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (safe to call repeatedly)."""
        if self._segment is None:
            return
        # Release the numpy views first: SharedMemory.close() fails
        # while exported buffer views are alive.
        for name in (
            "time_scale", "first_timestamp", "interval_offsets",
            "url_group_offsets", "pair_offsets", "url_offsets",
            "intervals", "pair_blob", "url_blob",
        ):
            if hasattr(self, name):
                delattr(self, name)
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - stray caller-held views
            # A caller still holds an array slice; the mapping lives
            # until those die with the process.  Unlink (the part that
            # matters for /dev/shm hygiene) is unaffected.
            pass
        self._segment = None

    def unlink(self) -> None:
        """Destroy the segment (creator only; idempotent)."""
        if not self._owner:
            return
        self.close()
        try:
            shared_memory.SharedMemory(name=self._handle.name).unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SummaryArena":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
        self.unlink()


class SummaryView:
    """One summary, read straight out of the arena — no copies.

    Duck-typed for the detection path: ``detect_summary`` and
    :class:`~repro.core.batch.BatchedDetector` only touch
    ``time_scale`` and ``timestamps()``; the job's filters touch
    ``pair``/``destination``/``event_count``.  ``materialize()``
    produces a value-identical :class:`ActivitySummary` for results
    that leave the worker.
    """

    __slots__ = ("_arena", "_index")

    def __init__(self, arena: SummaryArena, index: int) -> None:
        self._arena = arena
        self._index = index

    @property
    def source(self) -> str:
        arena, i = self._arena, self._index
        return arena._string(
            arena.pair_blob,
            arena.pair_offsets[2 * i],
            arena.pair_offsets[2 * i + 1],
        )

    @property
    def destination(self) -> str:
        arena, i = self._arena, self._index
        return arena._string(
            arena.pair_blob,
            arena.pair_offsets[2 * i + 1],
            arena.pair_offsets[2 * i + 2],
        )

    @property
    def pair(self) -> Tuple[str, str]:
        return (self.source, self.destination)

    @property
    def time_scale(self) -> float:
        return float(self._arena.time_scale[self._index])

    @property
    def first_timestamp(self) -> float:
        return float(self._arena.first_timestamp[self._index])

    def interval_array(self) -> np.ndarray:
        arena, i = self._arena, self._index
        return arena.intervals[
            arena.interval_offsets[i] : arena.interval_offsets[i + 1]
        ]

    @property
    def event_count(self) -> int:
        arena, i = self._arena, self._index
        return int(
            arena.interval_offsets[i + 1] - arena.interval_offsets[i]
        ) + 1

    @property
    def urls(self) -> Tuple[str, ...]:
        arena, i = self._arena, self._index
        begin = arena.url_group_offsets[i]
        end = arena.url_group_offsets[i + 1]
        return tuple(
            arena._string(
                arena.url_blob,
                arena.url_offsets[j],
                arena.url_offsets[j + 1],
            )
            for j in range(begin, end)
        )

    def timestamps(self) -> np.ndarray:
        """Bit-identical to :meth:`ActivitySummary.timestamps`."""
        return timestamps_from_intervals(
            self.first_timestamp, self.interval_array()
        )

    def materialize(self) -> ActivitySummary:
        """A real, value-identical :class:`ActivitySummary`."""
        return ActivitySummary(
            source=self.source,
            destination=self.destination,
            time_scale=self.time_scale,
            first_timestamp=self.first_timestamp,
            intervals=self.interval_array(),
            urls=self.urls,
        )
