"""Local MapReduce engine: serial and multiprocess execution.

Substitutes the paper's 13-node Hadoop cluster with a faithful local
model of the same computation: map over input records, shuffle by the
job's partitioner, group values per key (sorted for determinism), and
reduce partition by partition.  ``n_workers > 1`` distributes both map
chunks and reduce partitions over a process pool — jobs and records must
then be picklable, exactly as Hadoop requires them to be serializable.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.mapreduce.job import KeyValue, MapReduceJob
from repro.utils.validation import require


@dataclass
class JobStats:
    """Counters of one job execution (for the scalability benches)."""

    input_records: int = 0
    mapped_records: int = 0
    distinct_keys: int = 0
    output_records: int = 0
    partitions_used: int = 0
    task_retries: int = 0


def _map_chunk(job: MapReduceJob, chunk: Sequence[KeyValue]) -> List[Tuple[int, KeyValue]]:
    """Map a chunk of inputs; tags each output with its partition."""
    out: List[Tuple[int, KeyValue]] = []
    for key, value in chunk:
        for out_key, out_value in job.map(key, value):
            out.append((job.partition(out_key), (out_key, out_value)))
    return out


def _reduce_partition(
    job: MapReduceJob, grouped: List[Tuple[Any, List[Any]]]
) -> List[KeyValue]:
    """Reduce all key groups of one partition."""
    out: List[KeyValue] = []
    for key, values in grouped:
        out.extend(job.reduce(key, values))
    return out


def _chunked(items: Sequence, n_chunks: int) -> List[Sequence]:
    """Split ``items`` into at most ``n_chunks`` contiguous chunks."""
    if not items:
        return []
    size = max(1, (len(items) + n_chunks - 1) // n_chunks)
    return [items[i : i + size] for i in range(0, len(items), size)]


class MapReduceEngine:
    """Executes :class:`MapReduceJob` instances locally.

    With ``n_workers > 1`` a single process pool is created lazily and
    reused across runs (workers are where Hadoop's task JVMs would be);
    phases too small to amortize dispatch overhead
    (< ``min_parallel_records`` inputs) fall back to serial execution.

    ``max_retries`` re-runs a failed map chunk or reduce partition, the
    local analogue of Hadoop's task-level fault tolerance: a transient
    task failure must not kill a multi-hour batch.  Tasks that fail on
    every attempt re-raise the final exception.
    """

    def __init__(
        self,
        n_workers: int = 1,
        *,
        min_parallel_records: int = 64,
        max_retries: int = 0,
    ) -> None:
        require(n_workers >= 1, "n_workers must be at least 1")
        require(max_retries >= 0, "max_retries must be non-negative")
        self.n_workers = n_workers
        self.min_parallel_records = min_parallel_records
        self.max_retries = max_retries
        self.last_stats: Optional[JobStats] = None
        self._pool: Optional[ProcessPoolExecutor] = None

    def _attempt(self, func, *args):
        """Run a task, retrying up to ``max_retries`` times."""
        failures = 0
        while True:
            try:
                return func(*args)
            except Exception:
                failures += 1
                if failures > self.max_retries:
                    raise
                if self.last_stats is not None:
                    self.last_stats.task_retries += 1

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.n_workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (no-op for serial engines)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "MapReduceEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def run(
        self, job: MapReduceJob, inputs: Iterable[KeyValue]
    ) -> List[KeyValue]:
        """Run ``job`` over ``inputs``; returns the reduce output.

        Output records are ordered deterministically (by partition, then
        by sorted key within the partition) regardless of worker count.
        """
        records = list(inputs)
        stats = JobStats(input_records=len(records))
        self.last_stats = stats
        parallel = (
            self.n_workers > 1 and len(records) >= self.min_parallel_records
        )

        # -- map phase ---------------------------------------------------
        if not parallel:
            chunks = (
                _chunked(records, max(1, len(records) // 64))
                if self.max_retries
                else [records]
            )
            tagged = [
                item
                for chunk in chunks
                for item in self._attempt(_map_chunk, job, chunk)
            ]
        else:
            chunks = _chunked(records, self.n_workers * 4)
            results = self._parallel_tasks(_map_chunk, job, chunks)
            tagged = [item for chunk_out in results for item in chunk_out]
        stats.mapped_records = len(tagged)

        # -- shuffle: partition -> key -> [values] -------------------------
        partitions: Dict[int, Dict[Any, List[Any]]] = {}
        for partition, (key, value) in tagged:
            partitions.setdefault(partition, {}).setdefault(key, []).append(value)
        stats.distinct_keys = sum(len(p) for p in partitions.values())
        stats.partitions_used = len(partitions)

        grouped_per_partition: List[List[Tuple[Any, List[Any]]]] = [
            sorted(partitions[p].items(), key=lambda item: repr(item[0]))
            for p in sorted(partitions)
        ]

        # -- reduce phase ---------------------------------------------------
        if not parallel or len(grouped_per_partition) <= 1:
            output: List[KeyValue] = []
            for grouped in grouped_per_partition:
                output.extend(self._attempt(_reduce_partition, job, grouped))
        else:
            results = self._parallel_tasks(
                _reduce_partition, job, grouped_per_partition
            )
            output = [item for part in results for item in part]

        stats.output_records = len(output)
        return output

    def _parallel_tasks(self, func, job: MapReduceJob, tasks: Sequence) -> List:
        """Dispatch tasks on the pool; retry failures in-process."""
        pool = self._get_pool()
        futures = [pool.submit(func, job, task) for task in tasks]
        results = []
        for future, task in zip(futures, tasks):
            try:
                results.append(future.result())
            except Exception:
                if self.max_retries < 1:
                    raise
                if self.last_stats is not None:
                    self.last_stats.task_retries += 1
                # One parallel attempt is spent; the serial retry path
                # covers the rest of the budget.
                previous = self.max_retries
                self.max_retries = previous - 1
                try:
                    results.append(self._attempt(func, job, task))
                finally:
                    self.max_retries = previous
        return results

    def chain(
        self, jobs: Sequence[MapReduceJob], inputs: Iterable[KeyValue]
    ) -> List[KeyValue]:
        """Run several jobs back to back, feeding each the previous
        output — the paper's modularized multi-phase data flow."""
        current = list(inputs)
        for job in jobs:
            current = self.run(job, current)
        return current
