"""Local MapReduce engine over pluggable execution backends.

Substitutes the paper's 13-node Hadoop cluster with a faithful local
model of the same computation: map over input records, shuffle by the
job's partitioner, group values per key (sorted for determinism), and
reduce partition by partition.  *Where* tasks run is delegated to a
:class:`~repro.mapreduce.executors.TaskExecutor` — serial inline,
worker threads (for the GIL-releasing batched FFT kernels), a process
pool, or a multi-host shard queue drained by ``repro worker``
processes; jobs and records must be picklable for the out-of-process
backends, exactly as Hadoop requires them to be serializable.

Fault tolerance mirrors Hadoop's task-level story (paper Section VII: a
multi-hour batch over millions of pairs must survive individual task
failures) and is *executor-agnostic* — every backend inherits it:

- a task that *raises* is retried up to ``max_retries`` times with
  exponential backoff (``retry_backoff``);
- a task whose worker *dies*
  (:class:`~repro.mapreduce.executors.WorkerCrash`) or *hangs*
  (``task_timeout`` on a backend that can reap) triggers a backend
  restart and a re-run of the lost tasks, against the same retry
  budget; on backends that cannot kill a straggler (serial, threads)
  the deadline downgrades to a warn-and-journal soft breach;
- with ``quarantine=True`` a task that fails every attempt is split
  into its individual records/key-groups, each run in isolation, and
  only the genuinely poisonous units are dropped — recorded as
  :class:`QuarantinedTask` entries in :attr:`MapReduceEngine.last_quarantine`
  — so a single poison-pill pair degrades the batch instead of
  aborting it.
"""

from __future__ import annotations

import logging
import os
import random
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.mapreduce.executors import (
    TaskExecutor,
    TaskTimeout,
    WorkerCrash,
    make_executor,
)
from repro.mapreduce.job import KeyValue, MapReduceJob
from repro.obs import (
    MetricsRegistry,
    TraceContext,
    drain_spans,
    get_journal,
    get_registry,
    journal_emit,
    record_spans,
    scoped_registry,
    scoped_trace,
    span,
    task_trace_payload,
)
from repro.utils.validation import require

logger = logging.getLogger(__name__)


@dataclass
class JobStats:
    """Counters of one job execution (for the scalability benches)."""

    input_records: int = 0
    mapped_records: int = 0
    distinct_keys: int = 0
    output_records: int = 0
    partitions_used: int = 0
    task_retries: int = 0
    pool_restarts: int = 0
    task_timeouts: int = 0
    task_deadline_misses: int = 0
    tasks_quarantined: int = 0


@dataclass(frozen=True)
class QuarantinedTask:
    """One input unit dropped after exhausting every retry.

    ``phase`` is ``"map"`` or ``"reduce"``; ``key`` is the input record
    key (map) or the shuffle group key (reduce); ``error`` is the repr
    of the final exception.  The engine collects these in
    :attr:`MapReduceEngine.last_quarantine` so callers (the sharded
    runner, the run report) can surface them instead of losing them.
    """

    phase: str
    key: Any
    error: str
    attempts: int


def _map_chunk(job: MapReduceJob, chunk: Sequence[KeyValue]) -> List[Tuple[int, KeyValue]]:
    """Map a chunk of inputs; tags each output with its partition."""
    out: List[Tuple[int, KeyValue]] = []
    for key, value in chunk:
        for out_key, out_value in job.map(key, value):
            out.append((job.partition(out_key), (out_key, out_value)))
    return out


def _reduce_partition(
    job: MapReduceJob, grouped: List[Tuple[Any, List[Any]]]
) -> List[KeyValue]:
    """Reduce all key groups of one partition (via the job's hook)."""
    return list(job.reduce_partition(grouped))


def _split_map_chunk(chunk: Sequence[KeyValue]) -> List[Tuple[Any, List]]:
    """One (key, single-record chunk) unit per input record."""
    return [(key, [(key, value)]) for key, value in chunk]


def _split_reduce_partition(
    grouped: List[Tuple[Any, List[Any]]]
) -> List[Tuple[Any, List]]:
    """One (key, single-group partition) unit per key group."""
    return [(key, [(key, values)]) for key, values in grouped]


def _run_task_with_telemetry(
    func,
    job: MapReduceJob,
    task,
    trace: Optional[Dict[str, Optional[str]]] = None,
    journal=None,
    phase: str = "",
):
    """Run one worker task under a fresh child registry.

    Executed inside a worker process when the parent collects telemetry
    (or journals, or traces): the child registry captures everything the
    task records (detector timers, threshold-cache hits, ...) and ships
    it back as a picklable snapshot for the parent to merge — the local
    analogue of Hadoop counters flowing from task attempts to the job
    tracker.

    ``trace`` is the parent's :func:`repro.obs.task_trace_payload`: the
    worker installs it, opens a ``task.<phase>`` span around the task,
    and ships the completed span records back so the parent can stitch
    them under its own span tree.  ``journal`` (an
    :class:`~repro.obs.journal.EventJournal`, picklable by path) gets a
    heartbeat event per task so operators see which workers are alive.
    """
    registry = MetricsRegistry()
    context = TraceContext(**trace) if trace is not None else None
    with scoped_registry(registry), scoped_trace(context):
        if journal is not None:
            journal.append(
                "heartbeat", worker=os.getpid(), phase=phase or None
            )
        with span(f"task.{phase}" if phase else "task"):
            result = func(job, task)
    return (
        result,
        registry.snapshot(),
        [record.to_dict() for record in drain_spans()],
    )


def _run_task_in_thread(
    func,
    job: MapReduceJob,
    task,
    trace: Optional[Dict[str, Optional[str]]] = None,
    journal=None,
    phase: str = "",
):
    """In-process counterpart of :func:`_run_task_with_telemetry`.

    Worker *threads* share the parent's metrics registry (its
    instruments are lock-protected), and the current-registry pointer
    is a module-level global — swapping it from a worker thread would
    race the parent — so no child registry is installed and nothing is
    shipped back.  The trace context *is* installed (it is
    thread-local), so spans opened inside the task land in the shared
    record buffer already stitched under the parent's tree, and the
    journal gets the same per-task heartbeat the process wrapper emits.
    """
    context = TraceContext(**trace) if trace is not None else None
    with scoped_trace(context):
        if journal is not None:
            journal.append(
                "heartbeat", worker=os.getpid(), phase=phase or None
            )
        with span(f"task.{phase}" if phase else "task"):
            return func(job, task)


def _chunked(items: Sequence, n_chunks: int) -> List[Sequence]:
    """Split ``items`` into at most ``n_chunks`` contiguous chunks."""
    if not items:
        return []
    size = max(1, (len(items) + n_chunks - 1) // n_chunks)
    return [items[i : i + size] for i in range(0, len(items), size)]


class MapReduceEngine:
    """Executes :class:`MapReduceJob` instances over a task executor.

    ``executor`` picks the backend: an executor name (see
    :data:`~repro.mapreduce.executors.EXECUTOR_NAMES`), a ready
    :class:`~repro.mapreduce.executors.TaskExecutor` instance, or None
    for the legacy mapping — ``"processes"`` when ``n_workers > 1``,
    ``"serial"`` otherwise.  Backend resources are created lazily and
    reused across runs (workers are where Hadoop's task JVMs would be);
    phases too small to amortize dispatch overhead
    (< ``min_parallel_records`` inputs) fall back to serial execution.

    Fault-tolerance knobs (all executor-agnostic):

    ``max_retries``
        Re-runs a failed map chunk or reduce partition, the local
        analogue of Hadoop's task-level fault tolerance.  Tasks that
        fail on every attempt re-raise the final exception (unless
        quarantined, below).
    ``task_timeout``
        Seconds a task may run before it is considered late.  On a
        backend that reaps (processes, shard-queue) the straggler is
        presumed hung: the backend restarts — killing it — and the task
        is retried.  On serial/thread backends nothing can kill a
        running task, so the breach is *soft*: a WARNING plus a
        ``task_deadline`` journal event and the
        ``mapreduce.task_deadline_misses`` counter, then the result is
        awaited anyway.  ``None`` disables the watchdog.
    ``retry_backoff``
        Base of the exponential backoff envelope between retry rounds:
        the sleep is drawn uniformly from ``[0, min(max_backoff,
        retry_backoff * 2**(round - 1))]`` (full jitter), so engines
        that fail together — many shards hitting one sick worker host
        or store — don't retry in lockstep waves.  0 disables sleeping
        (the test default).  ``backoff_seed`` pins the jitter RNG for
        reproducible delays under test; each slept delay is also
        journalled as a ``backoff`` event.
    ``quarantine``
        When a task exhausts its retries, split it into individual
        records/key-groups, run each in isolation, and drop only the
        failing units — each recorded in :attr:`last_quarantine` — so
        poison-pill inputs degrade the output instead of aborting the
        batch.
    """

    def __init__(
        self,
        n_workers: int = 1,
        *,
        executor: Optional[Any] = None,
        min_parallel_records: int = 64,
        max_retries: int = 0,
        task_timeout: Optional[float] = None,
        retry_backoff: float = 0.0,
        max_backoff: float = 30.0,
        backoff_seed: Optional[int] = None,
        quarantine: bool = False,
    ) -> None:
        require(n_workers >= 1, "n_workers must be at least 1")
        require(max_retries >= 0, "max_retries must be non-negative")
        require(
            task_timeout is None or task_timeout > 0,
            "task_timeout must be positive when set",
        )
        require(retry_backoff >= 0, "retry_backoff must be non-negative")
        self.n_workers = n_workers
        self.min_parallel_records = min_parallel_records
        self.max_retries = max_retries
        self.task_timeout = task_timeout
        self.retry_backoff = retry_backoff
        self.max_backoff = max_backoff
        # Per-engine jitter RNG: seeding it (tests) makes the slept
        # delays a reproducible sequence; the default seeds from system
        # entropy so sibling engines draw independent jitter.
        self._backoff_rng = random.Random(backoff_seed)
        self.quarantine = quarantine
        self.last_stats: Optional[JobStats] = None
        self.last_quarantine: List[QuarantinedTask] = []
        # Operator-log/journal correlation context, set by the sharded
        # runner (see set_run_context): WARNING lines about retries,
        # pool restarts, and quarantines carry the run id and shard so
        # they line up with the event journal.
        self.run_id: Optional[str] = None
        self.shard: Optional[int] = None
        if executor is None:
            executor = "processes" if n_workers > 1 else "serial"
        if isinstance(executor, str):
            executor = make_executor(executor, n_workers=n_workers)
        if not isinstance(executor, TaskExecutor):
            raise TypeError(
                "executor must be an executor name or a TaskExecutor, "
                f"got {executor!r}"
            )
        self.executor: TaskExecutor = executor
        # Keep the worker-count gauge honest when the executor instance
        # (not n_workers) carries the concurrency.
        self.n_workers = max(n_workers, executor.parallelism)
        self._sleep: Callable[[float], None] = time.sleep

    # -- run context -------------------------------------------------------

    def set_run_context(
        self,
        *,
        run_id: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> None:
        """Attach run/shard identity to this engine's logs and events."""
        self.run_id = run_id
        self.shard = shard

    def _log_ctx(self) -> str:
        """``"[run <id> shard <n>] "`` prefix for operator log lines."""
        parts = []
        if self.run_id is not None:
            parts.append(f"run {self.run_id}")
        if self.shard is not None:
            parts.append(f"shard {self.shard}")
        return "[" + " ".join(parts) + "] " if parts else ""

    # -- retry / backoff machinery -----------------------------------------

    def _attempt(
        self,
        func,
        *args,
        retries_left: Optional[int] = None,
        phase: Optional[str] = None,
    ):
        """Run a task serially, retrying up to the remaining budget.

        The budget is passed explicitly (default: the full
        ``max_retries``) so concurrent or nested runs never share
        mutable retry state.  Inline execution has no enforcement point
        for ``task_timeout``, so a breach is detected after the fact
        and reported as a soft deadline miss (warn + journal) instead
        of being silently ignored.
        """
        budget = self.max_retries if retries_left is None else retries_left
        failures = 0
        while True:
            try:
                started = time.monotonic()
                result = func(*args)
                elapsed = time.monotonic() - started
                if (
                    self.task_timeout is not None
                    and elapsed > self.task_timeout
                ):
                    self._note_deadline_miss(phase=phase, elapsed=elapsed)
                return result
            except Exception as exc:
                failures += 1
                if failures > budget:
                    raise
                logger.warning(
                    "%stask %s failed (attempt %d of %d): %s; retrying",
                    self._log_ctx(),
                    getattr(func, "__name__", str(func)),
                    failures,
                    budget + 1,
                    exc,
                )
                self._note_retry()
                self._backoff(failures)

    def _note_retry(self, phase: Optional[str] = None) -> None:
        if self.last_stats is not None:
            self.last_stats.task_retries += 1
        get_registry().counter("mapreduce.task_retries").inc()
        journal_emit("retry", phase=phase, shard=self.shard)

    def _backoff(self, failures: int) -> None:
        """Sleep before the next retry: exponential envelope, full jitter.

        The old fixed ``base * 2**(round-1)`` schedule made every
        engine that failed at the same moment (the common case — one
        sick dependency fails many shards at once) retry at the same
        moment too, hammering the recovering dependency in synchronized
        waves.  Drawing uniformly from ``[0, envelope]`` spreads the
        wave; the actual delay is journalled so a run's sleep time is
        auditable after the fact.
        """
        if self.retry_backoff <= 0:
            return
        envelope = min(
            self.max_backoff, self.retry_backoff * (2 ** (failures - 1))
        )
        delay = self._backoff_rng.uniform(0.0, envelope)
        journal_emit(
            "backoff",
            shard=self.shard,
            failures=failures,
            delay=round(delay, 6),
            envelope=envelope,
        )
        self._sleep(delay)

    # -- backend lifecycle ---------------------------------------------------

    def _restart_pool(self, reason: str) -> None:
        """Restart the backend (killing stragglers where it can) and
        count the restart.

        The kill-children mechanics live behind
        :meth:`~repro.mapreduce.executors.TaskExecutor.restart` — a
        public, per-backend contract — while the accounting (stats,
        counter, journal event, operator log line) stays here so every
        backend reports restarts identically.
        """
        self.executor.restart(reason)
        logger.warning(
            "%s%s backend restarted: %s",
            self._log_ctx(), self.executor.name, reason,
        )
        if self.last_stats is not None:
            self.last_stats.pool_restarts += 1
        get_registry().counter("mapreduce.pool_restarts").inc()
        journal_emit(
            "pool_restart",
            reason=reason,
            shard=self.shard,
            executor=self.executor.name,
        )

    def _note_deadline_miss(
        self,
        *,
        phase: Optional[str],
        index: Optional[int] = None,
        elapsed: Optional[float] = None,
    ) -> None:
        """Record a soft ``task_timeout`` breach (non-reaping backends).

        Nothing can kill the late task, so the contract is
        warn-and-journal: operators see the breach in the log and the
        event journal (``task_deadline``) while the run keeps waiting
        for the genuine result.
        """
        if self.last_stats is not None:
            self.last_stats.task_deadline_misses += 1
        get_registry().counter("mapreduce.task_deadline_misses").inc()
        journal_emit(
            "task_deadline",
            phase=phase or None,
            shard=self.shard,
            task=index,
            elapsed=round(elapsed, 6) if elapsed is not None else None,
            timeout=self.task_timeout,
            executor=self.executor.name,
        )
        logger.warning(
            "%s%s task%s exceeded task_timeout=%.4gs on the %s backend "
            "(no enforcement point; letting it finish)",
            self._log_ctx(),
            phase or "engine",
            f" {index}" if index is not None else "",
            self.task_timeout or 0.0,
            self.executor.name,
        )

    def close(self) -> None:
        """Release the backend's resources (no-op when never used)."""
        self.executor.close()

    def __enter__(self) -> "MapReduceEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- quarantine --------------------------------------------------------

    def _record_quarantine(
        self, phase: str, key: Any, exc: BaseException, attempts: int
    ) -> None:
        entry = QuarantinedTask(
            phase=phase, key=key, error=repr(exc), attempts=attempts
        )
        self.last_quarantine.append(entry)
        if self.last_stats is not None:
            self.last_stats.tasks_quarantined += 1
        get_registry().counter("mapreduce.tasks_quarantined").inc()
        journal_emit(
            "quarantine", phase=phase, key=key, shard=self.shard,
            attempts=attempts,
        )
        logger.error(
            "%squarantined %s unit %r after %d attempts: %s",
            self._log_ctx(), phase, key, attempts, entry.error,
        )

    def _isolate_units(
        self,
        func,
        job: MapReduceJob,
        units: List[Tuple[Any, Any]],
        *,
        phase: str,
        attempts: int,
        use_pool: bool,
    ) -> List:
        """Run each unit of an exhausted task alone; quarantine failures.

        ``use_pool=True`` isolates on the executor backend (one unit
        per task) so a unit that kills or hangs its worker cannot take
        the parent down with it; a backend that can reap is restarted
        after each casualty.  During isolation a deadline is treated as
        poison on *every* backend — a unit a thread cannot abandon
        would otherwise wedge the quarantine pass itself.
        """
        outputs: List = []
        for key, unit_task in units:
            try:
                if use_pool:
                    handle = self.executor.submit(func, job, unit_task)
                    outputs.extend(
                        self.executor.result(handle, timeout=self.task_timeout)
                    )
                else:
                    outputs.extend(func(job, unit_task))
            except (WorkerCrash, TaskTimeout) as exc:
                if self.executor.reaps_hung_tasks:
                    self._restart_pool(
                        f"isolating poisoned {phase} unit {key!r}"
                    )
                self._record_quarantine(phase, key, exc, attempts)
            except Exception as exc:
                self._record_quarantine(phase, key, exc, attempts)
        return outputs

    def _run_task(
        self,
        func,
        job: MapReduceJob,
        task,
        *,
        phase: str,
        split,
        retries_left: Optional[int] = None,
    ) -> List:
        """Serial task execution with retries and optional quarantine."""
        try:
            return self._attempt(
                func, job, task, retries_left=retries_left, phase=phase
            )
        except Exception as exc:
            if not self.quarantine:
                raise
            budget = self.max_retries if retries_left is None else retries_left
            logger.warning(
                "%s%s task failed all %d attempts (%s); isolating its "
                "%d units", self._log_ctx(), phase, budget + 1, exc,
                len(split(task)),
            )
            return self._isolate_units(
                func, job, split(task),
                phase=phase, attempts=budget + 1, use_pool=False,
            )

    # -- execution ---------------------------------------------------------

    def run(
        self, job: MapReduceJob, inputs: Iterable[KeyValue]
    ) -> List[KeyValue]:
        """Run ``job`` over ``inputs``; returns the reduce output.

        Output records are ordered deterministically (by partition, then
        by sorted key within the partition) regardless of worker count.
        Units quarantined during this run are in :attr:`last_quarantine`.
        """
        records = list(inputs)
        stats = JobStats(input_records=len(records))
        self.last_stats = stats
        self.last_quarantine = []
        job_name = type(job).__name__
        parallel = (
            self.executor.parallelism > 1
            and len(records) >= self.min_parallel_records
        )

        with span(f"mapreduce.{job_name}"):
            # -- map phase ---------------------------------------------------
            with span("map"):
                if not parallel:
                    chunks = (
                        _chunked(records, max(1, len(records) // 64))
                        if self.max_retries or self.quarantine
                        else [records]
                    )
                    tagged = [
                        item
                        for chunk in chunks
                        for item in self._run_task(
                            _map_chunk, job, chunk,
                            phase="map", split=_split_map_chunk,
                        )
                    ]
                else:
                    chunks = _chunked(records, self.n_workers * 4)
                    results = self._parallel_tasks(
                        _map_chunk, job, chunks,
                        phase="map", split=_split_map_chunk,
                    )
                    tagged = [item for chunk_out in results for item in chunk_out]
            stats.mapped_records = len(tagged)

            # -- shuffle: partition -> key -> [values] -------------------------
            with span("shuffle"):
                partitions: Dict[int, Dict[Any, List[Any]]] = {}
                for partition, (key, value) in tagged:
                    partitions.setdefault(partition, {}).setdefault(
                        key, []
                    ).append(value)
                stats.distinct_keys = sum(len(p) for p in partitions.values())
                stats.partitions_used = len(partitions)

                grouped_per_partition: List[List[Tuple[Any, List[Any]]]] = [
                    sorted(partitions[p].items(), key=lambda item: repr(item[0]))
                    for p in sorted(partitions)
                ]

            # -- reduce phase ---------------------------------------------------
            with span("reduce"):
                if not parallel or len(grouped_per_partition) <= 1:
                    output: List[KeyValue] = []
                    for grouped in grouped_per_partition:
                        output.extend(
                            self._run_task(
                                _reduce_partition, job, grouped,
                                phase="reduce",
                                split=_split_reduce_partition,
                            )
                        )
                else:
                    results = self._parallel_tasks(
                        _reduce_partition, job, grouped_per_partition,
                        phase="reduce", split=_split_reduce_partition,
                    )
                    output = [item for part in results for item in part]

        stats.output_records = len(output)
        self._record_stats(job_name, stats)
        logger.debug(
            "job %s: %d in, %d mapped, %d keys, %d out (%d retries, "
            "%d quarantined)",
            job_name, stats.input_records, stats.mapped_records,
            stats.distinct_keys, stats.output_records, stats.task_retries,
            stats.tasks_quarantined,
        )
        return output

    def _record_stats(self, job_name: str, stats: JobStats) -> None:
        """Surface :class:`JobStats` into the run's metrics registry."""
        registry = get_registry()
        if not registry.enabled:
            return
        prefix = f"mapreduce.{job_name}"
        registry.counter(f"{prefix}.input_records").inc(stats.input_records)
        registry.counter(f"{prefix}.mapped_records").inc(stats.mapped_records)
        registry.counter(f"{prefix}.distinct_keys").inc(stats.distinct_keys)
        registry.counter(f"{prefix}.output_records").inc(stats.output_records)
        registry.gauge(f"{prefix}.partitions_used").set(stats.partitions_used)
        registry.gauge("mapreduce.n_workers").set(self.n_workers)
        if stats.task_retries:
            registry.counter(f"{prefix}.task_retries").inc(stats.task_retries)

    def _await_result(self, handle, *, phase: str, index: int):
        """Await one handle under the engine's deadline policy.

        A :class:`TaskTimeout` from a backend that reaps is re-raised —
        the task is lost and the caller restarts the backend.  From a
        non-reaping backend (threads) it is downgraded to a soft
        breach: warn-and-journal, then block for the real result.
        """
        try:
            return self.executor.result(handle, timeout=self.task_timeout)
        except TaskTimeout:
            if self.executor.reaps_hung_tasks:
                raise
            self._note_deadline_miss(phase=phase, index=index)
            return self.executor.result(handle, None)

    def _parallel_tasks(
        self, func, job: MapReduceJob, tasks: Sequence, *, phase: str, split
    ) -> List:
        """Dispatch tasks on the executor; survive failed/lost workers.

        Tasks run in retry *rounds*: every still-pending task is
        submitted, results are collected, and failures carry into the
        next round until their budget is spent.  A worker death
        (:class:`WorkerCrash`) or hang (``task_timeout`` on a reaping
        backend) restarts the backend and charges an attempt to the
        task it was observed on; the other in-flight tasks are re-run
        without charge, like Hadoop's re-execution of tasks lost with a
        dead TaskTracker.

        Telemetry crosses the backend boundary in the right way for
        each backend.  Out-of-process workers run each task under a
        fresh child registry and ship back a snapshot that is merged
        here (plus completed span records, stitched under this engine's
        span tree, and per-task journal heartbeats) — the local
        analogue of Hadoop counters flowing to the job tracker.
        In-process workers (threads) see the parent's lock-protected
        registry, span buffer, and journal directly, so only the
        thread-local trace context and the heartbeat need installing.
        """
        registry = get_registry()
        trace_payload = task_trace_payload()
        journal = get_journal()
        # ``ship``: wrap tasks so workers return (result, registry
        # snapshot, spans) for the parent to merge.  ``ambient``: wrap
        # only to install the thread-local trace + heartbeat.
        ship = not self.executor.in_process and (
            registry.enabled
            or trace_payload is not None
            or journal is not None
        )
        ambient = self.executor.in_process and (
            trace_payload is not None or journal is not None
        )
        n_tasks = len(tasks)
        results: Dict[int, List] = {}
        attempts = [0] * n_tasks
        pending: List[int] = list(range(n_tasks))
        failure_rounds = 0
        while pending:
            if ship:
                submitted = {
                    i: self.executor.submit(
                        _run_task_with_telemetry, func, job, tasks[i],
                        trace_payload, journal, phase,
                    )
                    for i in pending
                }
            elif ambient:
                submitted = {
                    i: self.executor.submit(
                        _run_task_in_thread, func, job, tasks[i],
                        trace_payload, journal, phase,
                    )
                    for i in pending
                }
            else:
                submitted = {
                    i: self.executor.submit(func, job, tasks[i])
                    for i in pending
                }
            next_pending: List[int] = []
            backend_broken = False
            for i in pending:
                if backend_broken:
                    # Lost with the backend through no fault of their
                    # own: re-run without charging an attempt.
                    next_pending.append(i)
                    continue
                try:
                    outcome = self._await_result(
                        submitted[i], phase=phase, index=i
                    )
                except (WorkerCrash, TaskTimeout) as exc:
                    backend_broken = True
                    timed_out = isinstance(exc, TaskTimeout)
                    if timed_out:
                        if self.last_stats is not None:
                            self.last_stats.task_timeouts += 1
                        get_registry().counter("mapreduce.task_timeouts").inc()
                    self._restart_pool(
                        f"{phase} task {i} "
                        + ("timed out" if timed_out else "lost its worker")
                    )
                    if not self._charge_failure(
                        func, job, tasks[i], i, attempts, exc,
                        phase=phase, split=split, results=results,
                        in_pool=True,
                    ):
                        next_pending.append(i)
                    continue
                except Exception as exc:
                    if not self._charge_failure(
                        func, job, tasks[i], i, attempts, exc,
                        phase=phase, split=split, results=results,
                        in_pool=False,
                    ):
                        next_pending.append(i)
                    continue
                if ship:
                    result, snapshot, worker_spans = outcome
                    registry.merge(snapshot)
                    record_spans(worker_spans)
                    results[i] = result
                else:
                    results[i] = outcome
            if next_pending:
                failure_rounds += 1
                self._backoff(failure_rounds)
            pending = next_pending
        return [results[i] for i in range(n_tasks)]

    def _charge_failure(
        self,
        func,
        job: MapReduceJob,
        task,
        index: int,
        attempts: List[int],
        exc: BaseException,
        *,
        phase: str,
        split,
        results: Dict[int, List],
        in_pool: bool,
    ) -> bool:
        """Charge one failed attempt to a task; resolve it when spent.

        Returns True when the task is *resolved* (quarantined into
        ``results`` or the exception re-raised); False when it should be
        retried in the next round.
        """
        attempts[index] += 1
        if attempts[index] <= self.max_retries:
            logger.warning(
                "%sparallel %s task %d failed (attempt %d of %d): %s; "
                "retrying",
                self._log_ctx(), phase, index, attempts[index],
                self.max_retries + 1, exc,
            )
            self._note_retry(phase)
            return False
        if not self.quarantine:
            raise exc
        logger.warning(
            "%sparallel %s task %d failed all %d attempts (%s); isolating "
            "its units", self._log_ctx(), phase, index,
            self.max_retries + 1, exc,
        )
        results[index] = self._isolate_units(
            func, job, split(task),
            phase=phase, attempts=attempts[index], use_pool=in_pool,
        )
        return True

    def chain(
        self, jobs: Sequence[MapReduceJob], inputs: Iterable[KeyValue]
    ) -> List[KeyValue]:
        """Run several jobs back to back, feeding each the previous
        output — the paper's modularized multi-phase data flow."""
        current = list(inputs)
        for job in jobs:
            current = self.run(job, current)
        return current
