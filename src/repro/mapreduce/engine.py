"""Local MapReduce engine: serial and multiprocess execution.

Substitutes the paper's 13-node Hadoop cluster with a faithful local
model of the same computation: map over input records, shuffle by the
job's partitioner, group values per key (sorted for determinism), and
reduce partition by partition.  ``n_workers > 1`` distributes both map
chunks and reduce partitions over a process pool — jobs and records must
then be picklable, exactly as Hadoop requires them to be serializable.
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.mapreduce.job import KeyValue, MapReduceJob
from repro.obs import MetricsRegistry, get_registry, scoped_registry, span
from repro.utils.validation import require

logger = logging.getLogger(__name__)


@dataclass
class JobStats:
    """Counters of one job execution (for the scalability benches)."""

    input_records: int = 0
    mapped_records: int = 0
    distinct_keys: int = 0
    output_records: int = 0
    partitions_used: int = 0
    task_retries: int = 0


def _map_chunk(job: MapReduceJob, chunk: Sequence[KeyValue]) -> List[Tuple[int, KeyValue]]:
    """Map a chunk of inputs; tags each output with its partition."""
    out: List[Tuple[int, KeyValue]] = []
    for key, value in chunk:
        for out_key, out_value in job.map(key, value):
            out.append((job.partition(out_key), (out_key, out_value)))
    return out


def _reduce_partition(
    job: MapReduceJob, grouped: List[Tuple[Any, List[Any]]]
) -> List[KeyValue]:
    """Reduce all key groups of one partition."""
    out: List[KeyValue] = []
    for key, values in grouped:
        out.extend(job.reduce(key, values))
    return out


def _run_task_with_telemetry(func, job: MapReduceJob, task):
    """Run one worker task under a fresh child registry.

    Executed inside a worker process when the parent collects telemetry:
    the child registry captures everything the task records (detector
    timers, threshold-cache hits, ...) and ships it back as a picklable
    snapshot for the parent to merge — the local analogue of Hadoop
    counters flowing from task attempts to the job tracker.
    """
    registry = MetricsRegistry()
    with scoped_registry(registry):
        result = func(job, task)
    return result, registry.snapshot()


def _chunked(items: Sequence, n_chunks: int) -> List[Sequence]:
    """Split ``items`` into at most ``n_chunks`` contiguous chunks."""
    if not items:
        return []
    size = max(1, (len(items) + n_chunks - 1) // n_chunks)
    return [items[i : i + size] for i in range(0, len(items), size)]


class MapReduceEngine:
    """Executes :class:`MapReduceJob` instances locally.

    With ``n_workers > 1`` a single process pool is created lazily and
    reused across runs (workers are where Hadoop's task JVMs would be);
    phases too small to amortize dispatch overhead
    (< ``min_parallel_records`` inputs) fall back to serial execution.

    ``max_retries`` re-runs a failed map chunk or reduce partition, the
    local analogue of Hadoop's task-level fault tolerance: a transient
    task failure must not kill a multi-hour batch.  Tasks that fail on
    every attempt re-raise the final exception.
    """

    def __init__(
        self,
        n_workers: int = 1,
        *,
        min_parallel_records: int = 64,
        max_retries: int = 0,
    ) -> None:
        require(n_workers >= 1, "n_workers must be at least 1")
        require(max_retries >= 0, "max_retries must be non-negative")
        self.n_workers = n_workers
        self.min_parallel_records = min_parallel_records
        self.max_retries = max_retries
        self.last_stats: Optional[JobStats] = None
        self._pool: Optional[ProcessPoolExecutor] = None

    def _attempt(self, func, *args):
        """Run a task, retrying up to ``max_retries`` times."""
        failures = 0
        while True:
            try:
                return func(*args)
            except Exception as exc:
                failures += 1
                if failures > self.max_retries:
                    raise
                logger.warning(
                    "task %s failed (attempt %d of %d): %s; retrying",
                    getattr(func, "__name__", str(func)),
                    failures,
                    self.max_retries + 1,
                    exc,
                )
                if self.last_stats is not None:
                    self.last_stats.task_retries += 1
                get_registry().counter("mapreduce.task_retries").inc()

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.n_workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (no-op for serial engines)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "MapReduceEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def run(
        self, job: MapReduceJob, inputs: Iterable[KeyValue]
    ) -> List[KeyValue]:
        """Run ``job`` over ``inputs``; returns the reduce output.

        Output records are ordered deterministically (by partition, then
        by sorted key within the partition) regardless of worker count.
        """
        records = list(inputs)
        stats = JobStats(input_records=len(records))
        self.last_stats = stats
        job_name = type(job).__name__
        parallel = (
            self.n_workers > 1 and len(records) >= self.min_parallel_records
        )

        with span(f"mapreduce.{job_name}"):
            # -- map phase ---------------------------------------------------
            with span("map"):
                if not parallel:
                    chunks = (
                        _chunked(records, max(1, len(records) // 64))
                        if self.max_retries
                        else [records]
                    )
                    tagged = [
                        item
                        for chunk in chunks
                        for item in self._attempt(_map_chunk, job, chunk)
                    ]
                else:
                    chunks = _chunked(records, self.n_workers * 4)
                    results = self._parallel_tasks(_map_chunk, job, chunks)
                    tagged = [item for chunk_out in results for item in chunk_out]
            stats.mapped_records = len(tagged)

            # -- shuffle: partition -> key -> [values] -------------------------
            with span("shuffle"):
                partitions: Dict[int, Dict[Any, List[Any]]] = {}
                for partition, (key, value) in tagged:
                    partitions.setdefault(partition, {}).setdefault(
                        key, []
                    ).append(value)
                stats.distinct_keys = sum(len(p) for p in partitions.values())
                stats.partitions_used = len(partitions)

                grouped_per_partition: List[List[Tuple[Any, List[Any]]]] = [
                    sorted(partitions[p].items(), key=lambda item: repr(item[0]))
                    for p in sorted(partitions)
                ]

            # -- reduce phase ---------------------------------------------------
            with span("reduce"):
                if not parallel or len(grouped_per_partition) <= 1:
                    output: List[KeyValue] = []
                    for grouped in grouped_per_partition:
                        output.extend(
                            self._attempt(_reduce_partition, job, grouped)
                        )
                else:
                    results = self._parallel_tasks(
                        _reduce_partition, job, grouped_per_partition
                    )
                    output = [item for part in results for item in part]

        stats.output_records = len(output)
        self._record_stats(job_name, stats)
        logger.debug(
            "job %s: %d in, %d mapped, %d keys, %d out (%d retries)",
            job_name, stats.input_records, stats.mapped_records,
            stats.distinct_keys, stats.output_records, stats.task_retries,
        )
        return output

    def _record_stats(self, job_name: str, stats: JobStats) -> None:
        """Surface :class:`JobStats` into the run's metrics registry."""
        registry = get_registry()
        if not registry.enabled:
            return
        prefix = f"mapreduce.{job_name}"
        registry.counter(f"{prefix}.input_records").inc(stats.input_records)
        registry.counter(f"{prefix}.mapped_records").inc(stats.mapped_records)
        registry.counter(f"{prefix}.distinct_keys").inc(stats.distinct_keys)
        registry.counter(f"{prefix}.output_records").inc(stats.output_records)
        registry.gauge(f"{prefix}.partitions_used").set(stats.partitions_used)
        registry.gauge("mapreduce.n_workers").set(self.n_workers)
        if stats.task_retries:
            registry.counter(f"{prefix}.task_retries").inc(stats.task_retries)

    def _parallel_tasks(self, func, job: MapReduceJob, tasks: Sequence) -> List:
        """Dispatch tasks on the pool; retry failures in-process.

        When the parent collects telemetry, each task runs under a fresh
        child registry in its worker and returns a snapshot that is
        merged here — so detector timers and cache counters recorded
        inside worker processes are not lost.
        """
        registry = get_registry()
        collect = registry.enabled
        pool = self._get_pool()
        if collect:
            futures = [
                pool.submit(_run_task_with_telemetry, func, job, task)
                for task in tasks
            ]
        else:
            futures = [pool.submit(func, job, task) for task in tasks]
        results = []
        for future, task in zip(futures, tasks):
            try:
                outcome = future.result()
                if collect:
                    result, snapshot = outcome
                    registry.merge(snapshot)
                    results.append(result)
                else:
                    results.append(outcome)
            except Exception as exc:
                if self.max_retries < 1:
                    raise
                logger.warning(
                    "parallel task %s failed (attempt 1 of %d): %s; "
                    "retrying in-process",
                    getattr(func, "__name__", str(func)),
                    self.max_retries + 1,
                    exc,
                )
                if self.last_stats is not None:
                    self.last_stats.task_retries += 1
                registry.counter("mapreduce.task_retries").inc()
                # One parallel attempt is spent; the serial retry path
                # covers the rest of the budget.
                previous = self.max_retries
                self.max_retries = previous - 1
                try:
                    results.append(self._attempt(func, job, task))
                finally:
                    self.max_retries = previous
        return results

    def chain(
        self, jobs: Sequence[MapReduceJob], inputs: Iterable[KeyValue]
    ) -> List[KeyValue]:
        """Run several jobs back to back, feeding each the previous
        output — the paper's modularized multi-phase data flow."""
        current = list(inputs)
        for job in jobs:
            current = self.run(job, current)
        return current
