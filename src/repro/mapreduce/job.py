"""MapReduce job abstraction (paper Section VII).

BAYWATCH structures every phase as a modular MapReduce job so that raw
logs are processed once and intermediate ActivitySummaries are reused.
A job defines ``map(key, value) -> iterable of (key2, value2)`` and
``reduce(key2, values) -> iterable of (key3, value3)``; the engine
handles partitioning (the paper's hash ``H(s, d)`` controlling the
number of reduce tasks), shuffling, and execution.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Any, Iterable, Iterator, Tuple

from repro.utils.validation import require

KeyValue = Tuple[Any, Any]


def stable_hash(key: Any) -> int:
    """Deterministic hash usable across worker processes.

    Python's built-in ``hash`` is randomized per process, which would
    scatter identical keys across partitions in multiprocess runs;
    CRC32 of the repr is stable everywhere.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


class MapReduceJob(ABC):
    """One modular phase of the analysis.

    ``n_partitions`` plays the role of the paper's hash-bit count: a
    5-bit hash yields 32 reduce partitions, trading per-task startup
    overhead against parallelism.
    """

    #: Number of reduce partitions (paper default: 32 = 2^5).
    n_partitions: int = 32

    @abstractmethod
    def map(self, key: Any, value: Any) -> Iterator[KeyValue]:
        """Transform one input record into zero or more keyed records."""

    @abstractmethod
    def reduce(self, key: Any, values: Iterable[Any]) -> Iterator[KeyValue]:
        """Combine all values sharing ``key`` into output records."""

    def partition(self, key: Any) -> int:
        """Reduce-partition index for ``key`` (stable across processes)."""
        require(self.n_partitions >= 1, "n_partitions must be at least 1")
        return stable_hash(key) % self.n_partitions

    def reduce_partition(
        self, grouped: Iterable[Tuple[Any, Iterable[Any]]]
    ) -> Iterator[KeyValue]:
        """Reduce every key group of one partition.

        The default chains :meth:`reduce` over the groups.  Jobs with a
        cross-key fast path (e.g. batched detection, which amortizes
        FFTs across all pairs of a partition) override this; quarantine
        fallback still splits a failing partition into single-group
        units, which re-enter through this method one group at a time.
        """
        for key, values in grouped:
            yield from self.reduce(key, values)
