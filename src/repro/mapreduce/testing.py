"""Fault-injection helpers for exercising the engine's fault tolerance.

These jobs misbehave on purpose — raising, killing their own worker
process, or hanging — so tests (and the CI fault-tolerance smoke job)
can drive the :class:`~repro.mapreduce.MapReduceEngine` recovery paths
deterministically:

- :class:`PoisonPillJob` — a marked key fails on *every* attempt (the
  quarantine path);
- :class:`TransientFaultJob` — a marked key fails its first ``n``
  attempts, then succeeds (the retry path);
- :class:`WorkerKillerJob` — a marked key SIGKILLs its worker process
  the first ``n`` attempts (the pool-restart path);
- :class:`HangingJob` — a marked key sleeps far past any sane
  ``task_timeout`` (the hung-worker watchdog path).

Failure state that must survive process boundaries (how many times has
the fault fired?) lives in a :class:`FaultMarker` file, the idiom the
engine's own retry tests established.

:class:`WorkerFleet` rounds the kit out for the shard-queue backend: a
miniature "cluster" of ``run_worker`` processes draining one queue
directory, with SIGKILL and respawn controls so tests can prove claim
expiry and crash recovery against real worker processes.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from typing import Any, Iterable, Iterator, List, Optional

from repro.mapreduce.job import KeyValue, MapReduceJob

POISON_KEY = "poison"


class FaultMarker:
    """File-backed counter shared between parent and worker processes."""

    def __init__(self, path: str) -> None:
        self.path = str(path)

    def count(self) -> int:
        try:
            with open(self.path) as handle:
                return int(handle.read() or 0)
        except FileNotFoundError:
            return 0

    def bump(self) -> int:
        value = self.count() + 1
        with open(self.path, "w") as handle:
            handle.write(str(value))
        return value


class _IdentityJob(MapReduceJob):
    """Base: identity map/reduce over 4 partitions."""

    n_partitions = 4

    def __init__(self, marker_path: str, *, poison_key: Any = POISON_KEY) -> None:
        self.marker = FaultMarker(marker_path)
        self.poison_key = poison_key

    def map(self, key: Any, value: Any) -> Iterator[KeyValue]:
        yield key, value

    def reduce(self, key: Any, values: Iterable[Any]) -> Iterator[KeyValue]:
        for value in values:
            yield key, value


class PoisonPillJob(_IdentityJob):
    """The marked key fails on every attempt, in map or reduce."""

    def __init__(
        self,
        marker_path: str,
        *,
        poison_key: Any = POISON_KEY,
        fail_in: str = "reduce",
    ) -> None:
        super().__init__(marker_path, poison_key=poison_key)
        if fail_in not in ("map", "reduce"):
            raise ValueError("fail_in must be 'map' or 'reduce'")
        self.fail_in = fail_in

    def map(self, key: Any, value: Any) -> Iterator[KeyValue]:
        if self.fail_in == "map" and key == self.poison_key:
            self.marker.bump()
            raise RuntimeError(f"poison pill in map: {key!r}")
        yield key, value

    def reduce(self, key: Any, values: Iterable[Any]) -> Iterator[KeyValue]:
        if self.fail_in == "reduce" and key == self.poison_key:
            self.marker.bump()
            raise RuntimeError(f"poison pill in reduce: {key!r}")
        for value in values:
            yield key, value


class TransientFaultJob(_IdentityJob):
    """The marked key fails its first ``fail_times`` reduce attempts."""

    def __init__(
        self, marker_path: str, fail_times: int, *, poison_key: Any = POISON_KEY
    ) -> None:
        super().__init__(marker_path, poison_key=poison_key)
        self.fail_times = fail_times

    def reduce(self, key: Any, values: Iterable[Any]) -> Iterator[KeyValue]:
        if key == self.poison_key and self.marker.bump() <= self.fail_times:
            raise RuntimeError(f"transient fault: {key!r}")
        for value in values:
            yield key, value


class WorkerKillerJob(_IdentityJob):
    """The marked key SIGKILLs its own worker the first ``kill_times``
    attempts — the mid-task worker death the engine must absorb by
    restarting the pool and re-running the lost tasks.

    Only meaningful with ``n_workers > 1``; in a serial engine this
    would kill the caller, so :meth:`reduce` refuses to fire unless it
    is running in a different process than the one that created it.
    """

    def __init__(
        self, marker_path: str, kill_times: int = 1, *, poison_key: Any = POISON_KEY
    ) -> None:
        super().__init__(marker_path, poison_key=poison_key)
        self.kill_times = kill_times
        self._parent_pid = os.getpid()

    def reduce(self, key: Any, values: Iterable[Any]) -> Iterator[KeyValue]:
        if (
            key == self.poison_key
            and os.getpid() != self._parent_pid
            and self.marker.bump() <= self.kill_times
        ):
            os.kill(os.getpid(), signal.SIGKILL)
        for value in values:
            yield key, value


class HangingJob(_IdentityJob):
    """The marked key sleeps ``hang_seconds`` the first ``hang_times``
    attempts — a hung worker the ``task_timeout`` watchdog must reap."""

    def __init__(
        self,
        marker_path: str,
        *,
        hang_seconds: float = 60.0,
        hang_times: int = 1,
        poison_key: Any = POISON_KEY,
    ) -> None:
        super().__init__(marker_path, poison_key=poison_key)
        self.hang_seconds = hang_seconds
        self.hang_times = hang_times

    def reduce(self, key: Any, values: Iterable[Any]) -> Iterator[KeyValue]:
        if key == self.poison_key and self.marker.bump() <= self.hang_times:
            time.sleep(self.hang_seconds)
        for value in values:
            yield key, value


def _fleet_worker_main(queue_dir: str, poll_interval: float, claim_ttl: float) -> None:
    """Entry point of one fleet worker process (module-level: picklable)."""
    from repro.mapreduce.executors.shardqueue import run_worker

    run_worker(queue_dir, poll_interval=poll_interval, claim_ttl=claim_ttl)


class WorkerFleet:
    """N shard-queue worker processes, the test stand-in for N hosts.

    Each worker is a real OS process running
    :func:`~repro.mapreduce.executors.shardqueue.run_worker` against
    ``queue_dir``, so SIGKILLing one (:meth:`kill_one`) leaves a live
    claim behind exactly as a crashed remote host would.  With
    ``respawn=True`` a monitor thread replaces dead workers, modelling
    an operator (or supervisor) keeping the fleet at strength — the
    mode jobs that repeatedly kill their worker need in order to ever
    finish.  Use as a context manager; exit terminates the fleet.
    """

    def __init__(
        self,
        queue_dir: str,
        n_workers: int = 2,
        *,
        poll_interval: float = 0.02,
        claim_ttl: float = 1.0,
        respawn: bool = False,
    ) -> None:
        self.queue_dir = str(queue_dir)
        self.n_workers = n_workers
        self.poll_interval = poll_interval
        self.claim_ttl = claim_ttl
        self.respawn = respawn
        self._procs: List[multiprocessing.Process] = []
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    def _spawn(self) -> multiprocessing.Process:
        proc = multiprocessing.Process(
            target=_fleet_worker_main,
            args=(self.queue_dir, self.poll_interval, self.claim_ttl),
            daemon=True,
        )
        proc.start()
        return proc

    def start(self) -> "WorkerFleet":
        self._procs = [self._spawn() for _ in range(self.n_workers)]
        if self.respawn:
            self._monitor = threading.Thread(
                target=self._keep_at_strength, daemon=True
            )
            self._monitor.start()
        return self

    def _keep_at_strength(self) -> None:
        while not self._stop.wait(0.05):
            for index, proc in enumerate(self._procs):
                if not proc.is_alive():
                    self._procs[index] = self._spawn()

    def pids(self) -> List[int]:
        return [proc.pid for proc in self._procs if proc.is_alive()]

    def kill_one(self) -> int:
        """SIGKILL one live worker; returns its pid (the crashed host)."""
        for proc in self._procs:
            if proc.is_alive():
                os.kill(proc.pid, signal.SIGKILL)
                proc.join(timeout=5.0)
                return proc.pid
        raise RuntimeError("no live worker to kill")

    def stop(self) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
            self._monitor = None
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
        self._procs = []

    def __enter__(self) -> "WorkerFleet":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()
