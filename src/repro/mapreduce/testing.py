"""Fault-injection helpers for exercising the engine's fault tolerance.

These jobs misbehave on purpose — raising, killing their own worker
process, or hanging — so tests (and the CI fault-tolerance smoke job)
can drive the :class:`~repro.mapreduce.MapReduceEngine` recovery paths
deterministically:

- :class:`PoisonPillJob` — a marked key fails on *every* attempt (the
  quarantine path);
- :class:`TransientFaultJob` — a marked key fails its first ``n``
  attempts, then succeeds (the retry path);
- :class:`WorkerKillerJob` — a marked key SIGKILLs its worker process
  the first ``n`` attempts (the pool-restart path);
- :class:`HangingJob` — a marked key sleeps far past any sane
  ``task_timeout`` (the hung-worker watchdog path).

Failure state that must survive process boundaries (how many times has
the fault fired?) lives in a :class:`FaultMarker` file, the idiom the
engine's own retry tests established.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Iterable, Iterator

from repro.mapreduce.job import KeyValue, MapReduceJob

POISON_KEY = "poison"


class FaultMarker:
    """File-backed counter shared between parent and worker processes."""

    def __init__(self, path: str) -> None:
        self.path = str(path)

    def count(self) -> int:
        try:
            with open(self.path) as handle:
                return int(handle.read() or 0)
        except FileNotFoundError:
            return 0

    def bump(self) -> int:
        value = self.count() + 1
        with open(self.path, "w") as handle:
            handle.write(str(value))
        return value


class _IdentityJob(MapReduceJob):
    """Base: identity map/reduce over 4 partitions."""

    n_partitions = 4

    def __init__(self, marker_path: str, *, poison_key: Any = POISON_KEY) -> None:
        self.marker = FaultMarker(marker_path)
        self.poison_key = poison_key

    def map(self, key: Any, value: Any) -> Iterator[KeyValue]:
        yield key, value

    def reduce(self, key: Any, values: Iterable[Any]) -> Iterator[KeyValue]:
        for value in values:
            yield key, value


class PoisonPillJob(_IdentityJob):
    """The marked key fails on every attempt, in map or reduce."""

    def __init__(
        self,
        marker_path: str,
        *,
        poison_key: Any = POISON_KEY,
        fail_in: str = "reduce",
    ) -> None:
        super().__init__(marker_path, poison_key=poison_key)
        if fail_in not in ("map", "reduce"):
            raise ValueError("fail_in must be 'map' or 'reduce'")
        self.fail_in = fail_in

    def map(self, key: Any, value: Any) -> Iterator[KeyValue]:
        if self.fail_in == "map" and key == self.poison_key:
            self.marker.bump()
            raise RuntimeError(f"poison pill in map: {key!r}")
        yield key, value

    def reduce(self, key: Any, values: Iterable[Any]) -> Iterator[KeyValue]:
        if self.fail_in == "reduce" and key == self.poison_key:
            self.marker.bump()
            raise RuntimeError(f"poison pill in reduce: {key!r}")
        for value in values:
            yield key, value


class TransientFaultJob(_IdentityJob):
    """The marked key fails its first ``fail_times`` reduce attempts."""

    def __init__(
        self, marker_path: str, fail_times: int, *, poison_key: Any = POISON_KEY
    ) -> None:
        super().__init__(marker_path, poison_key=poison_key)
        self.fail_times = fail_times

    def reduce(self, key: Any, values: Iterable[Any]) -> Iterator[KeyValue]:
        if key == self.poison_key and self.marker.bump() <= self.fail_times:
            raise RuntimeError(f"transient fault: {key!r}")
        for value in values:
            yield key, value


class WorkerKillerJob(_IdentityJob):
    """The marked key SIGKILLs its own worker the first ``kill_times``
    attempts — the mid-task worker death the engine must absorb by
    restarting the pool and re-running the lost tasks.

    Only meaningful with ``n_workers > 1``; in a serial engine this
    would kill the caller, so :meth:`reduce` refuses to fire unless it
    is running in a different process than the one that created it.
    """

    def __init__(
        self, marker_path: str, kill_times: int = 1, *, poison_key: Any = POISON_KEY
    ) -> None:
        super().__init__(marker_path, poison_key=poison_key)
        self.kill_times = kill_times
        self._parent_pid = os.getpid()

    def reduce(self, key: Any, values: Iterable[Any]) -> Iterator[KeyValue]:
        if (
            key == self.poison_key
            and os.getpid() != self._parent_pid
            and self.marker.bump() <= self.kill_times
        ):
            os.kill(os.getpid(), signal.SIGKILL)
        for value in values:
            yield key, value


class HangingJob(_IdentityJob):
    """The marked key sleeps ``hang_seconds`` the first ``hang_times``
    attempts — a hung worker the ``task_timeout`` watchdog must reap."""

    def __init__(
        self,
        marker_path: str,
        *,
        hang_seconds: float = 60.0,
        hang_times: int = 1,
        poison_key: Any = POISON_KEY,
    ) -> None:
        super().__init__(marker_path, poison_key=poison_key)
        self.hang_seconds = hang_seconds
        self.hang_times = hang_times

    def reduce(self, key: Any, values: Iterable[Any]) -> Iterator[KeyValue]:
        if key == self.poison_key and self.marker.bump() <= self.hang_times:
            time.sleep(self.hang_seconds)
        for value in values:
            yield key, value
