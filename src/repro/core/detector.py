"""The BAYWATCH periodicity detector — paper Section IV end-to-end.

:class:`PeriodicityDetector` wires the three algorithm steps together:

1. *DFT analysis* — bin the request timestamps into ``x(n)``, derive a
   permutation-based power threshold, and collect spectral candidates.
2. *Pruning* — discard high-frequency noise, under-sampled candidates,
   and candidates rejected by the interval t-test; a BIC-selected
   Gaussian mixture over the interval list both guards the t-test for
   multi-period traffic and contributes its own candidates (Fig. 7).
3. *Verification* — validate each survivor on the autocorrelation hill,
   refine the period to the ACF peak, then sharpen it further from the
   folded interval statistics; near-duplicate periods are merged.

Detection is *multi-scale*: the signal is analyzed at a geometric ladder
of time scales starting from the configured finest granularity, exactly
as BAYWATCH rescales ActivitySummaries to coarser granularities "for
better scalability and periodicity detection" (Section VII-B) and
operates at daily/weekly/monthly intervals (Section X).  Fine scales
resolve second-level beacons; coarse scales absorb jitter and expose
slow or bursty periodicities (a 2-hour APT beacon with minutes of jitter
is invisible at 1 s resolution but obvious at 60 s).

The output is a :class:`DetectionResult` holding ranked
:class:`CandidatePeriod` records (frequency, period in seconds, spectral
power, ACF score, t-test p-value) — the CandidatePeriod payload the
MapReduce detection job emits (Section VII-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.autocorrelation import autocorrelation, validate_candidate
from repro.core.gmm import GaussianMixture, select_gmm
from repro.core.periodogram import candidate_peaks, power_spectrum
from repro.core.permutation import ThresholdCache, permutation_threshold
from repro.core.pruning import fold_intervals, prune_candidates
from repro.core.timeseries import ActivitySummary, bin_series, intervals_from_timestamps
from repro.obs.registry import get_registry
from repro.utils.validation import (
    as_sorted_timestamps,
    require,
    require_positive,
    require_probability,
)


@dataclass(frozen=True)
class DetectorConfig:
    """Tunable parameters of the periodicity detector.

    Defaults follow the paper: 1-second finest granularity, m = 20
    permutations at 95% confidence, t-test alpha = 5%.  ``scale_factor``
    and ``max_scales`` control the rescaling ladder; ``min_slots`` stops
    the ladder once the signal becomes too short to analyze.
    """

    time_scale: float = 1.0
    permutations: int = 20
    confidence: float = 0.95
    alpha: float = 0.05
    min_events: int = 4
    min_cycles: int = 3
    min_acf_score: float = 0.1
    min_support: float = 0.25
    max_candidates: int = 16
    use_gmm: bool = True
    gmm_max_components: int = 4
    gmm_min_weight: float = 0.1
    period_tolerance: float = 0.15
    binary_signal: bool = True
    fold_intervals: bool = True
    scale_factor: float = 4.0
    max_scales: int = 6
    min_slots: int = 32
    max_signal_length: int = 1 << 21
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        require_positive(self.time_scale, "time_scale")
        require(self.permutations >= 1, "permutations must be at least 1")
        require_probability(self.confidence, "confidence")
        require_probability(self.alpha, "alpha")
        require(self.min_events >= 2, "min_events must be at least 2")
        require(self.min_cycles >= 1, "min_cycles must be at least 1")
        require_probability(self.min_support, "min_support")
        require(self.max_candidates >= 1, "max_candidates must be at least 1")
        require_positive(self.period_tolerance, "period_tolerance")
        require(self.scale_factor > 1, "scale_factor must exceed 1")
        require(self.max_scales >= 1, "max_scales must be at least 1")
        require(self.min_slots >= 16, "min_slots must be at least 16")
        require(self.max_signal_length >= 64, "max_signal_length too small")


@dataclass(frozen=True)
class CandidatePeriod:
    """One verified periodicity; periods are in seconds.

    ``origin`` records which analysis produced the candidate (``"dft"``
    or ``"gmm"``); ``time_scale`` is the granularity at which the
    candidate was verified.
    """

    period: float
    frequency: float
    power: float
    acf_score: float
    p_value: float
    origin: str = "dft"
    time_scale: float = 1.0


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of running the detector on one communication pair."""

    periodic: bool
    candidates: Tuple[CandidatePeriod, ...]
    power_threshold: float
    n_events: int
    duration: float
    time_scale: float
    scales: Tuple[float, ...] = ()
    mixture: Optional[GaussianMixture] = None
    rejection_reason: str = ""
    #: Machine-readable rejection code for decision provenance (empty
    #: for periodic results), e.g. ``"spectral:power<threshold"``.
    rejection_code: str = ""
    #: Candidates extracted across all scales before/after pruning.
    n_candidates_raw: int = 0
    n_candidates_pruned: int = 0
    #: Best (max power - threshold) margin over all analysed scales;
    #: NaN when no scale was analysed.  Near-miss detection keys on it.
    spectral_margin: float = float("nan")

    @property
    def dominant(self) -> Optional[CandidatePeriod]:
        """The strongest verified candidate, or None."""
        return self.candidates[0] if self.candidates else None

    @property
    def dominant_period(self) -> Optional[float]:
        """Period (seconds) of the strongest candidate, or None."""
        return self.candidates[0].period if self.candidates else None

    def periods(self) -> List[float]:
        """All verified periods in seconds, strongest first."""
        return [c.period for c in self.candidates]


_MAX_SUPPRESSED_MULTIPLE = 4
_MIN_FUNDAMENTAL_STRENGTH = 0.5


@dataclass
class _PairPlan:
    """Everything pair-level the per-scale analysis needs.

    Built once per pair by :meth:`PeriodicityDetector._plan` (which also
    consumes the pair's share of the seeded generator — GMM first, then
    per-scale permutation draws — so the serial and batched paths see an
    identical random stream).  The batched fast path holds many plans at
    once while the shared-array kernels run.
    """

    ts: np.ndarray
    duration: float
    scales: List[float]
    intervals: np.ndarray
    positive: np.ndarray
    mixture: Optional[GaussianMixture]
    gmm_periods: List[float]
    rng: np.random.Generator
    # Provenance accumulators, folded into the DetectionResult by
    # _finalize; both the serial and batched paths update them.
    n_raw: int = 0
    n_pruned: int = 0
    margin: float = float("-inf")


@dataclass
class _ScaleWork:
    """Pending ACF verification for one (pair, scale) slot.

    Produced by :meth:`PeriodicityDetector._analyze_scale` when at least
    one pruned candidate still needs hill validation; the ACF itself is
    computed by the caller (serially, or as a row of a batched
    transform) and handed to :meth:`PeriodicityDetector._verify_scale`.
    """

    scale: float
    signal: np.ndarray
    finalists: List[Tuple[Tuple[float, float, str, float], object]] = field(
        default_factory=list
    )


def _power_near_bin(
    spectrum: np.ndarray, center: float, half_width: int
) -> Optional[float]:
    """Strongest power within ``half_width`` DFT bins of fractional bin
    ``center``.

    ``spectrum`` comes from :func:`~repro.core.periodogram.power_spectrum`,
    which drops the DC bin, so ``spectrum[i]`` holds DFT bin ``i + 1``:
    probing bins ``[center - half_width, center + half_width]`` means
    slicing indices shifted down by one.  Returns ``None`` when the
    window falls entirely outside the spectrum.
    """
    low = max(0, int(np.floor(center)) - half_width - 1)
    high = min(spectrum.size, int(np.ceil(center)) + half_width)
    if low >= high:
        return None
    return float(spectrum[low:high].max())


def _merge_similar(
    candidates: List[CandidatePeriod], tolerance: float
) -> List[CandidatePeriod]:
    """Merge near-duplicate periods, preferring fundamentals.

    Candidates are processed in ascending period order so that a
    fundamental suppresses its small integer multiples (2x-4x) — the
    subharmonics that missed beacons induce — as well as re-detections of
    the same period at another scale.  A weaker fundamental only
    suppresses a multiple when its own ACF score is at least half the
    multiple's, so a spurious short period cannot shadow a genuine long
    one.  Large multiples are kept on purpose: a burst/sleep behaviour
    such as Conficker genuinely has both a seconds-level and an
    hours-level period (Fig. 7).  The result is ordered strongest-first.
    """
    ordered = sorted(candidates, key=lambda c: (c.period, -c.acf_score))
    kept: List[CandidatePeriod] = []
    for cand in ordered:
        duplicate = False
        for index, existing in enumerate(kept):
            ratio = cand.period / max(existing.period, 1e-12)
            nearest = round(ratio)
            if not 1 <= nearest <= _MAX_SUPPRESSED_MULTIPLE:
                continue
            anchor = nearest * existing.period
            close = abs(cand.period - anchor) <= tolerance * max(cand.period, 1e-12)
            if not close:
                continue
            if nearest == 1:
                # Same period seen twice (another scale / another origin):
                # always merge, keeping the stronger estimate.
                if cand.acf_score > existing.acf_score:
                    kept[index] = cand
                duplicate = True
                break
            if existing.acf_score >= _MIN_FUNDAMENTAL_STRENGTH * cand.acf_score:
                # A sufficiently strong fundamental absorbs its multiple.
                duplicate = True
                break
        if not duplicate:
            kept.append(cand)
    return sorted(kept, key=lambda c: (c.acf_score, c.power), reverse=True)


class PeriodicityDetector:
    """Robust periodicity detection for one communication pair.

    Instances are stateless apart from configuration, so a single
    detector can be reused across millions of pairs.
    """

    def __init__(
        self,
        config: Optional[DetectorConfig] = None,
        *,
        threshold_cache: Optional[ThresholdCache] = None,
    ) -> None:
        """``threshold_cache`` (optional) reuses permutation thresholds
        across pairs with similar binary-signal shapes — the production
        speed/accuracy trade-off for million-pair runs.  Only consulted
        when ``config.binary_signal`` is on."""
        self.config = config or DetectorConfig()
        self.threshold_cache = threshold_cache

    # -- public API --------------------------------------------------------

    def detect(self, timestamps: Sequence[float]) -> DetectionResult:
        """Detect periodicities in a raw timestamp sequence (seconds)."""
        registry = get_registry()
        registry.counter("detector.pairs_total").inc()
        ts = as_sorted_timestamps(timestamps)
        early, prepared = self._screen(ts)
        if early is not None:
            return early
        duration, scales = prepared
        with registry.timer("detector.detect.seconds"):
            result = self._detect_multi_scale(ts, duration, scales)
        if result.periodic:
            registry.counter("detector.pairs_periodic").inc()
        return result

    def detect_summary(self, summary: ActivitySummary) -> DetectionResult:
        """Detect periodicities in an :class:`ActivitySummary`.

        If the summary is coarser than the configured finest scale, the
        analysis ladder simply starts at the summary's own granularity.
        """
        return self.for_time_scale(summary.time_scale).detect(
            summary.timestamps()
        )

    def screen_plan(self, timestamps: Sequence[float]) -> _PairPlan:
        """A pair plan for :meth:`probe_prebinned` — no GMM, no scales.

        Incremental screening maintains binned signals and spectra
        externally (sliding-DFT states on a fixed day grid) and only
        needs the pair-level interval statistics to run candidate
        pruning and ACF verification against them.  Skipping the GMM
        fit keeps the probe cheap; the full detector re-runs on
        whatever the probe lets through, so the fit is only ever paid
        for genuine survivors.
        """
        ts = np.asarray(timestamps, dtype=float)
        duration = float(ts[-1] - ts[0]) if ts.size >= 2 else 0.0
        intervals = intervals_from_timestamps(ts)
        return _PairPlan(
            ts=ts,
            duration=duration,
            scales=[],
            intervals=intervals,
            positive=intervals[intervals > 0],
            mixture=None,
            gmm_periods=[],
            rng=np.random.default_rng(self.config.seed),
        )

    def probe_prebinned(
        self,
        plan: _PairPlan,
        scale: float,
        signal: np.ndarray,
        spectrum: np.ndarray,
        threshold: float,
    ) -> List[CandidatePeriod]:
        """Steps 2-3 on an externally binned signal and spectrum.

        Runs candidate extraction, pruning, and ACF verification
        exactly as :meth:`_detect_at_scale` does, but on a caller-
        provided ``signal``/``spectrum``/``threshold`` triple (e.g. a
        grid-anchored sliding-DFT state) instead of re-binning and
        re-transforming the timestamps.  Returns the verified
        candidates at this scale; ``plan`` accumulates the usual
        provenance counters (``n_raw``, ``n_pruned``).
        """
        work = self._analyze_scale(plan, scale, signal, spectrum, threshold)
        if work is None:
            return []
        with get_registry().timer("detector.acf.seconds"):
            acf = autocorrelation(signal)
        return self._verify_scale(plan, work, acf)

    def for_time_scale(self, time_scale: float) -> "PeriodicityDetector":
        """A detector whose analysis ladder starts at ``time_scale``.

        Returns ``self`` unless the requested granularity is coarser
        than the configured finest scale.  The threshold cache is
        threaded through: coarse-granularity summaries dominate the
        weekly/monthly passes, and losing the cache there would re-run
        the permutation test for every pair (the cache is keyed on
        signal shape only, so sharing it across time scales is safe).
        """
        if time_scale <= self.config.time_scale:
            return self
        return PeriodicityDetector(
            replace(self.config, time_scale=time_scale),
            threshold_cache=self.threshold_cache,
        )

    # -- internals ----------------------------------------------------------

    def _screen(
        self, ts: np.ndarray
    ) -> Tuple[Optional[DetectionResult], Optional[Tuple[float, List[float]]]]:
        """The cheap pre-analysis gates shared by serial and batched paths.

        Returns either an early rejection result, or the ``(duration,
        scales)`` pair the full analysis needs.  Exactly one element of
        the returned tuple is non-None.
        """
        cfg = self.config
        if ts.size < cfg.min_events:
            return (
                self._rejected(
                    ts,
                    f"fewer than {cfg.min_events} events",
                    code="spectral:min_events",
                ),
                None,
            )
        duration = float(ts[-1] - ts[0])
        if duration <= 0:
            return (
                self._rejected(
                    ts,
                    "all events in a single time slot",
                    code="spectral:single_slot",
                ),
                None,
            )
        scales = self._choose_scales(duration)
        if not scales:
            return (
                self._rejected(
                    ts,
                    "window too short at every analysis scale",
                    code="spectral:window_too_short",
                ),
                None,
            )
        return None, (duration, scales)

    def _choose_scales(self, duration: float) -> List[float]:
        """The geometric ladder of analysis granularities for ``duration``.

        Scales where the signal would be longer than
        ``max_signal_length`` slots are skipped (the caller should have
        rescaled already); the ladder stops when fewer than ``min_slots``
        slots remain.
        """
        cfg = self.config
        scales: List[float] = []
        scale = cfg.time_scale
        for _ in range(cfg.max_scales):
            n_slots = duration / scale + 1
            if n_slots < cfg.min_slots:
                break
            if n_slots <= cfg.max_signal_length:
                scales.append(scale)
            scale *= cfg.scale_factor
        return scales

    def _rejected(
        self, ts: np.ndarray, reason: str, code: str = ""
    ) -> DetectionResult:
        get_registry().counter("detector.pairs_rejected_early").inc()
        duration = float(ts[-1] - ts[0]) if ts.size >= 2 else 0.0
        return DetectionResult(
            periodic=False,
            candidates=(),
            power_threshold=float("nan"),
            n_events=int(ts.size),
            duration=duration,
            time_scale=self.config.time_scale,
            rejection_reason=reason,
            rejection_code=code,
        )

    def _plan(
        self, ts: np.ndarray, duration: float, scales: List[float]
    ) -> _PairPlan:
        """Pair-level analysis plan: intervals, GMM, useful scales, rng.

        This consumes the pair's seeded generator in a fixed order (GMM
        fit first); per-scale permutation draws follow in scale order.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        intervals = intervals_from_timestamps(ts)
        positive = intervals[intervals > 0]

        mixture: Optional[GaussianMixture] = None
        if cfg.use_gmm and positive.size >= 4:
            mixture = select_gmm(
                positive, max_components=cfg.gmm_max_components, rng=rng
            )
        gmm_periods: List[float] = (
            mixture.candidate_periods(cfg.gmm_min_weight, min_count=6)
            if mixture
            else []
        )

        # Scales much finer than the smallest inter-event interval cannot
        # reveal anything the next-coarser scale will not: every
        # detectable period there is pruned by the min-interval filter.
        # Skipping them avoids the largest FFTs entirely.
        if positive.size:
            floor = float(positive.min()) / 128.0
            useful = [s for s in scales if s >= floor]
            if useful:
                scales = useful
            else:
                scales = scales[-1:]

        return _PairPlan(
            ts=ts,
            duration=duration,
            scales=list(scales),
            intervals=intervals,
            positive=positive,
            mixture=mixture,
            gmm_periods=gmm_periods,
            rng=rng,
        )

    def _detect_multi_scale(
        self, ts: np.ndarray, duration: float, scales: List[float]
    ) -> DetectionResult:
        plan = self._plan(ts, duration, scales)
        verified: List[CandidatePeriod] = []
        thresholds: List[float] = []
        for scale in plan.scales:
            verified.extend(self._detect_at_scale(plan, scale, thresholds))
        return self._finalize(plan, verified, thresholds)

    def _finalize(
        self,
        plan: _PairPlan,
        verified: List[CandidatePeriod],
        thresholds: List[float],
    ) -> DetectionResult:
        """Merge per-scale survivors into the pair's final verdict."""
        cfg = self.config
        merged = _merge_similar(verified, cfg.period_tolerance)
        threshold = thresholds[0] if thresholds else float("nan")
        reason = ""
        code = ""
        if not merged:
            reason = "no candidate survived pruning and ACF verification"
            if plan.n_raw == 0:
                code = "spectral:power<threshold"
            elif plan.n_pruned == 0:
                code = "pruning:rejected"
            else:
                code = "acf:below_min_score"
        margin = plan.margin if plan.margin > float("-inf") else float("nan")
        return DetectionResult(
            periodic=bool(merged),
            candidates=tuple(merged),
            power_threshold=threshold,
            n_events=int(plan.ts.size),
            duration=plan.duration,
            time_scale=cfg.time_scale,
            scales=tuple(plan.scales),
            mixture=plan.mixture,
            rejection_reason=reason,
            rejection_code=code,
            n_candidates_raw=plan.n_raw,
            n_candidates_pruned=plan.n_pruned,
            spectral_margin=margin,
        )

    def _bin_at_scale(
        self, plan: _PairPlan, scale: float
    ) -> Optional[np.ndarray]:
        """The binned signal at one scale, or None when it is too short."""
        get_registry().counter("detector.scales_analyzed").inc()
        signal = bin_series(plan.ts, scale, binary=self.config.binary_signal)
        if signal.size < self.config.min_slots:
            return None
        return signal

    def _scale_threshold(
        self, signal: np.ndarray, rng: np.random.Generator
    ) -> float:
        """Permutation power threshold for one binned signal."""
        cfg = self.config
        with get_registry().timer("detector.permutation.seconds"):
            if self.threshold_cache is not None and cfg.binary_signal:
                return self.threshold_cache.threshold(
                    signal.size, int(signal.sum())
                )
            return permutation_threshold(
                signal,
                permutations=cfg.permutations,
                confidence=cfg.confidence,
                rng=rng,
            ).threshold

    def _detect_at_scale(
        self, plan: _PairPlan, scale: float, thresholds: List[float]
    ) -> List[CandidatePeriod]:
        """Run steps 1-3 at a single granularity; periods in seconds."""
        registry = get_registry()
        signal = self._bin_at_scale(plan, scale)
        if signal is None:
            return []
        threshold = self._scale_threshold(signal, plan.rng)
        thresholds.append(threshold)
        with registry.timer("detector.dft.seconds"):
            spectrum = power_spectrum(signal)
        margin = float(spectrum.max()) - threshold
        if margin > plan.margin:
            plan.margin = margin
        work = self._analyze_scale(plan, scale, signal, spectrum, threshold)
        if work is None:
            return []
        with registry.timer("detector.acf.seconds"):
            acf = autocorrelation(signal)
        return self._verify_scale(plan, work, acf)

    def _analyze_scale(
        self,
        plan: _PairPlan,
        scale: float,
        signal: np.ndarray,
        spectrum: np.ndarray,
        threshold: float,
    ) -> Optional[_ScaleWork]:
        """Candidate extraction and pruning at one scale, pre-ACF.

        The periodogram is computed once by the caller and shared by
        spectral peak extraction and the GMM power probe (each used to
        run its own FFT).  Returns the pending verification work, or
        None when no candidate at this scale survives to the ACF step.
        """
        cfg = self.config
        registry = get_registry()
        peaks = candidate_peaks(
            signal,
            threshold,
            max_candidates=cfg.max_candidates,
            spectrum=spectrum,
        )

        # (period_seconds, power, origin, tolerance); GMM candidates are
        # attached to the scale(s) able to resolve them.  A DFT
        # candidate's tolerance is its frequency-bin resolution (at
        # least one slot); a GMM candidate is interval-derived and known
        # to one slot.
        n = signal.size
        raw: List[Tuple[float, float, str, float]] = [
            (
                peak.period * scale,
                peak.power,
                "dft",
                max(scale, (peak.period * scale) ** 2 / (n * scale)),
            )
            for peak in peaks
        ]
        # GMM candidates must clear the same permutation power bar as
        # spectral candidates — interval clustering alone is not
        # periodicity (bursty browsing clusters its intra-session
        # gaps without any spectral line at that frequency).  The
        # candidate's power is the strongest periodogram value within
        # +-1% of its frequency: the GMM mean and the effective
        # spectral period differ by a fraction of a percent, which at
        # high bin indices is dozens of bins.
        for period_s in plan.gmm_periods:
            period_slots = period_s / scale
            if not 2.0 <= period_slots <= n / cfg.min_cycles:
                continue
            center = n / period_slots
            half_width = max(2, int(np.ceil(center * 0.01)))
            power = _power_near_bin(spectrum, center, half_width)
            if power is None:
                continue
            if power > threshold:
                raw.append((period_s, power, "gmm", scale))
        if not raw:
            return None

        periods = [entry[0] for entry in raw]
        plan.n_raw += len(raw)
        registry.counter("detector.candidates_raw").inc(len(raw))
        with registry.timer("detector.pruning.seconds"):
            decisions = prune_candidates(
                periods,
                plan.intervals,
                duration=plan.duration,
                alpha=cfg.alpha,
                min_cycles=cfg.min_cycles,
                min_events=cfg.min_events,
                mixture=plan.mixture,
                fold=cfg.fold_intervals,
                tolerances=[entry[3] for entry in raw],
            )

        finalists: List[Tuple[Tuple[float, float, str, float], object]] = []
        for entry, decision in zip(raw, decisions):
            if not decision.kept:
                continue
            period_s, _power, origin, _tolerance = entry
            period_slots = period_s / scale
            if not 1.0 <= period_slots <= signal.size - 2:
                continue
            # Interval support: a spectral candidate must explain a
            # minimum fraction of the observed intervals (after folding
            # away missed-beacon multiples).  Session-structured benign
            # traffic produces coarse-scale spectral flukes whose period
            # matches almost no actual interval.  GMM candidates carry
            # interval-cluster support by construction and are exempt —
            # a rare-but-real second period (Conficker's sleep) must not
            # need majority support.  The check is O(n) and gates the
            # more expensive ACF verification.
            if origin == "dft" and not self._has_support(
                period_s, plan.positive, scale, slack=2.0
            ):
                continue
            finalists.append((entry, decision))
        plan.n_pruned += len(finalists)
        if not finalists:
            return None
        return _ScaleWork(scale=scale, signal=signal, finalists=finalists)

    def _verify_scale(
        self, plan: _PairPlan, work: _ScaleWork, acf: np.ndarray
    ) -> List[CandidatePeriod]:
        """ACF hill validation and period refinement for one scale."""
        cfg = self.config
        scale = work.scale
        out: List[CandidatePeriod] = []
        for (period_s, power, origin, _tolerance), decision in work.finalists:
            validation = validate_candidate(
                acf, period_s / scale, min_acf_score=cfg.min_acf_score
            )
            if not validation.valid:
                continue
            refined = self._refine_period(
                validation.refined_period * scale, plan.positive, scale
            )
            if origin == "dft" and not self._has_support(
                refined, plan.positive, scale
            ):
                continue
            out.append(
                CandidatePeriod(
                    period=refined,
                    frequency=1.0 / refined,
                    power=power,
                    acf_score=validation.acf_score,
                    p_value=decision.p_value if decision.p_value is not None else 1.0,
                    origin=origin,
                    time_scale=scale,
                )
            )
        get_registry().counter("detector.candidates_verified").inc(len(out))
        return out

    def _has_support(
        self, period: float, positive: np.ndarray, scale: float,
        *, slack: float = 1.0,
    ) -> bool:
        """Do enough folded intervals agree with ``period``?

        ``slack`` widens the agreement band — the pre-verification gate
        runs on the unrefined candidate, whose own resolution can exceed
        the band for long periods, so it checks loosely and the strict
        check re-runs on the refined estimate.
        """
        cfg = self.config
        if positive.size == 0 or period <= 0:
            return False
        folded = fold_intervals(positive, period)
        band = slack * np.maximum(cfg.period_tolerance * period, scale)
        support = float(np.mean(np.abs(folded - period) <= band))
        return support >= cfg.min_support

    def _refine_period(
        self, period: float, positive: np.ndarray, scale: float
    ) -> float:
        """Sharpen a slot-quantized period from the interval statistics.

        The ACF peak is quantized to the analysis scale; the mean of the
        folded intervals that fall within half a slot of the candidate
        recovers sub-slot precision.  If too few intervals agree, the
        ACF estimate is kept.
        """
        if positive.size < 3:
            return period
        folded = fold_intervals(positive, period)
        near = folded[np.abs(folded - period) <= max(scale, 0.05 * period)]
        if near.size >= max(3, positive.size // 4):
            return float(near.mean())
        return period
