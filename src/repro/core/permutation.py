"""Permutation-based power threshold — paper Section IV-B, Fig. 5.

Randomly shuffling the signal destroys any periodic structure while
preserving first-order statistics (amplitude distribution).  The maximum
periodogram power of a shuffled signal therefore estimates how much power
pure chance can concentrate in a single frequency.  Repeating the shuffle
``m`` times and taking the ``(C * m)``-th highest maximum (the C-quantile)
yields the threshold ``p_T``: original-signal frequencies below it are
indistinguishable from noise and discarded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.periodogram import batch_max_power
from repro.obs.registry import get_registry
from repro.utils.stats import percentile_threshold
from repro.utils.validation import as_float_array, require, require_probability


@dataclass(frozen=True)
class PermutationResult:
    """Outcome of the permutation thresholding procedure."""

    threshold: float
    max_powers: tuple
    permutations: int
    confidence: float


def permutation_threshold(
    signal: Sequence[float],
    *,
    permutations: int = 20,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> PermutationResult:
    """Compute the spectral power threshold ``p_T`` for ``signal``.

    Parameters
    ----------
    signal:
        The binned event signal ``x(n)``.
    permutations:
        Number ``m`` of random shuffles (paper default 20).
    confidence:
        Confidence level ``C``; the threshold is the ``ceil(C * m)``-th
        smallest of the per-permutation maximum powers (19th of 20 at
        95%).
    rng:
        Optional numpy Generator for reproducibility.
    """
    require(permutations >= 1, "permutations must be at least 1")
    require_probability(confidence, "confidence")
    x = as_float_array(signal, "signal")
    require(x.size >= 4, "signal must have at least 4 samples")
    if rng is None:
        rng = np.random.default_rng()
    shuffled = np.empty((permutations, x.size))
    for row in range(permutations):
        shuffled[row] = rng.permutation(x)
    maxima = batch_max_power(shuffled)
    threshold = percentile_threshold(maxima, confidence)
    return PermutationResult(
        threshold=threshold,
        max_powers=tuple(float(m) for m in maxima),
        permutations=permutations,
        confidence=confidence,
    )


class ThresholdCache:
    """Bucketed permutation-threshold cache for *binary* signals.

    A shuffled binary signal is fully described by its length ``N`` and
    its number of ones ``k`` — the threshold is a function of (N, k)
    only.  Large-scale runs (millions of pairs, Section VII) repeat very
    similar (N, k) combinations; this cache buckets both geometrically
    (default 5% buckets) and computes each bucket's threshold once on a
    representative synthetic signal.  The approximation error is the
    bucket width, far below the permutation estimate's own variance.
    """

    def __init__(
        self,
        *,
        ratio: float = 1.05,
        permutations: int = 20,
        confidence: float = 0.95,
        seed: int = 0,
    ) -> None:
        require(ratio > 1.0, "ratio must exceed 1")
        self.ratio = ratio
        self.permutations = permutations
        self.confidence = confidence
        self.seed = seed
        self._cache: dict = {}
        self.hits = 0
        self.misses = 0

    def _bucket(self, value: int) -> int:
        return int(round(np.log(max(value, 1)) / np.log(self.ratio)))

    def threshold(self, n_slots: int, n_ones: int) -> float:
        """Permutation threshold for a binary signal of this shape."""
        require(n_slots >= 4, "n_slots must be at least 4")
        n_ones = int(min(max(n_ones, 1), n_slots))
        key = (self._bucket(n_slots), self._bucket(n_ones))
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            get_registry().counter("detector.threshold_cache.hits").inc()
            return cached
        self.misses += 1
        get_registry().counter("detector.threshold_cache.misses").inc()
        # Representative signal at the bucket's geometric center.
        rep_n = max(4, int(round(self.ratio ** key[0])))
        rep_k = min(rep_n, max(1, int(round(self.ratio ** key[1]))))
        signal = np.zeros(rep_n)
        signal[:rep_k] = 1.0
        result = permutation_threshold(
            signal,
            permutations=self.permutations,
            confidence=self.confidence,
            rng=np.random.default_rng(self.seed),
        )
        self._cache[key] = result.threshold
        return result.threshold
