"""Permutation-based power threshold — paper Section IV-B, Fig. 5.

Randomly shuffling the signal destroys any periodic structure while
preserving first-order statistics (amplitude distribution).  The maximum
periodogram power of a shuffled signal therefore estimates how much power
pure chance can concentrate in a single frequency.  Repeating the shuffle
``m`` times and taking the ``(C * m)``-th highest maximum (the C-quantile)
yields the threshold ``p_T``: original-signal frequencies below it are
indistinguishable from noise and discarded.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.periodogram import batch_max_power
from repro.obs.registry import get_registry
from repro.utils.stats import percentile_threshold
from repro.utils.validation import as_float_array, require, require_probability

#: Version of the ``ThresholdCache.save`` JSON layout.
CACHE_FILE_VERSION = 1


@dataclass(frozen=True)
class PermutationResult:
    """Outcome of the permutation thresholding procedure."""

    threshold: float
    max_powers: tuple
    permutations: int
    confidence: float


def permutation_threshold(
    signal: Sequence[float],
    *,
    permutations: int = 20,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> PermutationResult:
    """Compute the spectral power threshold ``p_T`` for ``signal``.

    Parameters
    ----------
    signal:
        The binned event signal ``x(n)``.
    permutations:
        Number ``m`` of random shuffles (paper default 20).
    confidence:
        Confidence level ``C``; the threshold is the ``ceil(C * m)``-th
        smallest of the per-permutation maximum powers (19th of 20 at
        95%).
    rng:
        Optional numpy Generator for reproducibility.
    """
    require(permutations >= 1, "permutations must be at least 1")
    require_probability(confidence, "confidence")
    x = as_float_array(signal, "signal")
    require(x.size >= 4, "signal must have at least 4 samples")
    if rng is None:
        rng = np.random.default_rng()
    # One vectorized shuffle of all m rows; ``Generator.permuted`` draws
    # the same variates per row as m sequential ``rng.permutation(x)``
    # calls, so thresholds are unchanged — only the Python loop is gone.
    shuffled = rng.permuted(np.tile(x, (permutations, 1)), axis=1)
    maxima = batch_max_power(shuffled)
    threshold = percentile_threshold(maxima, confidence)
    return PermutationResult(
        threshold=threshold,
        max_powers=tuple(float(m) for m in maxima),
        permutations=permutations,
        confidence=confidence,
    )


class ThresholdCacheMismatch(ValueError):
    """A persisted cache was produced under different parameters."""


class ThresholdCache:
    """Bucketed permutation-threshold cache for *binary* signals.

    A shuffled binary signal is fully described by its length ``N`` and
    its number of ones ``k`` — the threshold is a function of (N, k)
    only.  Large-scale runs (millions of pairs, Section VII) repeat very
    similar (N, k) combinations; this cache buckets both geometrically
    (default 5% buckets) and computes each bucket's threshold once on a
    representative synthetic signal.  The approximation error is the
    bucket width, far below the permutation estimate's own variance.

    Bucket thresholds depend only on the bucket key and the cache's
    parameters (each is derived with a generator seeded from ``seed``),
    so warmth is shareable: :meth:`precompute` fills buckets ahead of a
    run, and :meth:`save`/:meth:`load` persist them as JSON so workers
    and resumed batches start warm instead of re-deriving every bucket.
    """

    def __init__(
        self,
        *,
        ratio: float = 1.05,
        permutations: int = 20,
        confidence: float = 0.95,
        seed: int = 0,
    ) -> None:
        require(ratio > 1.0, "ratio must exceed 1")
        self.ratio = ratio
        self.permutations = permutations
        self.confidence = confidence
        self.seed = seed
        self._cache: Dict[Tuple[int, int], float] = {}
        # Exact (n_slots, n_ones) -> threshold front map: repeated
        # lookups skip the two log() calls of the bucket math.  Derived
        # data only — never persisted or pickled.
        self._exact: Dict[Tuple[int, int], float] = {}
        self.hits = 0
        self.misses = 0
        # Hit/miss counters resolved once per active registry: the
        # registry's name->counter lookup is measurable in the
        # million-pair loop, and the hit path must stay O(dict get).
        self._counter_registry: Optional[object] = None
        self._hit_counter = None
        self._miss_counter = None

    def __getstate__(self) -> dict:
        """Drop the registry handles: counters hold locks and must be
        re-resolved inside whatever process (and registry) unpickles us."""
        state = dict(self.__dict__)
        state["_counter_registry"] = None
        state["_hit_counter"] = None
        state["_miss_counter"] = None
        state["_exact"] = {}  # derived; keeps worker pickles small
        return state

    def _counters(self):
        registry = get_registry()
        if registry is not self._counter_registry:
            self._counter_registry = registry
            self._hit_counter = registry.counter("detector.threshold_cache.hits")
            self._miss_counter = registry.counter(
                "detector.threshold_cache.misses"
            )
        return self._hit_counter, self._miss_counter

    def _bucket(self, value: int) -> int:
        return int(round(math.log(max(value, 1)) / math.log(self.ratio)))

    def _key(self, n_slots: int, n_ones: int) -> Tuple[int, int]:
        n_ones = int(min(max(n_ones, 1), n_slots))
        return (self._bucket(n_slots), self._bucket(n_ones))

    def threshold(self, n_slots: int, n_ones: int) -> float:
        """Permutation threshold for a binary signal of this shape."""
        exact_key = (n_slots, n_ones)
        cached = self._exact.get(exact_key)
        if cached is not None:
            self.hits += 1
            hits, _misses = self._counters()
            hits.inc()
            return cached
        require(n_slots >= 4, "n_slots must be at least 4")
        key = self._key(n_slots, n_ones)
        cached = self._cache.get(key)
        hits, misses = self._counters()
        if cached is not None:
            self.hits += 1
            hits.inc()
            self._exact[exact_key] = cached
            return cached
        self.misses += 1
        misses.inc()
        value = self._compute(key)
        self._exact[exact_key] = value
        return value

    def _compute(self, key: Tuple[int, int]) -> float:
        """Derive one bucket's threshold on its representative signal."""
        rep_n = max(4, int(round(self.ratio ** key[0])))
        rep_k = min(rep_n, max(1, int(round(self.ratio ** key[1]))))
        signal = np.zeros(rep_n)
        signal[:rep_k] = 1.0
        result = permutation_threshold(
            signal,
            permutations=self.permutations,
            confidence=self.confidence,
            rng=np.random.default_rng(self.seed),
        )
        self._cache[key] = result.threshold
        return result.threshold

    def __len__(self) -> int:
        return len(self._cache)

    # -- warmth ------------------------------------------------------------

    def precompute(self, grid: Iterable[Tuple[int, int]]) -> int:
        """Warm every bucket covering the ``(n_slots, n_ones)`` grid.

        Returns how many buckets were newly computed.  Unlike
        :meth:`threshold`, precomputation does not touch the hit/miss
        statistics — warming is setup, not lookup traffic.
        """
        computed = 0
        for n_slots, n_ones in grid:
            require(int(n_slots) >= 4, "n_slots must be at least 4")
            key = self._key(int(n_slots), int(n_ones))
            if key not in self._cache:
                self._compute(key)
                computed += 1
        return computed

    # -- persistence -------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the warm buckets as versioned JSON.

        The file records the cache parameters (``ratio``,
        ``permutations``, ``confidence``, ``seed``) so :meth:`load`
        can refuse entries derived under a different configuration.
        """
        path = Path(path)
        payload = {
            "version": CACHE_FILE_VERSION,
            "ratio": self.ratio,
            "permutations": self.permutations,
            "confidence": self.confidence,
            "seed": self.seed,
            "entries": [
                [key[0], key[1], value]
                for key, value in sorted(self._cache.items())
            ],
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def load(self, path: Union[str, Path]) -> int:
        """Merge persisted buckets into this cache; returns how many.

        Raises :class:`ThresholdCacheMismatch` when the file was written
        under different parameters (or a different file version) —
        mixing thresholds across configurations would silently change
        detection results.
        """
        path = Path(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != CACHE_FILE_VERSION:
            raise ThresholdCacheMismatch(
                f"threshold cache {path} has file version "
                f"{payload.get('version')!r}; expected {CACHE_FILE_VERSION}"
            )
        for name in ("ratio", "permutations", "confidence", "seed"):
            if payload.get(name) != getattr(self, name):
                raise ThresholdCacheMismatch(
                    f"threshold cache {path} was computed with "
                    f"{name}={payload.get(name)!r}, this cache uses "
                    f"{name}={getattr(self, name)!r}; refusing to load"
                )
        entries = payload["entries"]
        for bucket_n, bucket_k, value in entries:
            self._cache[(int(bucket_n), int(bucket_k))] = float(value)
        return len(entries)
