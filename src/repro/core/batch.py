"""Batched multi-pair spectral kernels — the detection fast path.

The serial detector runs one ``rfft`` per (pair, scale) slot, one more
for each ACF, and twenty more inside every cold permutation test.  At
BAYWATCH scale (Section VII: millions of pairs) the per-call Python and
scipy dispatch overhead of those small transforms dominates the actual
arithmetic.  This module amortizes it:

- :func:`batch_power_spectra`, :func:`batch_autocorrelation`, and
  :func:`batch_candidate_peaks` group signals by transform shape, stack
  them into 2-D arrays, and run *single* batched ``scipy.fft`` calls
  (optionally threaded via ``workers=``); per-pair post-processing
  consumes rows of the shared arrays.
- :class:`BatchedDetector` drives whole batches of
  :class:`~repro.core.timeseries.ActivitySummary` pairs through the
  :class:`~repro.core.detector.PeriodicityDetector` seams, replacing
  the per-pair transforms with the kernels above.

Every kernel is bit-for-bit equivalent to its serial counterpart (the
same mean removal, padding, and normalization in the same dtype), and
the driver consumes each pair's seeded generator in the serial order —
so batch size 1 *and* batch size N reproduce ``detect_summary`` exactly.
The parity suite enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import fft as _fft

from repro.core.detector import (
    CandidatePeriod,
    DetectionResult,
    PeriodicityDetector,
    _PairPlan,
    _ScaleWork,
)
from repro.core.periodogram import SpectralPeak, candidate_peaks
from repro.core.timeseries import ActivitySummary
from repro.obs.registry import get_registry
from repro.obs.tracing import span
from repro.utils.validation import as_sorted_timestamps, require

__all__ = [
    "batch_power_spectra",
    "batch_autocorrelation",
    "batch_candidate_peaks",
    "BatchedDetector",
]


def batch_power_spectra(
    signals: np.ndarray, *, workers: Optional[int] = None
) -> np.ndarray:
    """Periodogram power of every row of equal-length ``signals``.

    Row ``i`` of the result equals
    ``power_spectrum(signals[i])`` bit for bit — same mean removal,
    same transform length, same normalization — but all rows share one
    batched real FFT.  ``workers`` threads the transform for large
    batches (scipy releases the GIL per row block).
    """
    x = np.ascontiguousarray(signals, dtype=float)
    require(x.ndim == 2, "signals must be 2-D (one row per pair)")
    require(x.shape[1] >= 4, "signals must have at least 4 columns")
    centered = x - x.mean(axis=1, keepdims=True)
    spectrum = _fft.rfft(centered, axis=1, workers=workers)
    # The elementwise complex ops run per row: numpy's SIMD kernels may
    # round |z|**2 differently over a long 2-D buffer than over the 1-D
    # array the serial power_spectrum sees, and bitwise parity wins over
    # the marginal vectorization gain (the FFT above stays batched).
    out = np.empty((x.shape[0], x.shape[1] // 2))
    for row in range(x.shape[0]):
        power = (np.abs(spectrum[row]) ** 2) / x.shape[1]
        out[row] = power[1:]  # drop DC, as power_spectrum does
    return out


def batch_autocorrelation(
    signals: Sequence[np.ndarray], *, workers: Optional[int] = None
) -> List[np.ndarray]:
    """ACF of each (variable-length) signal via shape-grouped transforms.

    Signals are bucketed by their FFT size (``next_fast_len(2n)`` —
    the same padded length :func:`~repro.core.autocorrelation.autocorrelation`
    uses), zero-padded into one stack per bucket, and transformed with a
    single ``rfft``/``irfft`` pair per bucket.  Each returned array is
    bitwise identical to the serial ACF, including the degenerate
    zero-variance case (all-equal signal -> zeros with ``acf[0] = 1``).
    """
    arrays = [np.asarray(signal, dtype=float) for signal in signals]
    out: List[Optional[np.ndarray]] = [None] * len(arrays)
    groups: Dict[int, List[int]] = {}
    for index, x in enumerate(arrays):
        require(
            x.ndim == 1 and x.size >= 4,
            "each signal must be 1-D with at least 4 samples",
        )
        groups.setdefault(_fft.next_fast_len(2 * x.size), []).append(index)
    for size, members in groups.items():
        padded = np.zeros((len(members), size))
        variances = np.empty(len(members))
        for row, index in enumerate(members):
            x = arrays[index]
            centered = x - x.mean()
            padded[row, : x.size] = centered
            variances[row] = float(np.dot(centered, centered))
        spectrum = _fft.rfft(padded, axis=1, workers=workers)
        # Self-product row by row: the complex multiply is the one
        # elementwise op whose SIMD rounding depends on buffer length,
        # so a single 2-D product would drift from the serial ACF by an
        # ulp.  Both FFTs are batched; only this product is per-row.
        product = np.empty_like(spectrum)
        for row in range(len(members)):
            product[row] = spectrum[row] * np.conj(spectrum[row])
        correlation = _fft.irfft(product, size, axis=1, workers=workers)
        for row, index in enumerate(members):
            n = arrays[index].size
            if variances[row] <= 0:
                acf = np.zeros(n)
                acf[0] = 1.0
            else:
                acf = correlation[row, :n] / variances[row]
            out[index] = acf
    return out  # type: ignore[return-value]


def batch_candidate_peaks(
    signals: np.ndarray,
    thresholds: Sequence[float],
    *,
    max_candidates: int = 32,
    workers: Optional[int] = None,
) -> List[List[SpectralPeak]]:
    """Spectral peaks of each row of equal-length ``signals``.

    Equivalent to calling
    :func:`~repro.core.periodogram.candidate_peaks` per row against the
    matching threshold, with all row periodograms produced by one
    batched transform.
    """
    x = np.asarray(signals, dtype=float)
    require(x.ndim == 2, "signals must be 2-D (one row per pair)")
    levels = np.asarray(thresholds, dtype=float)
    require(
        levels.shape == (x.shape[0],),
        "thresholds must provide one level per signal row",
    )
    power = batch_power_spectra(x, workers=workers)
    return [
        candidate_peaks(
            row,
            float(level),
            max_candidates=max_candidates,
            spectrum=row_power,
        )
        for row, level, row_power in zip(x, levels, power)
    ]


@dataclass
class _Slot:
    """One (pair, scale) unit of batched work."""

    scale: float
    signal: np.ndarray
    spectrum: Optional[np.ndarray] = None
    #: Row maximum of ``spectrum``, computed vectorized per shape group.
    #: When it does not strictly exceed the permutation threshold,
    #: ``_analyze_scale`` provably returns None (both DFT peaks and the
    #: GMM window probe require ``power > threshold``) with no counter
    #: side effects, so the whole call is skipped.
    spectrum_max: float = 0.0
    work: Optional[_ScaleWork] = None
    acf: Optional[np.ndarray] = None


@dataclass
class _PairUnit:
    """Per-pair state threaded through the batch phases."""

    detector: PeriodicityDetector
    result: Optional[DetectionResult] = None  # early rejection
    plan: Optional[_PairPlan] = None
    slots: List[_Slot] = field(default_factory=list)
    thresholds: List[float] = field(default_factory=list)


class BatchedDetector:
    """Multi-pair detection over the shape-grouped kernels.

    Wraps a :class:`PeriodicityDetector` and processes summaries in
    chunks of ``batch_size``: per-pair screening, planning, and binning
    run first (consuming each pair's seeded generator exactly as the
    serial path does), then all periodograms of a chunk are produced by
    shape-grouped batched FFTs, then candidate analysis runs per slot,
    and finally the surviving slots' ACFs come from one more batched
    transform before per-pair verification and merging.

    Results are returned in input order and are identical to calling
    ``detector.detect_summary`` per pair — batching changes the
    transform grouping, never the arithmetic or the random stream.
    """

    def __init__(
        self,
        detector: Optional[PeriodicityDetector] = None,
        *,
        batch_size: int = 256,
        workers: Optional[int] = None,
    ) -> None:
        require(batch_size >= 1, "batch_size must be at least 1")
        self.detector = detector or PeriodicityDetector()
        self.batch_size = batch_size
        self.workers = workers

    def detect_summaries(
        self, summaries: Sequence[ActivitySummary]
    ) -> List[DetectionResult]:
        """Detection results for ``summaries``, in input order."""
        results: List[DetectionResult] = []
        for start in range(0, len(summaries), self.batch_size):
            chunk = summaries[start : start + self.batch_size]
            with span("detect.batch"):
                results.extend(self._detect_chunk(chunk))
        return results

    # -- batch phases ------------------------------------------------------

    def _detect_chunk(
        self, summaries: Sequence[ActivitySummary]
    ) -> List[DetectionResult]:
        registry = get_registry()
        registry.counter("detector.batch.batches").inc()
        registry.counter("detector.batch.pairs").inc(len(summaries))

        # Phase 1 — screen, plan, and bin every pair.  This is the
        # rng-bearing part, so it runs strictly in pair order.
        units: List[_PairUnit] = []
        pending: List[_Slot] = []
        for summary in summaries:
            registry.counter("detector.pairs_total").inc()
            detector = self.detector.for_time_scale(summary.time_scale)
            unit = _PairUnit(detector=detector)
            ts = as_sorted_timestamps(summary.timestamps())
            early, prepared = detector._screen(ts)
            if early is not None:
                unit.result = early
            else:
                duration, scales = prepared
                unit.plan = detector._plan(ts, duration, scales)
                for scale in unit.plan.scales:
                    signal = detector._bin_at_scale(unit.plan, scale)
                    if signal is not None:
                        slot = _Slot(scale=scale, signal=signal)
                        unit.slots.append(slot)
                        pending.append(slot)
            units.append(unit)

        # Phase 2 — one batched FFT per distinct signal length.
        with span("detect.batch.spectra"):
            self._attach_spectra(pending, registry)

        # Phase 3 — thresholds and pre-ACF candidate analysis, again in
        # pair order: the no-cache permutation path draws from the
        # pair's generator, scale by scale, exactly like the serial loop.
        acf_slots: List[_Slot] = []
        with span("detect.batch.analyze"):
            for unit in units:
                if unit.plan is None:
                    continue
                for slot in unit.slots:
                    threshold = unit.detector._scale_threshold(
                        slot.signal, unit.plan.rng
                    )
                    unit.thresholds.append(threshold)
                    margin = slot.spectrum_max - threshold
                    if margin > unit.plan.margin:
                        unit.plan.margin = margin
                    if slot.spectrum_max <= threshold:
                        continue  # nothing can clear the bar; see _Slot
                    slot.work = unit.detector._analyze_scale(
                        unit.plan, slot.scale, slot.signal,
                        slot.spectrum, threshold,
                    )
                    if slot.work is not None:
                        acf_slots.append(slot)

        # Phase 4 — one batched ACF per padded-length group, but only
        # for slots that still have candidates to verify (the serial
        # path computes the ACF just as lazily).
        with span("detect.batch.acf"):
            if acf_slots:
                registry.counter("detector.batch.acf_rows").inc(len(acf_slots))
                acfs = batch_autocorrelation(
                    [slot.signal for slot in acf_slots], workers=self.workers
                )
                for slot, acf in zip(acf_slots, acfs):
                    slot.acf = acf

        # Phase 5 — per-pair verification and merging.
        with span("detect.batch.verify"):
            results: List[DetectionResult] = []
            for unit in units:
                if unit.result is not None:
                    results.append(unit.result)
                    continue
                verified: List[CandidatePeriod] = []
                for slot in unit.slots:
                    if slot.work is not None:
                        verified.extend(
                            unit.detector._verify_scale(
                                unit.plan, slot.work, slot.acf
                            )
                        )
                result = unit.detector._finalize(
                    unit.plan, verified, unit.thresholds
                )
                if result.periodic:
                    registry.counter("detector.pairs_periodic").inc()
                results.append(result)
        return results

    def _attach_spectra(self, slots: List[_Slot], registry) -> None:
        """Fill each slot's periodogram from shape-grouped batched FFTs."""
        if not slots:
            return
        groups: Dict[int, List[_Slot]] = {}
        for slot in slots:
            groups.setdefault(slot.signal.size, []).append(slot)
        registry.counter("detector.batch.spectrum_groups").inc(len(groups))
        registry.counter("detector.batch.spectrum_rows").inc(len(slots))
        for members in groups.values():
            stacked = np.stack([slot.signal for slot in members])
            power = batch_power_spectra(stacked, workers=self.workers)
            maxima = power.max(axis=1)
            for row, slot in enumerate(members):
                slot.spectrum = power[row]
                slot.spectrum_max = float(maxima[row])
