"""Autocorrelation verification — step 3 of the detection algorithm.

The periodogram localizes energy but has coarse period resolution: DFT
bin ``k`` of an N-sample signal covers all periods in
``(N/(k+1), N/(k-1))``.  Following Vlachos et al. (SDM'05), each spectral
candidate is verified and refined on the autocorrelation function (ACF):

- a genuine period produces a *hill* in the ACF: values climb up to a
  local maximum near the period lag and descend after it;
- spurious spectral leakage does not.

For each candidate we examine the ACF segment the candidate's DFT bin can
explain, fit straight lines to the two halves around the local maximum,
and accept the candidate if the left slope is positive and the right
slope negative (with the peak meaningfully above the segment floor).  The
period estimate is refined to the lag of the ACF maximum, and the
normalized ACF value at that lag becomes the candidate's ``acf_score``
used for ranking (paper Sections V-D and VII-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import fft as _fft

from repro.utils.validation import as_float_array, require


def autocorrelation(signal: Sequence[float]) -> np.ndarray:
    """Normalized linear autocorrelation of ``signal`` for lags 0..N-1.

    Computed via FFT with zero padding (O(N log N)).  The signal mean is
    removed first; the result is normalized so that ``acf[0] == 1``.  A
    constant signal has zero variance and yields an all-zero ACF (except
    lag 0, defined as 1).
    """
    x = as_float_array(signal, "signal")
    require(x.size >= 4, "signal must have at least 4 samples")
    centered = x - x.mean()
    variance = float(np.dot(centered, centered))
    n = x.size
    if variance <= 0:
        acf = np.zeros(n)
        acf[0] = 1.0
        return acf
    size = _fft.next_fast_len(2 * n)
    spectrum = _fft.rfft(centered, size)
    correlation = _fft.irfft(spectrum * np.conj(spectrum), size)[:n]
    return correlation / variance


@dataclass(frozen=True)
class HillValidation:
    """Result of validating one candidate period on the ACF."""

    valid: bool
    refined_period: float
    acf_score: float
    left_slope: float
    right_slope: float


def _fit_slope(lags: np.ndarray, values: np.ndarray) -> float:
    """Least-squares slope of ``values`` over ``lags`` (0 if degenerate)."""
    if lags.size < 2:
        return 0.0
    slope, _intercept = np.polyfit(lags, values, 1)
    return float(slope)


def search_window(period: float, n_samples: int) -> Tuple[int, int]:
    """ACF lag window that the candidate's DFT bin can explain.

    For a candidate period ``p = N / k``, the bin covers periods in
    ``(N/(k+1), N/(k-1))``; the window is padded by one lag on each side
    (a fractional true period such as 7.5 slots puts the ACF maximum
    exactly on the bin edge), clipped to valid lags ``[1, N - 2]``, and
    always spans at least 3 lags so an interior local maximum can be
    identified.
    """
    require(n_samples >= 4, "n_samples must be at least 4")
    require(period > 0, "period must be positive")
    k = max(1.0, n_samples / period)
    low = int(np.floor(n_samples / (k + 1))) - 1
    high = int(np.ceil(n_samples / max(k - 1, 0.5))) + 1
    low = max(1, low)
    high = min(n_samples - 1, max(high, low + 2))
    return low, high


def validate_candidate(
    acf: np.ndarray,
    period: float,
    *,
    min_acf_score: float = 0.0,
    window: Optional[Tuple[int, int]] = None,
) -> HillValidation:
    """Validate a candidate ``period`` (in slots) against the ACF.

    The candidate passes when the ACF segment around it forms a hill
    (positive slope approaching the maximum, negative slope after it)
    and the ACF value at the refined peak is at least ``min_acf_score``.
    """
    acf = np.asarray(acf, dtype=float)
    n = acf.size
    require(n >= 4, "acf must have at least 4 lags")
    if window is None:
        low, high = search_window(period, n)
    else:
        low, high = window
        require(0 < low < high < n, "window must satisfy 0 < low < high < len(acf)")
    segment = acf[low : high + 1]
    peak_offset = int(np.argmax(segment))
    peak_lag = low + peak_offset
    acf_score = float(acf[peak_lag])

    left_lags = np.arange(low, peak_lag + 1)
    right_lags = np.arange(peak_lag, high + 1)
    left_slope = _fit_slope(left_lags, acf[low : peak_lag + 1])
    right_slope = _fit_slope(right_lags, acf[peak_lag : high + 1])

    # A hill requires an *interior* local maximum: climbing into the
    # peak and descending after it.  A maximum at the window edge is the
    # signature of a monotone ACF — bursty (clumped) traffic decays from
    # lag 0 and must not validate as periodic.
    climbs = left_slope > 0
    descends = right_slope < 0
    interior = low < peak_lag < high
    valid = bool(
        acf_score >= min_acf_score and interior and climbs and descends
    )
    return HillValidation(
        valid=valid,
        refined_period=float(peak_lag),
        acf_score=acf_score,
        left_slope=left_slope,
        right_slope=right_slope,
    )
