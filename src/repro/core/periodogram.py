"""Periodogram (DFT) analysis — step 1 of the detection algorithm.

The periodogram of the binned signal ``x(n)`` reveals periodicities as
spectral peaks.  Candidate frequencies are those whose power exceeds a
threshold; BAYWATCH derives the threshold from random permutations of the
signal (see :mod:`repro.core.permutation`) rather than a fixed constant,
which makes the test adaptive to the signal's own energy (paper
Section IV-B, after Vlachos et al. SDM'05).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy import fft as _fft

from repro.utils.validation import as_float_array, require


@dataclass(frozen=True)
class SpectralPeak:
    """One candidate periodicity in the frequency domain.

    ``frequency`` is in cycles per *slot*; ``period`` is in slots
    (multiply by the time scale for seconds); ``power`` is the
    periodogram power at that frequency.
    """

    frequency: float
    period: float
    power: float


def power_spectrum(signal: Sequence[float]) -> np.ndarray:
    """Periodogram power at the positive DFT frequencies.

    The DC component (k = 0) is excluded — a non-zero mean is not a
    periodicity.  For a signal of length N the result has
    ``N // 2`` entries for frequencies ``k / N``, k = 1..N//2.
    The signal mean is removed before the transform so that spectral
    leakage from the DC offset does not mask genuine peaks.
    """
    x = as_float_array(signal, "signal")
    require(x.size >= 4, "signal must have at least 4 samples")
    centered = x - x.mean()
    spectrum = _fft.rfft(centered)
    power = (np.abs(spectrum) ** 2) / x.size
    return power[1:]  # drop DC


def batch_max_power(signals: np.ndarray) -> np.ndarray:
    """Maximum periodogram power of each row of ``signals``.

    Vectorized equivalent of calling :func:`max_power` per row — one
    batched FFT instead of m sequential transforms (the permutation
    filter's hot path).
    """
    x = np.asarray(signals, dtype=float)
    require(x.ndim == 2 and x.shape[1] >= 4,
            "signals must be 2-D with at least 4 columns")
    centered = x - x.mean(axis=1, keepdims=True)
    spectrum = _fft.rfft(centered, axis=1)
    power = (np.abs(spectrum) ** 2) / x.shape[1]
    return power[:, 1:].max(axis=1)


def spectrum_frequencies(n_samples: int) -> np.ndarray:
    """Frequencies (cycles/slot) matching :func:`power_spectrum` output."""
    require(n_samples >= 4, "n_samples must be at least 4")
    return np.arange(1, n_samples // 2 + 1) / n_samples


def max_power(signal: Sequence[float]) -> float:
    """Maximum periodogram power of ``signal`` (used on permuted signals)."""
    return float(np.max(power_spectrum(signal)))


def candidate_peaks(
    signal: Sequence[float],
    power_threshold: float,
    *,
    max_candidates: int = 32,
    spectrum: Optional[np.ndarray] = None,
) -> List[SpectralPeak]:
    """Frequencies whose power strictly exceeds ``power_threshold``.

    Returns at most ``max_candidates`` peaks, strongest first.  Periods
    are expressed in slots: ``period = N / k`` for DFT bin ``k``.
    An empty result means the signal is considered non-periodic
    (paper: "the original time series will be rejected").

    ``spectrum`` optionally supplies the signal's precomputed
    :func:`power_spectrum` so callers that already hold it (the
    detector shares one periodogram between peak extraction and the GMM
    power probe; the batched path produces rows of a shared transform)
    skip the redundant FFT.
    """
    require(max_candidates > 0, "max_candidates must be positive")
    x = as_float_array(signal, "signal")
    if spectrum is None:
        power = power_spectrum(x)
    else:
        power = np.asarray(spectrum, dtype=float)
        require(
            power.shape == (x.size // 2,),
            "spectrum does not match the signal length",
        )
    freqs = spectrum_frequencies(x.size)
    selected = np.flatnonzero(power > power_threshold)
    if selected.size == 0:
        return []
    order = selected[np.argsort(power[selected])[::-1]][:max_candidates]
    return [
        SpectralPeak(
            frequency=float(freqs[idx]),
            period=float(1.0 / freqs[idx]),
            power=float(power[idx]),
        )
        for idx in order
    ]
