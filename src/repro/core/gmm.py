"""Gaussian mixture modelling of interval lists — paper Fig. 7.

Malware such as Conficker interleaves several periods (7-8 s bursts
separated by ~3 h sleeps).  A single dominant DFT peak cannot express
this, but the *interval list* can: it is a mixture of well-separated
Gaussian clusters, one per underlying period.  BAYWATCH fits 1-D Gaussian
mixture models with increasing component counts, selects the count by the
Bayesian Information Criterion (BIC), and reports each component mean as
a candidate period with its mixture weight.

The EM implementation is self-contained (no sklearn): k-means++-style
initialization, standard E/M updates with a variance floor, and
log-likelihood convergence monitoring.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import as_float_array, require, require_positive

_LOG_2PI = math.log(2.0 * math.pi)


@dataclass(frozen=True)
class GaussianComponent:
    """One mixture component: a candidate period cluster."""

    mean: float
    variance: float
    weight: float

    @property
    def std(self) -> float:
        """Standard deviation of the component."""
        return math.sqrt(self.variance)


@dataclass(frozen=True)
class GaussianMixture:
    """A fitted 1-D Gaussian mixture over an interval list."""

    components: Tuple[GaussianComponent, ...]
    log_likelihood: float
    bic: float
    n_samples: int
    converged: bool

    @property
    def n_components(self) -> int:
        """Number of mixture components."""
        return len(self.components)

    def dominant_components(
        self, min_weight: float = 0.05, *, min_count: int = 0
    ) -> List[GaussianComponent]:
        """Components with enough support, heaviest first.

        A component is kept when it carries at least ``min_weight`` of
        the probability mass *or* is backed by at least ``min_count``
        samples — a handful of 3-hour sleep intervals among hundreds of
        burst beacons is a genuine period despite its tiny weight.
        """
        kept = [
            c
            for c in self.components
            if c.weight >= min_weight
            or (min_count > 0 and c.weight * self.n_samples >= min_count)
        ]
        return sorted(kept, key=lambda c: c.weight, reverse=True)

    def candidate_periods(
        self, min_weight: float = 0.05, *, min_count: int = 0
    ) -> List[float]:
        """Component means (candidate periods), heaviest first."""
        return [
            c.mean
            for c in self.dominant_components(min_weight, min_count=min_count)
        ]

    def responsibilities(self, values: Sequence[float]) -> np.ndarray:
        """Posterior component membership for each value, shape (n, k)."""
        x = as_float_array(values, "values")
        log_probs = _component_log_probs(x, self.components)
        log_norm = _logsumexp(log_probs, axis=1, keepdims=True)
        return np.exp(log_probs - log_norm)

    def assign(self, values: Sequence[float]) -> np.ndarray:
        """Hard assignment of each value to its most likely component."""
        return np.argmax(self.responsibilities(values), axis=1)


def _logsumexp(a: np.ndarray, axis: int, keepdims: bool = False) -> np.ndarray:
    peak = np.max(a, axis=axis, keepdims=True)
    out = peak + np.log(np.sum(np.exp(a - peak), axis=axis, keepdims=True))
    return out if keepdims else np.squeeze(out, axis=axis)


def _component_log_probs(
    x: np.ndarray, components: Sequence[GaussianComponent]
) -> np.ndarray:
    """Weighted log density of each sample under each component."""
    logs = np.empty((x.size, len(components)))
    for j, comp in enumerate(components):
        log_w = math.log(max(comp.weight, 1e-300))
        logs[:, j] = (
            log_w
            - 0.5 * (_LOG_2PI + math.log(comp.variance))
            - 0.5 * (x - comp.mean) ** 2 / comp.variance
        )
    return logs


def _init_means(x: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++-style spread initialization of component means."""
    means = [float(rng.choice(x))]
    while len(means) < k:
        dist_sq = np.min(
            np.abs(x[:, None] - np.asarray(means)[None, :]) ** 2, axis=1
        )
        total = dist_sq.sum()
        if total <= 0:
            means.append(float(rng.choice(x)))
            continue
        probs = dist_sq / total
        means.append(float(rng.choice(x, p=probs)))
    return np.asarray(means)


def fit_gmm(
    values: Sequence[float],
    n_components: int,
    *,
    max_iter: int = 200,
    tol: float = 1e-6,
    variance_floor: float = 1e-4,
    rng: Optional[np.random.Generator] = None,
) -> GaussianMixture:
    """Fit a 1-D Gaussian mixture with ``n_components`` via EM."""
    require(n_components >= 1, "n_components must be at least 1")
    require_positive(max_iter, "max_iter")
    x = as_float_array(values, "values")
    require(x.size >= n_components, "need at least one sample per component")
    if rng is None:
        rng = np.random.default_rng(0)

    means = _init_means(x, n_components, rng)
    spread = float(np.var(x))
    variances = np.full(n_components, max(spread, variance_floor))
    weights = np.full(n_components, 1.0 / n_components)

    prev_ll = -np.inf
    converged = False
    for _ in range(max_iter):
        components = tuple(
            GaussianComponent(float(m), float(v), float(w))
            for m, v, w in zip(means, variances, weights)
        )
        log_probs = _component_log_probs(x, components)
        log_norm = _logsumexp(log_probs, axis=1, keepdims=True)
        log_likelihood = float(np.sum(log_norm))
        resp = np.exp(log_probs - log_norm)

        counts = resp.sum(axis=0)
        counts = np.maximum(counts, 1e-12)
        weights = counts / x.size
        means = (resp * x[:, None]).sum(axis=0) / counts
        diffs = x[:, None] - means[None, :]
        variances = (resp * diffs**2).sum(axis=0) / counts
        variances = np.maximum(variances, variance_floor)

        if abs(log_likelihood - prev_ll) < tol * max(1.0, abs(prev_ll)):
            converged = True
            prev_ll = log_likelihood
            break
        prev_ll = log_likelihood

    components = tuple(
        GaussianComponent(float(m), float(v), float(w))
        for m, v, w in zip(means, variances, weights)
    )
    # Parameters per component: mean, variance; weights contribute k - 1.
    n_params = 3 * n_components - 1
    bic = n_params * math.log(x.size) - 2.0 * prev_ll
    return GaussianMixture(
        components=components,
        log_likelihood=prev_ll,
        bic=bic,
        n_samples=int(x.size),
        converged=converged,
    )


def select_gmm(
    values: Sequence[float],
    *,
    max_components: int = 5,
    restarts: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> GaussianMixture:
    """Fit mixtures with 1..``max_components`` components, keep best BIC.

    Each component count is fitted ``restarts`` times from different
    initializations; the overall BIC-minimal model is returned (paper
    Fig. 7: "BIC vs. # components").
    """
    require(max_components >= 1, "max_components must be at least 1")
    require(restarts >= 1, "restarts must be at least 1")
    x = as_float_array(values, "values")
    require(x.size >= 2, "need at least 2 values to fit a mixture")
    if rng is None:
        rng = np.random.default_rng(0)
    best: Optional[GaussianMixture] = None
    limit = min(max_components, x.size)
    for k in range(1, limit + 1):
        for _ in range(restarts):
            model = fit_gmm(x, k, rng=rng)
            if best is None or model.bic < best.bic:
                best = model
    assert best is not None
    return best
