"""Candidate pruning — step 2 of the detection algorithm (Section IV-C).

Three conservative filters reduce the candidate set before the expensive
ACF verification:

1. **High-frequency noise** — a candidate period smaller than the minimum
   observed inter-event interval cannot be real (Fig. 6: the TDSS trace's
   minimum interval is 196 s, so only the 387 s candidate survives).
2. **Hypothesis testing** — model observed intervals as draws from
   ``N(P, sigma^2)``; a one-sample t-test rejects candidate ``P`` when the
   p-value falls below the significance level (alpha = 5%).  The test is
   conservative: a candidate is only discarded on significant evidence.
   For multi-period traffic the intervals are first clustered (GMM) and
   the candidate is tested against the cluster it belongs to.
3. **Sampling rate** — under-sampled series are dropped: a candidate
   period must fit a minimum number of full cycles into the observation
   window, and the series must contain a minimum number of events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.gmm import GaussianMixture
from repro.utils.stats import one_sample_t_test
from repro.utils.validation import (
    as_float_array,
    require,
    require_positive,
    require_probability,
)


@dataclass(frozen=True)
class PruningDecision:
    """Verdict of the pruning stage for one candidate period."""

    period: float
    kept: bool
    reason: str
    p_value: Optional[float] = None


def prune_high_frequency(
    periods: Sequence[float], intervals: Sequence[float]
) -> List[PruningDecision]:
    """Drop candidate periods below the minimum observed interval."""
    ivals = as_float_array(intervals, "intervals")
    positive = ivals[ivals > 0]
    if positive.size == 0:
        return [
            PruningDecision(float(p), False, "no positive intervals") for p in periods
        ]
    floor = float(positive.min())
    decisions = []
    for period in periods:
        if period < floor:
            decisions.append(
                PruningDecision(
                    float(period), False, f"period below min interval {floor:.4g}"
                )
            )
        else:
            decisions.append(PruningDecision(float(period), True, "ok"))
    return decisions


def fold_intervals(intervals: np.ndarray, period: float) -> np.ndarray:
    """Fold intervals onto one period: ``i -> i / round(i / P)``.

    A missed beacon turns one interval of ``P`` into one of ``2P`` (two
    misses: ``3P``, ...).  Under H0 every interval is a multiple of the
    candidate period plus noise, so dividing by the nearest multiple
    recovers per-beacon intervals that the t-test can assess.  Intervals
    below ``P/2`` (sub-period noise) are left untouched — they count as
    evidence against H0.
    """
    multiples = np.maximum(np.round(intervals / period), 1.0)
    return intervals / multiples


def t_test_candidate(
    period: float,
    intervals: Sequence[float],
    *,
    alpha: float = 0.05,
    mixture: Optional[GaussianMixture] = None,
    fold: bool = True,
    tolerance: float = 0.0,
) -> PruningDecision:
    """One-sample t-test of ``intervals`` against candidate ``period``.

    H0: ``period`` is the true period, so intervals ~ N(period, sigma^2).
    Reject (prune) when p < alpha.  Three real-world robustness measures:

    - when a fitted ``mixture`` is given, the intervals are restricted to
      the mixture component whose mean is nearest to the candidate —
      interleaved multi-period behaviour (Conficker) survives the test;
    - with ``fold=True``, intervals are first folded onto one period
      (see :func:`fold_intervals`) so that missed beacons — which double
      or triple individual intervals — do not bias the sample mean;
    - ``tolerance`` (seconds) is the candidate's own resolution: a DFT
      candidate is only known to within its frequency-bin width, so the
      test is an equivalence test against the band ``period +-
      tolerance`` rather than the point value (otherwise exactly-regular
      quantized traces reject their own true period on a sub-second
      mismatch).
    """
    require_positive(period, "period")
    require_probability(alpha, "alpha")
    require(tolerance >= 0, "tolerance must be non-negative")
    ivals = as_float_array(intervals, "intervals")
    ivals = ivals[ivals > 0]
    if ivals.size == 0:
        return PruningDecision(period, False, "no positive intervals")
    if mixture is not None and mixture.n_components > 1:
        means = np.asarray([c.mean for c in mixture.components])
        target = int(np.argmin(np.abs(means - period)))
        assignment = mixture.assign(ivals)
        member = ivals[assignment == target]
        if member.size >= 2:
            ivals = member
    if fold:
        ivals = fold_intervals(ivals, period)
    # Equivalence band: test against the band edge nearest the sample
    # mean; a mean inside the band is consistent with H0 by definition.
    popmean = float(np.clip(ivals.mean(), period - tolerance, period + tolerance))
    p_value = one_sample_t_test(ivals, popmean)
    if p_value < alpha:
        return PruningDecision(
            period, False, f"t-test rejected (p={p_value:.4g} < {alpha})", p_value
        )
    return PruningDecision(period, True, "ok", p_value)


def prune_sampling_rate(
    periods: Sequence[float],
    *,
    n_events: int,
    duration: float,
    min_cycles: int = 3,
    min_events: int = 4,
) -> List[PruningDecision]:
    """Drop under-sampled candidates.

    A period is testable only if at least ``min_cycles`` full cycles fit
    into the observed ``duration`` and the series carries at least
    ``min_events`` events in total (Section IV-C, "Sampling Rate"; this
    matters most after rescaling to coarse granularities).
    """
    require(min_cycles >= 1, "min_cycles must be at least 1")
    require(min_events >= 2, "min_events must be at least 2")
    decisions = []
    for period in periods:
        if n_events < min_events:
            decisions.append(
                PruningDecision(float(period), False, f"fewer than {min_events} events")
            )
        elif duration <= 0 or duration / period < min_cycles:
            decisions.append(
                PruningDecision(
                    float(period), False, f"fewer than {min_cycles} cycles observed"
                )
            )
        else:
            decisions.append(PruningDecision(float(period), True, "ok"))
    return decisions


def prune_candidates(
    periods: Sequence[float],
    intervals: Sequence[float],
    *,
    duration: Optional[float] = None,
    alpha: float = 0.05,
    min_cycles: int = 3,
    min_events: int = 4,
    mixture: Optional[GaussianMixture] = None,
    fold: bool = True,
    tolerances: Optional[Sequence[float]] = None,
) -> List[PruningDecision]:
    """Run all three pruning filters; one decision per input period.

    Filters run in the paper's order (high-frequency noise, sampling
    rate, t-test); the first filter to reject a candidate records the
    reason, and the t-test (the expensive one) only runs for survivors.
    ``tolerances`` optionally gives each candidate's own resolution for
    the equivalence-band t-test (see :func:`t_test_candidate`).
    """
    if tolerances is not None:
        require(len(tolerances) == len(periods),
                "tolerances must align with periods")
    ivals = as_float_array(intervals, "intervals")
    n_events = ivals.size + 1
    if duration is None:
        duration = float(ivals.sum())
    decisions: List[PruningDecision] = []
    hf = prune_high_frequency(periods, ivals)
    sampling = prune_sampling_rate(
        periods,
        n_events=n_events,
        duration=duration,
        min_cycles=min_cycles,
        min_events=min_events,
    )
    for index, (period, hf_dec, samp_dec) in enumerate(zip(periods, hf, sampling)):
        if not hf_dec.kept:
            decisions.append(hf_dec)
        elif not samp_dec.kept:
            decisions.append(samp_dec)
        else:
            tolerance = float(tolerances[index]) if tolerances is not None else 0.0
            decisions.append(
                t_test_candidate(
                    float(period),
                    ivals,
                    alpha=alpha,
                    mixture=mixture,
                    fold=fold,
                    tolerance=tolerance,
                )
            )
    return decisions
