"""Time-series construction from raw request timestamps.

The unit of analysis in BAYWATCH is the *ActivitySummary* of one
communication pair (paper Section VII-A): the first request timestamp, a
time scale (1 second at the finest granularity), and the list of
inter-request intervals.  This module provides:

- :class:`ActivitySummary` — the canonical container,
- :func:`intervals_from_timestamps` / :func:`timestamps_from_intervals` —
  the lossless conversions,
- :func:`bin_series` — turn timestamps into the discrete signal ``x(n)``
  consumed by the periodogram,
- :func:`rescale` / :func:`merge` — the rescaling-and-merging phase
  (paper Section VII-B) that lets long windows be analyzed at coarse
  granularity without reprocessing raw logs,
- :func:`merge_rescaled` — the fused fast path of the two: the cadence
  hot loop (weekly/monthly windows re-merged every tick) pays one
  array pipeline and one output summary instead of an intermediate
  rescaled :class:`ActivitySummary` — and its interval-tuple
  conversion — per input day.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import (
    as_float_array,
    as_sorted_timestamps,
    require,
    require_positive,
)


def intervals_from_timestamps(timestamps: Sequence[float]) -> np.ndarray:
    """Return the inter-event interval list ``i_k = t_{k+1} - t_k``.

    Input timestamps are sorted first; an input of fewer than two events
    yields an empty array.
    """
    ts = as_sorted_timestamps(timestamps)
    if ts.size < 2:
        return np.empty(0, dtype=float)
    return np.diff(ts)


def timestamps_from_intervals(first: float, intervals: Sequence[float]) -> np.ndarray:
    """Reconstruct absolute timestamps from a first timestamp and intervals."""
    ivals = as_float_array(intervals, "intervals")
    if np.any(ivals < 0):
        raise ValueError("intervals must be non-negative")
    return float(first) + np.concatenate([[0.0], np.cumsum(ivals)])


def bin_series(
    timestamps: Sequence[float],
    time_scale: float,
    *,
    span: Optional[Tuple[float, float]] = None,
    binary: bool = False,
    oob: str = "drop",
) -> np.ndarray:
    """Bin event timestamps into the discrete signal ``x(n)``.

    ``x(n)`` counts the events falling into the n-th slot of width
    ``time_scale`` seconds.  With ``binary=True`` the signal is clipped to
    {0, 1} (presence/absence), which makes the periodogram insensitive to
    per-slot request multiplicity.

    Slots are half-open — slot ``n`` covers ``[start + n*time_scale,
    start + (n+1)*time_scale)`` — except that the final slot also
    admits events at exactly ``end``, so the covered window is the
    closed ``[start, end]``.

    ``span`` fixes the ``(start, end)`` window explicitly; by default
    the window runs from the first to the last event.  ``oob`` names
    the policy for events outside an explicit span: ``"drop"`` (the
    default) ignores them, ``"raise"`` rejects the call — use it when
    an out-of-span event means an upstream windowing bug rather than
    expected clutter.  Without ``span`` no event can be out of range
    and ``oob`` is moot.
    """
    require_positive(time_scale, "time_scale")
    require(oob in ("drop", "raise"), "oob must be 'drop' or 'raise'")
    ts = as_sorted_timestamps(timestamps)
    if span is not None:
        start, end = float(span[0]), float(span[1])
        require(end > start, "span end must be greater than span start")
        in_span = (ts >= start) & (ts <= end)
        if oob == "raise" and not np.all(in_span):
            n_out = int(ts.size - np.count_nonzero(in_span))
            raise ValueError(
                f"{n_out} event(s) fall outside the span [{start}, {end}]"
            )
        ts = ts[in_span]
    elif ts.size == 0:
        return np.zeros(0, dtype=float)
    else:
        start, end = float(ts[0]), float(ts[-1])
    n_bins = int(np.floor((end - start) / time_scale)) + 1
    if ts.size:
        # In-span slots cannot leave [0, n_bins - 1]: floor and the
        # correctly-rounded subtraction/division are monotone, so
        # start <= ts <= end pins floor((ts - start) / time_scale)
        # between 0 and floor((end - start) / time_scale).  (An np.clip
        # used to sit here; besides being dead for in-span events it
        # would have silently folded any out-of-span event into an edge
        # bin — a spurious spike at the window border — instead of
        # surfacing it.)
        indices = np.floor((ts - start) / time_scale).astype(int)
        # bincount produces the same integer slot counts as the old
        # ``np.add.at`` scatter at a fraction of its cost (the detector
        # bins every pair at every scale, so this is a hot path).
        signal = np.bincount(indices, minlength=n_bins).astype(float)
    else:
        signal = np.zeros(n_bins, dtype=float)
    if binary:
        signal = np.minimum(signal, 1.0)
    return signal


@dataclass(frozen=True)
class ActivitySummary:
    """Request activity of one source/destination communication pair.

    Mirrors the paper's ActivitySummary record (Section VII-A): the pair,
    the time scale ``e`` in seconds, the first request timestamp, the
    interval list, and optional side-channel information (URLs) used by
    the token filter (Section V-A).
    """

    source: str
    destination: str
    time_scale: float
    first_timestamp: float
    intervals: Tuple[float, ...]
    urls: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        require_positive(self.time_scale, "time_scale")
        ivals = as_float_array(self.intervals, "intervals")
        if np.any(ivals < 0):
            raise ValueError("intervals must be non-negative")
        # tolist() converts to Python floats in C — identical values to
        # the old per-element float() loop, an order of magnitude
        # cheaper on the ingestion hot path.
        object.__setattr__(self, "intervals", tuple(ivals.tolist()))
        object.__setattr__(self, "urls", tuple(self.urls))

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_timestamps(
        cls,
        source: str,
        destination: str,
        timestamps: Sequence[float],
        *,
        time_scale: float = 1.0,
        urls: Sequence[str] = (),
    ) -> "ActivitySummary":
        """Build a summary from raw request timestamps.

        Timestamps are quantized to the given ``time_scale`` (the paper
        extracts at 1-second granularity by default).
        """
        ts = as_sorted_timestamps(timestamps)
        require(ts.size > 0, "timestamps must not be empty")
        quantized = np.floor(ts / time_scale) * time_scale
        return cls(
            source=source,
            destination=destination,
            time_scale=time_scale,
            first_timestamp=float(quantized[0]),
            intervals=tuple(np.diff(quantized)),
            urls=tuple(urls),
        )

    # -- views -------------------------------------------------------------

    @property
    def event_count(self) -> int:
        """Number of requests summarized (intervals + 1)."""
        return len(self.intervals) + 1

    @property
    def duration(self) -> float:
        """Seconds between the first and the last request."""
        return float(sum(self.intervals))

    @property
    def pair(self) -> Tuple[str, str]:
        """The (source, destination) communication pair."""
        return (self.source, self.destination)

    def timestamps(self) -> np.ndarray:
        """Absolute request timestamps reconstructed from the intervals."""
        return timestamps_from_intervals(self.first_timestamp, self.intervals)

    def signal(self, *, binary: bool = False) -> np.ndarray:
        """The binned signal ``x(n)`` at this summary's time scale."""
        return bin_series(self.timestamps(), self.time_scale, binary=binary)

    def interval_array(self) -> np.ndarray:
        """Intervals as a numpy array (excluding zero intervals on request)."""
        return np.asarray(self.intervals, dtype=float)

    def nonzero_intervals(self) -> np.ndarray:
        """Intervals strictly greater than zero.

        Requests landing in the same time slot produce zero intervals;
        the statistical pruning filters (Section IV-C) operate on the
        positive intervals.
        """
        ivals = self.interval_array()
        return ivals[ivals > 0]


def rescale(summary: ActivitySummary, new_time_scale: float) -> ActivitySummary:
    """Re-express ``summary`` at a coarser time scale (Section VII-B).

    The paper's MAP task rescales old intervals to a new granularity
    ``e'`` so that months of data can be analyzed without reprocessing
    raw logs.  Rescaling to a finer granularity than the current one is
    rejected: the information is already lost.
    """
    require_positive(new_time_scale, "new_time_scale")
    if new_time_scale < summary.time_scale:
        raise ValueError(
            "cannot rescale to a finer granularity: "
            f"{new_time_scale} < {summary.time_scale}"
        )
    if new_time_scale == summary.time_scale:
        return summary
    ts = summary.timestamps()
    quantized = np.floor(ts / new_time_scale) * new_time_scale
    return replace(
        summary,
        time_scale=new_time_scale,
        first_timestamp=float(quantized[0]),
        intervals=tuple(np.diff(quantized)),
    )


def merge(summaries: Sequence[ActivitySummary]) -> ActivitySummary:
    """Merge several summaries of the *same* pair and time scale.

    Used by the rescale-and-merge REDUCE task to fuse per-day summaries
    into one long-window summary.  Overlapping or duplicate timestamps
    are kept (they quantize into shared slots downstream).
    """
    require(len(summaries) > 0, "summaries must not be empty")
    head = summaries[0]
    for other in summaries[1:]:
        if other.pair != head.pair:
            raise ValueError(f"cannot merge different pairs: {other.pair} != {head.pair}")
        if other.time_scale != head.time_scale:
            raise ValueError(
                "cannot merge different time scales: "
                f"{other.time_scale} != {head.time_scale}"
            )
    if len(summaries) == 1:
        return head
    all_ts: List[float] = []
    all_urls: List[str] = []
    for summary in summaries:
        all_ts.extend(summary.timestamps().tolist())
        all_urls.extend(summary.urls)
    all_ts.sort()
    return ActivitySummary(
        source=head.source,
        destination=head.destination,
        time_scale=head.time_scale,
        first_timestamp=float(all_ts[0]),
        intervals=tuple(np.diff(np.asarray(all_ts))),
        urls=tuple(all_urls),
    )


def merge_rescaled(
    summaries: Sequence[ActivitySummary],
    time_scale: float,
    *,
    out: Optional[np.ndarray] = None,
) -> ActivitySummary:
    """Fused ``merge([rescale(s, time_scale) for s in summaries])``.

    Bit-identical to the copying composition (the floating-point
    operations run in the same order on the same values) but without
    materializing a rescaled :class:`ActivitySummary` — and its
    interval-tuple conversion — per input.  This is the cadence hot
    loop: a weekly/monthly tick re-merges every pair's trailing window
    of per-day summaries, so the per-day object churn dominates.

    ``out`` optionally provides a reusable timestamp workspace (a 1-D
    float array of at least the total event count); when it is missing
    or too small a fresh buffer is allocated.  The workspace is
    clobbered.
    """
    require(len(summaries) > 0, "summaries must not be empty")
    require_positive(time_scale, "time_scale")
    head = summaries[0]
    for other in summaries:
        if other.pair != head.pair:
            raise ValueError(
                f"cannot merge different pairs: {other.pair} != {head.pair}"
            )
        if other.time_scale > time_scale:
            raise ValueError(
                "cannot rescale to a finer granularity: "
                f"{time_scale} < {other.time_scale}"
            )
    if len(summaries) == 1:
        return (
            head if head.time_scale == time_scale
            else rescale(head, time_scale)
        )
    total = sum(s.event_count for s in summaries)
    if out is not None and out.ndim == 1 and out.size >= total:
        buffer = out[:total]
    else:
        buffer = np.empty(total, dtype=float)
    position = 0
    urls: List[str] = []
    for summary in summaries:
        count = summary.event_count
        segment = buffer[position:position + count]
        # summary.timestamps(), written into the workspace: 0-prefixed
        # interval cumsum plus the first timestamp.
        segment[0] = 0.0
        if count > 1:
            ivals = np.asarray(summary.intervals, dtype=float)
            np.cumsum(ivals, out=segment[1:])
        np.add(segment, summary.first_timestamp, out=segment)
        if summary.time_scale < time_scale:
            # rescale(): quantize, then round-trip through the interval
            # representation exactly as merge() re-reads a rescaled
            # summary — diff followed by 0-prefixed cumsum — so the
            # fused result stays bit-identical to the composition.
            np.divide(segment, time_scale, out=segment)
            np.floor(segment, out=segment)
            np.multiply(segment, time_scale, out=segment)
            if count > 1:
                deltas = np.diff(segment)
                first = segment[0]
                segment[0] = 0.0
                np.cumsum(deltas, out=segment[1:])
                np.add(segment, first, out=segment)
        urls.extend(summary.urls)
        position += count
    buffer.sort(kind="stable")
    return ActivitySummary(
        source=head.source,
        destination=head.destination,
        time_scale=time_scale,
        first_timestamp=float(buffer[0]),
        intervals=tuple(np.diff(buffer).tolist()),
        urls=tuple(urls),
    )
