"""Incremental spectral engine — sliding-DFT updates for rolling windows.

BAYWATCH operates iteratively (paper Section X): the daily cadence
re-analyzes a trailing window every day even though only one day of bins
changed.  This module makes per-tick spectral work proportional to the
*new* data:

- :class:`IncrementalSpectralState` holds one pair's binned window at
  one analysis scale together with its complex rFFT coefficients and
  advances the window via the sliding-DFT recurrence.  Sliding a
  length-``N`` window forward by ``D`` bins satisfies::

      Y_k = (X_k + sum_{j<D} (b_j - x_j) * w^{-jk}) * w^{Dk},
      w = exp(2*pi*i / N)

  i.e. one length-``N`` transform of the (usually sparse) delta region
  plus a per-bin twiddle rotation — never a re-bin or re-transform of
  the unchanged ``N - D`` interior.  The correction term is evaluated
  sparsely (a small matvec over the nonzero deltas) when the delta is
  sparse enough to beat a padded FFT, which it almost always is for
  binary presence signals.

- Robustness: every ``refresh_every``-th update — and whenever a
  Parseval energy check shows accumulated float error above
  ``error_bound`` — the state *refreshes*: it recomputes the exact cold
  :func:`~repro.core.periodogram.power_spectrum`, so results are
  bit-identical to cold computation at refresh points and provably
  within the checked bound between them.  A shift larger than
  ``max_drift_fraction`` of the window, or any change of window length
  (which would also change the ``next_fast_len`` padding downstream
  kernels key on), falls back to a full recompute.

- :class:`IncrementalStateCache` is the per-pair, fingerprinted state
  store.  It serializes to a packed binary file (same idiom as the
  summary store's packed codec) so sharded or resumed runs stay warm
  across processes.

- :class:`IncrementalSpectralEngine` is the detection-facing screen: it
  maintains per-(pair, scale) states over a *day-grid* window ladder
  and answers "can this pair possibly be periodic?" from the maintained
  spectra and the shared permutation
  :class:`~repro.core.permutation.ThresholdCache`.  When the spectrum
  maximum at every scale stays below the (margin-shaded) permutation
  threshold the pair cannot produce a spectral candidate at those
  scales — DFT peak extraction and the GMM power probe both require a
  power above the threshold.  Pairs that do exceed it are *probed*
  (:meth:`~repro.core.detector.PeriodicityDetector.probe_prebinned`):
  candidate pruning and ACF verification run directly on the maintained
  window and spectrum, and only pairs with a verified candidate pay for
  full (GMM-fitting, event-anchored) detection.

Grid anchoring caveat: the cold detector bins each pair from its first
event; the incremental engine must use a fixed day-aligned grid so
windows slide.  Grid- and event-anchored spectra differ slightly, so
pairs sitting exactly at the detection boundary can be screened
differently than a cold run would decide them; pairs that pass re-run
the unchanged batched detector, so the screen never *adds* detections.
The bit-identical guarantee of the state itself is against a cold
recompute of the same grid-anchored window.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import fft as _fft

from repro.core.periodogram import power_spectrum
from repro.core.permutation import ThresholdCache
from repro.obs.registry import get_registry
from repro.utils.validation import require, require_positive

__all__ = [
    "DAY",
    "IncrementalConfig",
    "IncrementalSpectralState",
    "IncrementalStateCache",
    "IncrementalStateMismatch",
    "IncrementalSpectralEngine",
    "PairScreenVerdict",
    "screen_scales",
    "bin_span",
]

DAY = 86_400.0


@dataclass(frozen=True)
class IncrementalConfig:
    """Tunables of the incremental engine.

    ``refresh_every`` bounds drift between exact recomputes;
    ``error_bound`` is the relative Parseval-energy mismatch that forces
    an early refresh; ``max_drift_fraction`` is the largest window shift
    (as a fraction of the window) still worth sliding — beyond it a full
    recompute is cheaper and numerically safer.  ``screen_margin``
    shades the permutation threshold of the screen's power stage (a
    pair proceeds to candidate probing only when its spectrum maximum
    exceeds ``screen_margin * threshold`` at some scale); values below
    1.0 make the stage more conservative at the cost of probing more
    pairs.  ``evict_after_ticks`` drops states for pairs that stopped
    appearing, bounding memory.
    """

    refresh_every: int = 16
    error_bound: float = 1e-9
    max_drift_fraction: float = 0.5
    screen_margin: float = 1.0
    evict_after_ticks: int = 8

    def __post_init__(self) -> None:
        require(self.refresh_every >= 1, "refresh_every must be at least 1")
        require_positive(self.error_bound, "error_bound")
        require(
            0.0 < self.max_drift_fraction <= 1.0,
            "max_drift_fraction must be in (0, 1]",
        )
        require(
            0.0 < self.screen_margin <= 1.0,
            "screen_margin must be in (0, 1]",
        )
        require(self.evict_after_ticks >= 1,
                "evict_after_ticks must be at least 1")


#: Sparse-correction budget: evaluate the delta's DFT as a gather/matvec
#: over its nonzero entries only while ``nnz * n_bins`` stays below this
#: multiple of ``N * log2(N)`` — beyond it a zero-padded FFT wins.
_SPARSE_BUDGET = 0.5


class IncrementalSpectralState:
    """Sliding-DFT state of one binned window (one pair at one scale).

    Holds the window itself, its running mean, and the *uncentered*
    complex rFFT coefficients.  Subtracting the mean changes only the
    (discarded) DC bin in exact arithmetic, so the power spectrum at
    k >= 1 derived from the uncentered coefficients matches the cold
    centered transform up to float rounding; each refresh recomputes
    the exact cold :func:`power_spectrum` for bit-identical parity.

    ``start_bin`` is the window's absolute position on the global bin
    grid (``floor(t / scale)`` space), which lets a caller holding a
    stale state compute the exact shift to the current window.
    """

    __slots__ = (
        "config", "start_bin", "n", "fast_len", "updates", "refreshes",
        "_window", "_mean", "_coeffs", "_power", "_power_exact",
        "_since_refresh", "_twiddles", "_roots",
    )

    def __init__(
        self,
        window: Sequence[float],
        start_bin: int = 0,
        *,
        config: Optional[IncrementalConfig] = None,
    ) -> None:
        array = np.array(window, dtype=float)
        require(array.ndim == 1 and array.size >= 4,
                "window must be 1-D with at least 4 bins")
        self.config = config or IncrementalConfig()
        self.start_bin = int(start_bin)
        self.n = int(array.size)
        self.fast_len = int(_fft.next_fast_len(self.n))
        self.updates = 0
        self.refreshes = 0
        self._window = array
        self._twiddles: Dict[int, np.ndarray] = {}
        self._roots: Optional[np.ndarray] = None
        self._refresh()

    # -- views -------------------------------------------------------------

    @property
    def end_bin(self) -> int:
        """One past the window's last absolute grid bin."""
        return self.start_bin + self.n

    @property
    def window(self) -> np.ndarray:
        """The current binned window (read-only view)."""
        view = self._window.view()
        view.flags.writeable = False
        return view

    @property
    def mean(self) -> float:
        """Running mean of the window."""
        return self._mean

    @property
    def power_exact(self) -> bool:
        """True when :meth:`power` is the exact cold recompute."""
        return self._power_exact

    def power(self) -> np.ndarray:
        """Periodogram power matching :func:`power_spectrum` semantics.

        ``N // 2`` entries for DFT bins 1..N//2 (DC dropped).  At
        refresh points this is bit-identical to
        ``power_spectrum(self.window)``; between refreshes it is within
        the checked error bound.
        """
        return self._power

    def max_power(self) -> float:
        """The spectrum maximum (the screen's one-number summary)."""
        return float(self._power.max()) if self._power.size else 0.0

    def n_ones(self) -> int:
        """Occupied-slot count (the binary threshold-cache key)."""
        return int(np.count_nonzero(self._window))

    # -- updates -----------------------------------------------------------

    def append_bins(self, new_bins: Sequence[float]) -> str:
        """Slide the window forward, appending ``new_bins``.

        The oldest ``len(new_bins)`` bins fall out of the window; the
        retained coefficients are advanced by the sliding-DFT
        recurrence.  Returns the outcome: ``"slide"`` (recurrence
        applied), ``"refresh"`` (recurrence applied, then the periodic
        or error-bound exact recompute ran), ``"fallback"`` (shift
        exceeded ``max_drift_fraction`` — full recompute), or
        ``"noop"`` for an empty append.
        """
        new = np.asarray(new_bins, dtype=float)
        require(new.ndim == 1, "new_bins must be 1-D")
        shift = int(new.size)
        n = self.n
        require(shift <= n, "cannot slide by more than the window length")
        if shift == 0:
            return "noop"
        cfg = self.config
        delta = new - self._window[:shift]
        # Advance the stored window in place.
        self._window[: n - shift] = self._window[shift:]
        self._window[n - shift:] = new
        self.start_bin += shift
        self.updates += 1
        if shift > cfg.max_drift_fraction * n:
            self._refresh()
            return "fallback"
        self._coeffs = (
            self._coeffs + self._delta_transform(delta)
        ) * self._twiddle(shift)
        self._mean += float(delta.sum()) / n
        self._since_refresh += 1
        if (
            self._since_refresh >= cfg.refresh_every
            or self._parseval_error() > cfg.error_bound
        ):
            self._refresh()
            return "refresh"
        power = self._coeffs.real ** 2 + self._coeffs.imag ** 2
        self._power = power[1: n // 2 + 1] / n
        self._power_exact = False
        return "slide"

    def replace_window(
        self, window: Sequence[float], start_bin: int
    ) -> None:
        """Discard state and rebuild from a freshly binned window."""
        array = np.array(window, dtype=float)
        require(array.ndim == 1 and array.size >= 4,
                "window must be 1-D with at least 4 bins")
        self._window = array
        self.start_bin = int(start_bin)
        self.n = int(array.size)
        self.fast_len = int(_fft.next_fast_len(self.n))
        self._twiddles.clear()
        self._roots = None
        self._refresh()

    # -- internals ---------------------------------------------------------

    def _refresh(self) -> None:
        """Exact recompute: coefficients and the cold power spectrum."""
        self._coeffs = _fft.rfft(self._window)
        self._power = power_spectrum(self._window)
        self._power_exact = True
        self._mean = float(self._window.mean())
        self._since_refresh = 0
        self.refreshes += 1

    def _delta_transform(self, delta: np.ndarray) -> np.ndarray:
        """Length-``N`` rFFT of the delta region (sparse when it pays).

        The sparse path gathers precomputed roots of unity
        (``w^{-jk} = roots[(j * k) mod N]``) instead of exponentiating
        per element, so its cost is a fancy-index plus a short matvec.
        """
        n = self.n
        nonzero = np.flatnonzero(delta)
        if nonzero.size == 0:
            return 0.0
        n_bins = n // 2 + 1
        if nonzero.size * n_bins <= _SPARSE_BUDGET * n * np.log2(n):
            if self._roots is None:
                self._roots = np.exp((-2j * np.pi / n) * np.arange(n))
            k = np.arange(n_bins)
            basis = self._roots[np.outer(k, nonzero) % n]
            return basis @ delta[nonzero]
        return _fft.rfft(delta, n=n)

    def _twiddle(self, shift: int) -> np.ndarray:
        """``w^{k * shift}`` rotation for the retained coefficients."""
        cached = self._twiddles.get(shift)
        if cached is None:
            k = np.arange(self.n // 2 + 1)
            cached = np.exp((2j * np.pi * (shift % self.n) / self.n) * k)
            self._twiddles[shift] = cached
        return cached

    def _parseval_error(self) -> float:
        """Relative mismatch between time- and frequency-domain energy.

        Parseval's theorem ties ``sum(x^2)`` to the coefficient
        energies exactly; the maintained coefficients drift away from
        it only through accumulated float error, so the mismatch is a
        cheap O(N) bound on that error.
        """
        time_energy = float(np.dot(self._window, self._window))
        mag2 = self._coeffs.real ** 2 + self._coeffs.imag ** 2
        freq_energy = float(mag2[0] + 2.0 * mag2[1:].sum())
        if self.n % 2 == 0:
            freq_energy -= float(mag2[-1])
        freq_energy /= self.n
        return abs(time_energy - freq_energy) / max(time_energy, 1.0)

    # -- serialization -----------------------------------------------------

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """The arrays a codec must persist to restore this state."""
        return {
            "window": self._window,
            "coeffs": self._coeffs,
            "power": self._power,
        }

    @classmethod
    def restore(
        cls,
        *,
        window: np.ndarray,
        coeffs: np.ndarray,
        power: np.ndarray,
        start_bin: int,
        updates: int,
        refreshes: int,
        since_refresh: int,
        power_exact: bool,
        config: Optional[IncrementalConfig] = None,
    ) -> "IncrementalSpectralState":
        """Rebuild a state from persisted arrays without recomputing."""
        state = cls.__new__(cls)
        state.config = config or IncrementalConfig()
        state._window = np.array(window, dtype=float)
        state.start_bin = int(start_bin)
        state.n = int(state._window.size)
        state.fast_len = int(_fft.next_fast_len(state.n))
        state.updates = int(updates)
        state.refreshes = int(refreshes)
        state._coeffs = np.array(coeffs, dtype=complex)
        state._power = np.array(power, dtype=float)
        state._power_exact = bool(power_exact)
        state._mean = float(state._window.mean())
        state._since_refresh = int(since_refresh)
        state._twiddles = {}
        state._roots = None
        return state


class IncrementalStateMismatch(RuntimeError):
    """A persisted state cache does not match the requesting run."""


#: Packed state-cache layout: magic, codec version, fingerprint length,
#: state count.  Per state: key length, window length, start_bin,
#: updates, refreshes, since_refresh, power_exact flag — then the key
#: bytes and the three arrays (window f8, coeffs c16, power f8).
_CACHE_HEADER = struct.Struct("<4sHIQ")
_STATE_HEADER = struct.Struct("<IQqqqqB")
_CACHE_MAGIC = b"RINC"
CACHE_VERSION = 1


class IncrementalStateCache:
    """Fingerprinted, serializable store of per-(pair, scale) states.

    The fingerprint binds the cache to the detector configuration and
    window geometry that produced it; loading under a different
    fingerprint raises :class:`IncrementalStateMismatch` (warm state
    from an incompatible run must never be trusted).  Serialization is
    a packed binary frame — floats round-trip bit-exactly, mirroring
    the summary store's packed codec.
    """

    def __init__(
        self,
        fingerprint: str = "",
        *,
        config: Optional[IncrementalConfig] = None,
    ) -> None:
        self.fingerprint = fingerprint
        self.config = config or IncrementalConfig()
        self._states: Dict[str, IncrementalSpectralState] = {}
        self._last_seen: Dict[str, int] = {}
        self.tick = 0

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, key: str) -> bool:
        return key in self._states

    def keys(self) -> List[str]:
        return sorted(self._states)

    def get(self, key: str) -> Optional[IncrementalSpectralState]:
        state = self._states.get(key)
        if state is not None:
            self._last_seen[key] = self.tick
        return state

    def put(self, key: str, state: IncrementalSpectralState) -> None:
        self._states[key] = state
        self._last_seen[key] = self.tick

    def begin_tick(self) -> None:
        """Advance the logical clock used for staleness eviction."""
        self.tick += 1

    def evict_stale(self) -> int:
        """Drop states unseen for ``evict_after_ticks``; returns count."""
        horizon = self.tick - self.config.evict_after_ticks
        stale = [
            key for key, seen in self._last_seen.items() if seen < horizon
        ]
        for key in stale:
            del self._states[key]
            del self._last_seen[key]
        return len(stale)

    # -- persistence -------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Write the packed cache atomically; returns the path."""
        path = Path(path)
        fingerprint = self.fingerprint.encode("utf-8")
        sections: List[bytes] = [
            _CACHE_HEADER.pack(
                _CACHE_MAGIC, CACHE_VERSION, len(fingerprint),
                len(self._states),
            ),
            fingerprint,
        ]
        for key in sorted(self._states):
            state = self._states[key]
            key_bytes = key.encode("utf-8")
            arrays = state.state_arrays()
            sections.append(
                _STATE_HEADER.pack(
                    len(key_bytes),
                    state.n,
                    state.start_bin,
                    state.updates,
                    state.refreshes,
                    state._since_refresh,
                    1 if state._power_exact else 0,
                )
            )
            sections.append(key_bytes)
            sections.append(arrays["window"].astype("<f8").tobytes())
            sections.append(arrays["coeffs"].astype("<c16").tobytes())
            sections.append(arrays["power"].astype("<f8").tobytes())
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(b"".join(sections))
        tmp.replace(path)
        return path

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        *,
        fingerprint: Optional[str] = None,
        config: Optional[IncrementalConfig] = None,
    ) -> "IncrementalStateCache":
        """Read a packed cache; verify ``fingerprint`` when given."""
        payload = Path(path).read_bytes()
        try:
            magic, version, fp_len, n_states = _CACHE_HEADER.unpack_from(
                payload, 0
            )
        except struct.error as exc:
            raise IncrementalStateMismatch(
                f"{path}: truncated or corrupt state cache ({exc})"
            ) from exc
        if magic != _CACHE_MAGIC:
            raise IncrementalStateMismatch(
                f"{path}: not an incremental state cache"
            )
        if version != CACHE_VERSION:
            raise IncrementalStateMismatch(
                f"{path}: cache version {version}, expected {CACHE_VERSION}"
            )
        cursor = _CACHE_HEADER.size
        stored_fp = payload[cursor:cursor + fp_len].decode("utf-8")
        cursor += fp_len
        if fingerprint is not None and stored_fp != fingerprint:
            raise IncrementalStateMismatch(
                f"{path}: cache fingerprint {stored_fp!r} does not match "
                f"the requesting run's {fingerprint!r}"
            )
        cache = cls(stored_fp, config=config)
        for _ in range(n_states):
            try:
                (
                    key_len, n, start_bin, updates, refreshes,
                    since_refresh, power_exact,
                ) = _STATE_HEADER.unpack_from(payload, cursor)
            except struct.error as exc:
                raise IncrementalStateMismatch(
                    f"{path}: truncated state cache ({exc})"
                ) from exc
            cursor += _STATE_HEADER.size
            key = payload[cursor:cursor + key_len].decode("utf-8")
            cursor += key_len

            def take(dtype: str, count: int) -> np.ndarray:
                nonlocal cursor
                array = np.frombuffer(
                    payload, dtype=dtype, count=count, offset=cursor
                )
                cursor += array.nbytes
                return array

            window = take("<f8", n)
            coeffs = take("<c16", n // 2 + 1)
            power = take("<f8", n // 2)
            cache.put(
                key,
                IncrementalSpectralState.restore(
                    window=window,
                    coeffs=coeffs,
                    power=power,
                    start_bin=start_bin,
                    updates=updates,
                    refreshes=refreshes,
                    since_refresh=since_refresh,
                    power_exact=bool(power_exact),
                    config=cache.config,
                ),
            )
        return cache


# -- day-grid geometry --------------------------------------------------------


def _snap_bins_per_day(scale: float) -> int:
    """Bins per day for ``scale``, snapped so a day is a whole number.

    The sliding window advances by whole days, so every screen scale
    must divide the day exactly; ladder scales that do not (e.g.
    38 400 s → 2.25 bins/day) are snapped to the nearest day divisor
    (43 200 s → 2), preserving the ladder's coverage of slow periods.
    """
    raw = DAY / scale
    if abs(raw - round(raw)) < 1e-9:
        return max(1, int(round(raw)))
    return max(1, int(round(raw)))


def screen_scales(
    *,
    time_scale: float,
    window_days: int,
    scale_factor: float = 4.0,
    max_scales: int = 6,
    min_slots: int = 32,
    max_signal_length: int = 1 << 21,
) -> List[Tuple[float, int]]:
    """The day-divisor analysis ladder for a ``window_days`` window.

    Mirrors the detector's geometric ladder
    (:meth:`PeriodicityDetector._choose_scales`) but snaps each rung to
    an exact divisor of the day so windows slide by an integral number
    of bins.  Returns ``(scale_seconds, bins_per_day)`` rungs, finest
    first; rungs whose signal would be too long or too short are
    dropped, duplicates (after snapping) collapse.
    """
    require_positive(time_scale, "time_scale")
    require(window_days >= 1, "window_days must be at least 1")
    rungs: List[Tuple[float, int]] = []
    seen = set()
    scale = time_scale
    for _ in range(max_scales):
        bins_per_day = _snap_bins_per_day(scale)
        n_slots = window_days * bins_per_day
        if n_slots < max(min_slots, 8):
            break
        if n_slots <= max_signal_length and bins_per_day not in seen:
            seen.add(bins_per_day)
            rungs.append((DAY / bins_per_day, bins_per_day))
        scale *= scale_factor
    return rungs


def bin_span(
    timestamps: np.ndarray,
    scale: float,
    from_bin: int,
    to_bin: int,
    *,
    binary: bool = True,
) -> np.ndarray:
    """Bin events into absolute grid slots ``[from_bin, to_bin)``.

    Slot indices are global — ``floor(t / scale)`` — so the bins of an
    overlap region are identical whichever window they were computed
    for (the property the sliding update relies on).  Events outside
    the span are dropped.
    """
    require(to_bin > from_bin, "to_bin must exceed from_bin")
    n = to_bin - from_bin
    ts = np.asarray(timestamps, dtype=float)
    if ts.size == 0:
        return np.zeros(n, dtype=float)
    indices = np.floor(ts / scale).astype(np.int64) - from_bin
    indices = indices[(indices >= 0) & (indices < n)]
    signal = np.bincount(indices, minlength=n).astype(float)
    if binary:
        np.minimum(signal, 1.0, out=signal)
    return signal


# -- the pair screen ----------------------------------------------------------


@dataclass(frozen=True)
class PairScreenVerdict:
    """One pair's power-stage screen outcome for the current tick.

    ``passed`` pairs have spectral power above the (margin-shaded)
    permutation threshold at one or more maintained scales and proceed
    to candidate probing / full detection; screened-out pairs are below
    it at every scale.  ``margin`` is the best ``max_power - threshold``
    over the scales (the provenance near-miss signal), ``threshold``
    the finest scale's threshold, ``rung_stats`` one ``(scale,
    max_power, threshold)`` triple per maintained rung (finest first),
    and ``outcome`` the most expensive state transition the update took
    (``slide`` < ``refresh`` < ``fallback`` < ``rebuild``).
    """

    passed: bool
    margin: float
    threshold: float
    scales: Tuple[float, ...]
    outcome: str
    rung_stats: Tuple[Tuple[float, float, float], ...] = ()


_OUTCOME_RANK = {"noop": 0, "slide": 1, "refresh": 2, "fallback": 3,
                 "rebuild": 4}


class IncrementalSpectralEngine:
    """Day-grid spectral screen with per-pair sliding-DFT states.

    One engine serves one detection cadence.  Per tick the caller
    announces the window (``begin_tick``), then feeds each pair's
    merged timestamps to :meth:`observe`; the engine slides (or
    rebuilds) the pair's per-scale states and returns the screen
    verdict.  Thresholds come from the shared permutation
    :class:`ThresholdCache`, keyed on ``(n_slots, n_ones)`` exactly as
    the cold detector's binary path.
    """

    def __init__(
        self,
        threshold_cache: ThresholdCache,
        *,
        time_scale: float = 1.0,
        scale_factor: float = 4.0,
        max_scales: int = 6,
        min_slots: int = 32,
        max_signal_length: int = 1 << 21,
        config: Optional[IncrementalConfig] = None,
        fingerprint: str = "",
        cache: Optional[IncrementalStateCache] = None,
    ) -> None:
        self.threshold_cache = threshold_cache
        self.time_scale = float(time_scale)
        self.scale_factor = float(scale_factor)
        self.max_scales = int(max_scales)
        self.min_slots = int(min_slots)
        self.max_signal_length = int(max_signal_length)
        self.config = config or IncrementalConfig()
        self.fingerprint = fingerprint
        if cache is not None and fingerprint and cache.fingerprint:
            if cache.fingerprint != fingerprint:
                raise IncrementalStateMismatch(
                    f"state cache fingerprint {cache.fingerprint!r} does "
                    f"not match the engine's {fingerprint!r}"
                )
        self.cache = cache if cache is not None else IncrementalStateCache(
            fingerprint, config=self.config
        )
        self._rungs: List[Tuple[float, int]] = []
        self._window_days = 0
        self._start_day = 0
        self._end_day = 0
        # Cumulative transition counts (the CI hit-rate artifact).
        self.slides = 0
        self.refreshes = 0
        self.fallbacks = 0
        self.rebuilds = 0
        self.screened_out = 0
        self.screened_in = 0

    # -- tick lifecycle ----------------------------------------------------

    def begin_tick(self, start_day: int, end_day: int) -> None:
        """Declare this tick's day-grid window ``[start_day, end_day)``."""
        require(end_day > start_day, "end_day must exceed start_day")
        self._start_day = int(start_day)
        self._end_day = int(end_day)
        self._window_days = self._end_day - self._start_day
        self._rungs = screen_scales(
            time_scale=self.time_scale,
            window_days=self._window_days,
            scale_factor=self.scale_factor,
            max_scales=self.max_scales,
            min_slots=self.min_slots,
            max_signal_length=self.max_signal_length,
        )
        self.cache.begin_tick()

    def end_tick(self) -> int:
        """Finish the tick; evicts states for pairs that vanished."""
        return self.cache.evict_stale()

    @property
    def rungs(self) -> List[Tuple[float, int]]:
        """This tick's ``(scale, bins_per_day)`` ladder."""
        return list(self._rungs)

    def hit_rate(self) -> float:
        """Fraction of state updates served by the sliding fast path."""
        hits = self.slides + self.refreshes
        total = hits + self.fallbacks + self.rebuilds
        return hits / total if total else 0.0

    # -- per-pair update + screen ------------------------------------------

    @staticmethod
    def state_key(source: str, destination: str, bins_per_day: int) -> str:
        return f"{source}\x1f{destination}\x1f{bins_per_day}"

    def observe(
        self, source: str, destination: str, timestamps: np.ndarray
    ) -> PairScreenVerdict:
        """Update the pair's states for this tick and screen it.

        ``timestamps`` are the pair's events inside the announced
        window (a superset is fine — out-of-window events are dropped
        by the grid binning).  Requires :meth:`begin_tick` first.
        """
        require(self._rungs != [] or self._window_days > 0,
                "begin_tick must be called before observe")
        registry = get_registry()
        if not self._rungs:
            # Window too short for any rung: never screen out.
            self.screened_in += 1
            return PairScreenVerdict(
                passed=True, margin=float("nan"), threshold=float("nan"),
                scales=(), outcome="noop",
            )
        ts = np.asarray(timestamps, dtype=float)
        best_margin = float("-inf")
        finest_threshold = float("nan")
        passed = False
        worst = "noop"
        rung_stats: List[Tuple[float, float, float]] = []
        for rung_index, (scale, bins_per_day) in enumerate(self._rungs):
            state, outcome = self._advance(
                source, destination, ts, scale, bins_per_day
            )
            if _OUTCOME_RANK[outcome] > _OUTCOME_RANK[worst]:
                worst = outcome
            threshold = self.threshold_cache.threshold(
                state.n, state.n_ones()
            )
            if rung_index == 0:
                finest_threshold = threshold
            max_power = state.max_power()
            rung_stats.append((scale, max_power, threshold))
            margin = max_power - threshold
            if margin > best_margin:
                best_margin = margin
            if max_power > self.config.screen_margin * threshold:
                passed = True
        registry.counter("detector.incremental.updates").inc()
        if passed:
            self.screened_in += 1
        else:
            self.screened_out += 1
            registry.counter("detector.incremental.screened_out").inc()
        return PairScreenVerdict(
            passed=passed,
            margin=(
                best_margin if best_margin > float("-inf") else float("nan")
            ),
            threshold=finest_threshold,
            scales=tuple(scale for scale, _ in self._rungs),
            outcome=worst,
            rung_stats=tuple(rung_stats),
        )

    def rung_states(
        self, source: str, destination: str
    ) -> List[Tuple[float, IncrementalSpectralState]]:
        """The pair's per-rung states for this tick, finest first.

        Used by the candidate-probe stage after :meth:`observe`: the
        maintained window and power spectrum of each rung are exactly
        the ``(signal, spectrum)`` inputs of
        :meth:`~repro.core.detector.PeriodicityDetector.probe_prebinned`.
        Rungs whose state is missing (never observed) are skipped.
        """
        out: List[Tuple[float, IncrementalSpectralState]] = []
        for scale, bins_per_day in self._rungs:
            state = self.cache.get(
                self.state_key(source, destination, bins_per_day)
            )
            if state is not None:
                out.append((scale, state))
        return out

    def _advance(
        self,
        source: str,
        destination: str,
        ts: np.ndarray,
        scale: float,
        bins_per_day: int,
    ) -> Tuple[IncrementalSpectralState, str]:
        """Slide (or rebuild) one (pair, scale) state to this tick."""
        registry = get_registry()
        start_bin = self._start_day * bins_per_day
        end_bin = self._end_day * bins_per_day
        n = end_bin - start_bin
        key = self.state_key(source, destination, bins_per_day)
        state = self.cache.get(key)
        if state is not None and state.n == n:
            shift = start_bin - state.start_bin
            if shift == 0:
                # Same window (e.g. a retried tick): state is current.
                return state, "noop"
            if 0 < shift <= n:
                new_bins = bin_span(
                    ts, scale, state.end_bin, end_bin, binary=True
                )
                outcome = state.append_bins(new_bins)
                if outcome == "refresh":
                    self.refreshes += 1
                    registry.counter("detector.incremental.refreshes").inc()
                    self.slides += 1
                elif outcome == "fallback":
                    self.fallbacks += 1
                    registry.counter("detector.incremental.fallbacks").inc()
                else:
                    self.slides += 1
                return state, outcome
        # New pair, window-geometry change, or backwards shift: rebuild.
        window = bin_span(ts, scale, start_bin, end_bin, binary=True)
        if state is None:
            state = IncrementalSpectralState(
                window, start_bin, config=self.config
            )
            self.cache.put(key, state)
        else:
            state.replace_window(window, start_bin)
        self.rebuilds += 1
        registry.counter("detector.incremental.fallbacks").inc()
        return state, "rebuild"
