"""Core periodicity detection — the paper's primary contribution.

The subpackage implements Section IV of the paper: periodogram analysis
with a permutation-derived power threshold, conservative pruning of the
candidate set, Gaussian-mixture interval analysis for multi-period
traffic, and autocorrelation verification/refinement.
"""

from repro.core.timeseries import (
    ActivitySummary,
    bin_series,
    intervals_from_timestamps,
    timestamps_from_intervals,
    rescale,
    merge,
)
from repro.core.periodogram import SpectralPeak, candidate_peaks, power_spectrum, spectrum_frequencies
from repro.core.permutation import (
    PermutationResult,
    ThresholdCache,
    ThresholdCacheMismatch,
    permutation_threshold,
)
from repro.core.autocorrelation import (
    HillValidation,
    autocorrelation,
    search_window,
    validate_candidate,
)
from repro.core.gmm import GaussianComponent, GaussianMixture, fit_gmm, select_gmm
from repro.core.pruning import (
    PruningDecision,
    prune_candidates,
    prune_high_frequency,
    prune_sampling_rate,
    t_test_candidate,
)
from repro.core.detector import (
    CandidatePeriod,
    DetectionResult,
    DetectorConfig,
    PeriodicityDetector,
)
from repro.core.batch import (
    BatchedDetector,
    batch_autocorrelation,
    batch_candidate_peaks,
    batch_power_spectra,
)

__all__ = [
    "ActivitySummary",
    "bin_series",
    "intervals_from_timestamps",
    "timestamps_from_intervals",
    "rescale",
    "merge",
    "SpectralPeak",
    "candidate_peaks",
    "power_spectrum",
    "spectrum_frequencies",
    "PermutationResult",
    "ThresholdCache",
    "ThresholdCacheMismatch",
    "permutation_threshold",
    "HillValidation",
    "autocorrelation",
    "search_window",
    "validate_candidate",
    "GaussianComponent",
    "GaussianMixture",
    "fit_gmm",
    "select_gmm",
    "PruningDecision",
    "prune_candidates",
    "prune_high_frequency",
    "prune_sampling_rate",
    "t_test_candidate",
    "CandidatePeriod",
    "DetectionResult",
    "DetectorConfig",
    "PeriodicityDetector",
    "BatchedDetector",
    "batch_autocorrelation",
    "batch_candidate_peaks",
    "batch_power_spectra",
]
