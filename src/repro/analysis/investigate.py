"""Investigation & verification — phase (d) of the methodology.

The paper's bootstrap strategy (Section VI): manually investigate a
small sample of triaged cases (one month's worth), use the diagnoses as
labels to train a random forest over the Table II features, classify
the remaining months automatically, and review the residual cases in
*uncertainty order* so the few false negatives surface quickly
(Fig. 11).

:class:`Investigator` implements the workflow against any labeler — the
deterministic :class:`~repro.analysis.intel.IntelOracle` in our
evaluation, a human analyst in production.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.filtering.case import BeaconingCase
from repro.ml.features import extract_case_features
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import (
    ConfusionMatrix,
    confusion_matrix,
    false_negatives_vs_reviewed,
)
from repro.utils.validation import require

Labeler = Callable[[str], int]


def case_feature_vector(case: BeaconingCase) -> np.ndarray:
    """The Table II feature vector of one beaconing case."""
    dominant = case.detection.dominant
    return extract_case_features(
        case.summary.intervals,
        case.periods,
        power=dominant.power if dominant else 0.0,
        acf_score=dominant.acf_score if dominant else 0.0,
        similar_sources=case.similar_sources,
        lm_score=case.lm_score,
    ).vector()


@dataclass
class InvestigationReport:
    """Output of one bootstrap classification round."""

    confusion: ConfusionMatrix
    predictions: np.ndarray
    labels: np.ndarray
    uncertainties: np.ndarray
    review_order: np.ndarray
    fn_curve: np.ndarray
    n_train: int
    n_eval: int

    @property
    def cases_to_clear_fn(self) -> int:
        """Reviews needed (in uncertainty order) to clear all FNs."""
        remaining = self.fn_curve
        below = np.flatnonzero(remaining == 0)
        return int(below[0]) if below.size else int(remaining.size)

    def reviews_until_fn_below(self, target: int) -> int:
        """Reviews needed until at most ``target`` FNs remain."""
        below = np.flatnonzero(self.fn_curve <= target)
        return int(below[0]) if below.size else int(self.fn_curve.size)


class Investigator:
    """Bootstrap classification of triaged beaconing cases."""

    def __init__(
        self,
        labeler: Labeler,
        *,
        n_trees: int = 200,
        seed: int = 0,
    ) -> None:
        require(n_trees >= 1, "n_trees must be at least 1")
        self.labeler = labeler
        self.n_trees = n_trees
        self.seed = seed
        self.classifier: Optional[RandomForestClassifier] = None

    # -- workflow ------------------------------------------------------------

    def train(self, cases: Sequence[BeaconingCase]) -> RandomForestClassifier:
        """Train the forest on manually investigated (labelled) cases."""
        require(len(cases) >= 2, "need at least 2 training cases")
        X = np.vstack([case_feature_vector(case) for case in cases])
        y = np.asarray([self.labeler(case.destination) for case in cases])
        require(len(set(y.tolist())) >= 2,
                "training cases must include both classes")
        self.classifier = RandomForestClassifier(
            n_estimators=self.n_trees, seed=self.seed
        ).fit(X, y)
        return self.classifier

    def classify(
        self, cases: Sequence[BeaconingCase]
    ) -> InvestigationReport:
        """Classify unlabelled cases and evaluate against the labeler.

        The labeler here plays the paper's VirusTotal role: the "ground
        truth" the confusion matrix is computed against.
        """
        require(self.classifier is not None, "train() must run first")
        require(len(cases) >= 1, "no cases to classify")
        X = np.vstack([case_feature_vector(case) for case in cases])
        predictions = self.classifier.predict(X)
        uncertainties = self.classifier.uncertainty(X)
        labels = np.asarray([self.labeler(case.destination) for case in cases])
        review_order = np.argsort(-uncertainties, kind="stable")
        fn_curve = false_negatives_vs_reviewed(labels, predictions, review_order)
        return InvestigationReport(
            confusion=confusion_matrix(labels, predictions),
            predictions=predictions,
            labels=labels,
            uncertainties=uncertainties,
            review_order=review_order,
            fn_curve=fn_curve,
            n_train=0,
            n_eval=len(cases),
        )

    def bootstrap(
        self,
        train_cases: Sequence[BeaconingCase],
        eval_cases: Sequence[BeaconingCase],
    ) -> InvestigationReport:
        """Full bootstrap round: train on the small set, classify the rest."""
        self.train(train_cases)
        report = self.classify(eval_cases)
        report.n_train = len(train_cases)
        return report

    def cross_validate(
        self, cases: Sequence[BeaconingCase], *, k: int = 5
    ):
        """K-fold error bars for the classifier on labelled cases.

        Before trusting a bootstrap-trained classifier on months of
        traffic, measure its variance on the labelled sample:
        returns a :class:`repro.ml.crossval.CrossValidationResult` whose
        ``summary()`` reads like "accuracy 0.95+-0.03 ... FPR 0+-0".
        """
        from repro.ml.crossval import cross_validate as _cross_validate

        require(len(cases) >= k, "need at least k labelled cases")
        X = np.vstack([case_feature_vector(case) for case in cases])
        y = np.asarray([self.labeler(case.destination) for case in cases])

        def fit(X_train, y_train):
            return RandomForestClassifier(
                n_estimators=self.n_trees, seed=self.seed
            ).fit(X_train, y_train)

        return _cross_validate(fit, X, y, k=k, seed=self.seed)
