"""Systematic synthetic evaluation of the detector (Section VIII-A).

The paper evaluates the core algorithm by injecting controlled noise
into a clean periodic baseline and measuring detection quality as the
noise grows.  The elided figure pages leave the exact metric
definitions open; we use (documented in DESIGN.md):

- **delta_d** — the mean relative error of the estimated period over
  the trials where a period was detected,
- **gamma_d** — the miss rate: the fraction of trials where no
  candidate matched the true period within tolerance,
- **false-alarm rate** — the fraction of non-periodic (Poisson) control
  trials reported periodic.

:func:`noise_sweep` reproduces the Fig. 10 experiment shape: sweep the
Gaussian jitter sigma under a fixed missing/adding-event model and
report the two metrics per noise level; :func:`tolerated_sigma` extracts
the threshold where accuracy degrades (the paper's "threshold dropped
from 30 to around 11 and 7").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.detector import DetectorConfig, PeriodicityDetector
from repro.core.permutation import ThresholdCache
from repro.synthetic.beacon import BeaconSpec, poisson_trace
from repro.synthetic.noise import NoiseModel
from repro.utils.validation import require, require_positive


@dataclass(frozen=True)
class TrialOutcome:
    """One synthetic trial."""

    detected: bool
    matched: bool
    period_error: float  # relative; inf when not matched


@dataclass(frozen=True)
class EvalResult:
    """Aggregated metrics over a batch of trials at one noise level."""

    n_trials: int
    detection_rate: float
    delta_d: float
    gamma_d: float

    @property
    def accurate(self) -> bool:
        """The paper's working criterion: delta_d below 5%."""
        return self.delta_d < 0.05


def _matches(result, true_period: float, tolerance: float) -> TrialOutcome:
    if not result.periodic:
        return TrialOutcome(detected=False, matched=False, period_error=float("inf"))
    errors = [
        abs(period - true_period) / true_period for period in result.periods()
    ]
    best = min(errors)
    return TrialOutcome(
        detected=True, matched=best <= tolerance, period_error=best
    )


def evaluate_noise_level(
    *,
    period: float,
    duration: float,
    noise: NoiseModel,
    trials: int = 10,
    tolerance: float = 0.1,
    detector: Optional[PeriodicityDetector] = None,
    seed: int = 0,
) -> EvalResult:
    """Run ``trials`` beacon traces under ``noise`` and aggregate."""
    require_positive(period, "period")
    require(trials >= 1, "trials must be at least 1")
    if detector is None:
        detector = PeriodicityDetector(
            DetectorConfig(seed=0), threshold_cache=ThresholdCache()
        )
    outcomes: List[TrialOutcome] = []
    for trial in range(trials):
        rng = np.random.default_rng(seed + trial)
        spec = BeaconSpec(period=period, duration=duration, noise=noise)
        trace = spec.generate(rng)
        if trace.size < 4:
            outcomes.append(TrialOutcome(False, False, float("inf")))
            continue
        outcomes.append(_matches(detector.detect(trace), period, tolerance))
    matched_errors = [o.period_error for o in outcomes if o.matched]
    delta_d = float(np.mean(matched_errors)) if matched_errors else 1.0
    gamma_d = 1.0 - len(matched_errors) / trials
    return EvalResult(
        n_trials=trials,
        detection_rate=sum(o.detected for o in outcomes) / trials,
        delta_d=delta_d,
        gamma_d=gamma_d,
    )


def false_alarm_rate(
    *,
    rate: float,
    duration: float,
    trials: int = 10,
    detector: Optional[PeriodicityDetector] = None,
    seed: int = 0,
) -> float:
    """Fraction of Poisson control traces reported periodic."""
    require(trials >= 1, "trials must be at least 1")
    if detector is None:
        detector = PeriodicityDetector(
            DetectorConfig(seed=0), threshold_cache=ThresholdCache()
        )
    alarms = 0
    for trial in range(trials):
        rng = np.random.default_rng(seed + trial)
        trace = poisson_trace(rate, duration, rng)
        if trace.size >= 4 and detector.detect(trace).periodic:
            alarms += 1
    return alarms / trials


def noise_sweep(
    sigmas: Sequence[float],
    *,
    period: float,
    duration: float,
    drop_probability: float = 0.0,
    add_rate: float = 0.0,
    trials: int = 10,
    tolerance: float = 0.1,
    seed: int = 0,
) -> List[EvalResult]:
    """delta_d / gamma_d for each Gaussian sigma (Fig. 10 series)."""
    detector = PeriodicityDetector(
        DetectorConfig(seed=0), threshold_cache=ThresholdCache()
    )
    results = []
    for sigma in sigmas:
        noise = NoiseModel(
            jitter_sigma=float(sigma),
            drop_probability=drop_probability,
            add_rate=add_rate,
        )
        results.append(
            evaluate_noise_level(
                period=period,
                duration=duration,
                noise=noise,
                trials=trials,
                tolerance=tolerance,
                detector=detector,
                seed=seed,
            )
        )
    return results


def tolerated_sigma(
    sigmas: Sequence[float],
    results: Sequence[EvalResult],
    *,
    delta_limit: float = 0.05,
    gamma_limit: float = 0.2,
) -> float:
    """The largest sigma whose metrics are still within limits.

    Returns 0 when even the first level fails — and the largest swept
    sigma when nothing fails (the true threshold lies beyond the sweep).
    """
    require(len(sigmas) == len(results), "sigmas and results must align")
    best = 0.0
    for sigma, result in zip(sigmas, results):
        if result.delta_d <= delta_limit and result.gamma_d <= gamma_limit:
            best = float(sigma)
        else:
            break
    return best
