"""Campaign correlation across reported cases.

The paper repeatedly observes that one C&C infrastructure shows up as
*many* cases: 19-20 distinct clients beaconing to a single destination
(Table V), sibling destinations sharing a cadence (Table VI's paired
Zbot gates at 180 s and 63 s), 93 distinct clients behind the confirmed
top 50.  Analysts think in *campaigns*, not cases.

:func:`correlate_campaigns` groups confirmed cases into campaigns by
two signals:

- shared destination entity (registered domain), and
- matching beaconing cadence (dominant periods within tolerance) —
  distinct DGA destinations run by the same malware family beacon on
  the same schedule.

The output is one :class:`Campaign` per group: destinations, infected
hosts, the common period, and a severity score for queueing takedowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.filtering.case import BeaconingCase
from repro.lm.domains import registered_domain
from repro.utils.validation import require, require_positive


@dataclass(frozen=True)
class Campaign:
    """One correlated group of beaconing cases."""

    destinations: Tuple[str, ...]
    hosts: Tuple[str, ...]
    period: float
    cases: Tuple[BeaconingCase, ...]
    correlated_by: str  # "entity" or "cadence"

    @property
    def host_count(self) -> int:
        """Distinct infected hosts in the campaign."""
        return len(self.hosts)

    @property
    def severity(self) -> float:
        """Queueing score: spread x evidence strength.

        More infected hosts and stronger ranking evidence first — the
        paper prioritizes multi-client destinations for takedown.
        """
        strongest = max(case.rank_score for case in self.cases)
        return self.host_count * (1.0 + strongest)

    def describe(self) -> str:
        """One-line analyst summary."""
        return (
            f"campaign[{self.correlated_by}] period~{self.period:.0f}s: "
            f"{len(self.destinations)} destination(s), "
            f"{self.host_count} host(s), severity {self.severity:.1f}"
        )


def _merge_groups(groups: List[List[BeaconingCase]]) -> List[List[BeaconingCase]]:
    """Union groups that share any case (connected components)."""
    parent = list(range(len(groups)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    index_of: Dict[int, int] = {}
    for gi, group in enumerate(groups):
        for case in group:
            key = id(case)
            if key in index_of:
                ra, rb = find(index_of[key]), find(gi)
                parent[ra] = rb
            else:
                index_of[key] = gi
    merged: Dict[int, List[BeaconingCase]] = {}
    seen: Dict[int, set] = {}
    for gi, group in enumerate(groups):
        root = find(gi)
        bucket = merged.setdefault(root, [])
        ids = seen.setdefault(root, set())
        for case in group:
            if id(case) not in ids:
                ids.add(id(case))
                bucket.append(case)
    return list(merged.values())


def correlate_campaigns(
    cases: Sequence[BeaconingCase],
    *,
    period_tolerance: float = 0.1,
    min_cadence_group: int = 2,
) -> List[Campaign]:
    """Group cases into campaigns; strongest severity first.

    Entity groups (same registered domain) always form; cadence groups
    (same dominant period within relative ``period_tolerance``) only
    form with at least ``min_cadence_group`` distinct destinations —
    a lone case is its own campaign, not a cadence cluster.
    """
    require_positive(period_tolerance, "period_tolerance")
    require(min_cadence_group >= 2, "min_cadence_group must be at least 2")
    cases = [case for case in cases if case.dominant_period]
    if not cases:
        return []

    # Seed groups: one per destination entity.
    by_entity: Dict[str, List[BeaconingCase]] = {}
    for case in cases:
        by_entity.setdefault(
            registered_domain(case.destination), []
        ).append(case)
    groups: List[List[BeaconingCase]] = list(by_entity.values())

    # Cadence groups across entities.
    ordered = sorted(cases, key=lambda c: c.dominant_period)
    cluster: List[BeaconingCase] = []
    for case in ordered:
        if (
            cluster
            and case.dominant_period
            <= cluster[-1].dominant_period * (1 + period_tolerance)
        ):
            cluster.append(case)
            continue
        if len({c.destination for c in cluster}) >= min_cadence_group:
            groups.append(list(cluster))
        cluster = [case]
    if len({c.destination for c in cluster}) >= min_cadence_group:
        groups.append(list(cluster))

    campaigns = []
    for group in _merge_groups(groups):
        destinations = tuple(sorted({case.destination for case in group}))
        hosts = tuple(sorted({case.source for case in group}))
        periods = [case.dominant_period for case in group]
        correlated_by = "cadence" if len(
            {registered_domain(d) for d in destinations}
        ) > 1 else "entity"
        campaigns.append(
            Campaign(
                destinations=destinations,
                hosts=hosts,
                period=float(sorted(periods)[len(periods) // 2]),
                cases=tuple(group),
                correlated_by=correlated_by,
            )
        )
    campaigns.sort(key=lambda c: c.severity, reverse=True)
    return campaigns
