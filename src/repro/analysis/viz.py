"""Terminal visualizations of detection evidence.

Analysts triage in terminals; a case report that *shows* the signal —
the binned request activity and the autocorrelation hill — is read
faster than numbers alone.  These helpers render one-line intensity
strips and small multi-row braille-free charts using plain ASCII, so
they travel through ticketing systems untouched.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.autocorrelation import autocorrelation
from repro.core.timeseries import ActivitySummary, bin_series
from repro.utils.validation import require, require_positive

_BLOCKS = " .:-=+*#%@"


def intensity_strip(
    values: Sequence[float], *, width: int = 64, reduce: str = "mean"
) -> str:
    """Render a series as a fixed-width ASCII intensity strip.

    Values are bucketed down to ``width`` characters (``reduce`` picks
    mean or max per bucket — use max for peaky series like ACFs, whose
    narrow hills would average away) and min-max normalized; an
    all-constant series renders as a flat line of dots.
    """
    require_positive(width, "width")
    require(reduce in ("mean", "max"), "reduce must be 'mean' or 'max'")
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return " " * width
    if array.size > width:
        edges = np.linspace(0, array.size, width + 1).astype(int)
        fold = np.mean if reduce == "mean" else np.max
        array = np.asarray(
            [fold(array[a:b]) if b > a else 0.0
             for a, b in zip(edges[:-1], edges[1:])]
        )
    low, high = float(array.min()), float(array.max())
    if high - low < 1e-12:
        return "." * array.size
    levels = ((array - low) / (high - low) * (len(_BLOCKS) - 1)).round()
    return "".join(_BLOCKS[int(level)] for level in levels)


def activity_strip(
    summary: ActivitySummary, *, width: int = 64, time_scale: Optional[float] = None
) -> str:
    """The pair's request activity over time as an intensity strip.

    A clockwork beacon renders as an even texture; bursty browsing as
    irregular clumps; an outage as a flat gap.  One signal bin per
    display column avoids moire aliasing between the beacon period and
    the bucket width.
    """
    if time_scale is None:
        time_scale = max(summary.time_scale, summary.duration / width or 1.0)
    signal = bin_series(summary.timestamps(), time_scale)
    return intensity_strip(signal, width=width)


def acf_strip(
    summary: ActivitySummary,
    *,
    width: int = 64,
    time_scale: Optional[float] = None,
    max_lag_fraction: float = 0.5,
) -> str:
    """The pair's autocorrelation over lag as an intensity strip.

    Periodic traffic shows as evenly spaced bright columns (the ACF
    hills at multiples of the period); aperiodic traffic decays from
    the left edge and stays dark.
    """
    require(0 < max_lag_fraction <= 1.0, "max_lag_fraction must be in (0, 1]")
    if time_scale is None:
        time_scale = max(summary.time_scale, summary.duration / 4096 or 1.0)
    signal = bin_series(summary.timestamps(), time_scale, binary=True)
    if signal.size < 4:
        return " " * width
    acf = autocorrelation(signal)
    max_lag = max(4, int(acf.size * max_lag_fraction))
    return intensity_strip(
        np.maximum(acf[1:max_lag], 0.0), width=width, reduce="max"
    )


def evidence_panel(summary: ActivitySummary, *, width: int = 64) -> str:
    """A two-row panel: activity over time, ACF over lag."""
    return (
        f"activity |{activity_strip(summary, width=width)}|\n"
        f"acf      |{acf_strip(summary, width=width)}|"
    )
