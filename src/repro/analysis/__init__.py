"""Investigation & verification phase (paper Section VI)."""

from repro.analysis.intel import IntelOracle, perfect_oracle
from repro.analysis.investigate import (
    InvestigationReport,
    Investigator,
    case_feature_vector,
)
from repro.analysis.campaign import Campaign, correlate_campaigns
from repro.analysis.reporting import render_case, render_report
from repro.analysis.viz import (
    acf_strip,
    activity_strip,
    evidence_panel,
    intensity_strip,
)
from repro.analysis.synthetic_eval import (
    EvalResult,
    evaluate_noise_level,
    false_alarm_rate,
    noise_sweep,
    tolerated_sigma,
)

__all__ = [
    "IntelOracle",
    "perfect_oracle",
    "InvestigationReport",
    "Investigator",
    "case_feature_vector",
    "Campaign",
    "correlate_campaigns",
    "render_case",
    "render_report",
    "acf_strip",
    "activity_strip",
    "evidence_panel",
    "intensity_strip",
    "EvalResult",
    "evaluate_noise_level",
    "false_alarm_rate",
    "noise_sweep",
    "tolerated_sigma",
]
