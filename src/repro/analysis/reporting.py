"""Analyst-facing case reports.

The output of BAYWATCH is consumed by human analysts (paper phase (d)):
each reported case needs its evidence laid out — the periods and their
strength, the interval behaviour, the domain-name verdict, how many
other hosts talk to the destination — so the analyst can triage without
re-deriving anything.  :func:`render_case` produces that summary as
plain text; :func:`render_report` renders a whole pipeline run.
"""

from __future__ import annotations

import io
from typing import Iterable, Optional

from repro.filtering.case import BeaconingCase
from repro.filtering.pipeline import PipelineReport
from repro.ml.features import symbolize_intervals
from repro.utils.stats import shannon_entropy


def _verdict_line(case: BeaconingCase) -> str:
    hints = []
    if case.lm_score < -2.2:
        hints.append("DGA-like domain name")
    if case.similar_sources > 1:
        hints.append(f"{case.similar_sources} internal hosts affected")
    if case.popularity < 0.02:
        hints.append("rare destination")
    dominant = case.detection.dominant
    if dominant is not None and dominant.acf_score > 0.5:
        hints.append("strong clockwork periodicity")
    return "; ".join(hints) if hints else "no aggravating indicators"


def render_case(
    case: BeaconingCase,
    *,
    rank: Optional[int] = None,
    show_evidence_panel: bool = False,
) -> str:
    """One case as a multi-line analyst summary.

    ``show_evidence_panel`` appends ASCII strips of the pair's activity
    and autocorrelation (see :mod:`repro.analysis.viz`).
    """
    out = io.StringIO()
    title = f"case: {case.source} -> {case.destination}"
    if rank is not None:
        title = f"#{rank} " + title
    out.write(title + "\n")
    out.write("-" * len(title) + "\n")
    out.write(
        f"observed:   {case.summary.event_count} requests over "
        f"{case.detection.duration / 3600:.1f} h "
        f"(analysis scales: {', '.join(f'{s:.0f}s' for s in case.detection.scales)})\n"
    )
    for candidate in case.detection.candidates:
        out.write(
            f"period:     {candidate.period:.1f} s "
            f"(ACF {candidate.acf_score:.2f}, power {candidate.power:.1f}, "
            f"t-test p {candidate.p_value:.2f}, via {candidate.origin})\n"
        )
    symbols = symbolize_intervals(
        case.summary.intervals, list(case.periods)
    )
    out.write(
        f"intervals:  symbolized entropy {shannon_entropy(symbols):.2f} bits"
        f" ({symbols[:40]}{'...' if len(symbols) > 40 else ''})\n"
    )
    out.write(
        f"domain:     LM score {case.lm_score:.2f}/char, "
        f"popularity {case.popularity:.3f} "
        f"({case.similar_sources} distinct sources)\n"
    )
    if case.summary.urls:
        sample = ", ".join(sorted(set(case.summary.urls))[:3])
        out.write(f"urls:       {sample}\n")
    out.write(f"rank score: {case.rank_score:.2f}\n")
    out.write(f"indicators: {_verdict_line(case)}\n")
    if show_evidence_panel:
        from repro.analysis.viz import evidence_panel

        out.write(evidence_panel(case.summary))
        out.write("\n")
    return out.getvalue()


def render_report(
    report: PipelineReport,
    *,
    max_cases: int = 20,
    include_funnel: bool = True,
) -> str:
    """A whole pipeline run as an analyst hand-off document."""
    out = io.StringIO()
    out.write("BAYWATCH daily report\n")
    out.write("=====================\n")
    out.write(
        f"population: {report.population_size} sources; "
        f"{len(report.detected_cases)} periodic cases detected; "
        f"{len(report.ranked_cases)} reported after triage\n\n"
    )
    if include_funnel:
        out.write(report.funnel.as_text())
        out.write("\n\n")
    for rank, case in enumerate(report.ranked_cases[:max_cases], 1):
        out.write(render_case(case, rank=rank))
        out.write("\n")
    remaining = len(report.ranked_cases) - max_cases
    if remaining > 0:
        out.write(f"... and {remaining} further cases\n")
    return out.getvalue()
