"""Threat-intelligence oracle — the VirusTotal stand-in.

The paper constructs ground truth by querying VirusTotal: a destination
is labelled malicious when *any* anti-virus engine flags it.  Our
deterministic oracle answers from the traffic generator's ground truth,
with two configurable imperfections that model real intel coverage:

- ``coverage``: the probability a truly malicious destination is known
  to the intel source at all (fresh DGA domains often are not),
- ``false_flag_rate``: the probability a benign destination is wrongly
  flagged (over-aggressive engines do exist).

Both imperfections are deterministic per destination (seeded hash), so
repeated lookups agree and experiments reproduce.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Optional, Set

from repro.synthetic.enterprise import GroundTruth
from repro.utils.validation import require_probability


class IntelOracle:
    """Deterministic VirusTotal-like lookups over simulator ground truth."""

    def __init__(
        self,
        truth: GroundTruth,
        *,
        coverage: float = 1.0,
        false_flag_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        require_probability(coverage, "coverage")
        require_probability(false_flag_rate, "false_flag_rate")
        self.truth = truth
        self.coverage = coverage
        self.false_flag_rate = false_flag_rate
        self.seed = seed
        self.queries = 0
        self._extra_malicious: Set[str] = set()

    def _stable_unit(self, destination: str) -> float:
        """Deterministic pseudo-uniform value in [0, 1) per destination."""
        digest = zlib.crc32(f"{self.seed}:{destination}".encode("utf-8"))
        return (digest & 0xFFFFFFFF) / 2**32

    def add_feed(self, destinations: Iterable[str]) -> None:
        """Merge an external blocklist feed into the oracle."""
        self._extra_malicious.update(destinations)

    def is_malicious(self, destination: str) -> bool:
        """The oracle's verdict for one destination."""
        self.queries += 1
        if destination in self._extra_malicious:
            return True
        unit = self._stable_unit(destination)
        if destination in self.truth.malicious_destinations:
            return unit < self.coverage
        return unit < self.false_flag_rate

    def label(self, destination: str) -> int:
        """1 = malicious, 0 = benign (classifier label convention)."""
        return 1 if self.is_malicious(destination) else 0


def perfect_oracle(truth: GroundTruth) -> IntelOracle:
    """An oracle with full coverage and no false flags."""
    return IntelOracle(truth, coverage=1.0, false_flag_rate=0.0)
