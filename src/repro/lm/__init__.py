"""Domain-name language modelling (paper Section V-C).

A character 3-gram model with interpolated Kneser-Ney smoothing, trained
on a popular-domain corpus, scores candidate destinations: DGA-generated
names receive sharply lower log-probabilities than human-chosen ones.
"""

from repro.lm.ngram import NgramLanguageModel
from repro.lm.corpus import POPULAR_DOMAINS, expand_corpus, training_corpus
from repro.lm.domains import DomainScorer, default_scorer, registered_domain

__all__ = [
    "NgramLanguageModel",
    "POPULAR_DOMAINS",
    "expand_corpus",
    "training_corpus",
    "DomainScorer",
    "default_scorer",
    "registered_domain",
]
