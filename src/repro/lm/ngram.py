"""Character n-gram language model with interpolated Kneser-Ney smoothing.

BAYWATCH trains a 3-gram model over popular domain names and scores each
candidate destination: algorithmically generated (DGA) names combine
characters that rarely co-occur in human-chosen names and receive very
low log-probabilities (paper Section V-C; Kneser-Ney smoothing is used
for previously unseen n-grams, footnote 3).

The model is order-recursive interpolated Kneser-Ney:

``P(c | h) = max(count(hc) - D, 0) / count(h.)
           + D * distinct(h.) / count(h.) * P(c | h')``

where ``h'`` drops the oldest history character; the unigram base case
uses continuation counts, falling back to a uniform distribution over
the alphabet for characters never seen at all.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, Tuple

from repro.utils.validation import require, require_in_range

_START = "\x02"
_END = "\x03"
_MIN_PROB = 1e-12


class NgramLanguageModel:
    """An order-``n`` character language model over short strings."""

    def __init__(self, order: int = 3, discount: float = 0.75) -> None:
        require(order >= 2, "order must be at least 2")
        require_in_range(discount, "discount", 0.0, 1.0, inclusive=False)
        self.order = order
        self.discount = discount
        # counts[k][(history, char)] and totals[k][history] for k-grams,
        # k = 1..order (history length k-1).
        self._counts: Tuple[Dict[Tuple[str, str], int], ...] = tuple(
            defaultdict(int) for _ in range(order)
        )
        self._totals: Tuple[Dict[str, int], ...] = tuple(
            defaultdict(int) for _ in range(order)
        )
        self._distinct: Tuple[Dict[str, int], ...] = tuple(
            defaultdict(int) for _ in range(order)
        )
        # Continuation counts for the unigram base case.
        self._continuation: Dict[str, set] = defaultdict(set)
        self._alphabet: set = set()
        self._trained = False

    # -- training ------------------------------------------------------------

    def fit(self, corpus: Iterable[str]) -> "NgramLanguageModel":
        """Count n-grams over the corpus; returns self for chaining."""
        n_items = 0
        for text in corpus:
            if not text:
                continue
            n_items += 1
            padded = _START * (self.order - 1) + text.lower() + _END
            self._alphabet.update(padded)
            for pos in range(self.order - 1, len(padded)):
                char = padded[pos]
                for k in range(1, self.order + 1):
                    history = padded[pos - k + 1 : pos]
                    key = (history, char)
                    level = self._counts[k - 1]
                    if key not in level:
                        self._distinct[k - 1][history] += 1
                    level[key] += 1
                    self._totals[k - 1][history] += 1
                if pos >= 1:
                    self._continuation[char].add(padded[pos - 1])
        require(n_items > 0, "corpus must contain at least one non-empty string")
        self._trained = True
        return self

    # -- scoring ---------------------------------------------------------------

    def probability(self, char: str, history: str) -> float:
        """Smoothed ``P(char | history)`` (history may be any length)."""
        require(self._trained, "model must be fitted before scoring")
        history = history[-(self.order - 1):] if self.order > 1 else ""
        return max(self._kn_probability(char, history), _MIN_PROB)

    def _kn_probability(self, char: str, history: str) -> float:
        k = len(history) + 1
        if k == 1:
            # Continuation-count unigram with uniform fallback.
            total_continuations = sum(
                len(preds) for preds in self._continuation.values()
            )
            if total_continuations == 0:
                return 1.0 / max(len(self._alphabet), 1)
            cont = len(self._continuation.get(char, ()))
            uniform = 1.0 / max(len(self._alphabet) + 1, 1)
            # Reserve a sliver of mass for truly unseen characters.
            lam = 0.1
            return (1 - lam) * cont / total_continuations + lam * uniform
        level = k - 1
        total = self._totals[level].get(history, 0)
        backoff = self._kn_probability(char, history[1:])
        if total == 0:
            return backoff
        count = self._counts[level].get((history, char), 0)
        distinct = self._distinct[level].get(history, 0)
        discounted = max(count - self.discount, 0.0) / total
        lam = self.discount * distinct / total
        return discounted + lam * backoff

    def log_score(self, text: str) -> float:
        """``log10 P(text)`` under the model (lower = more anomalous)."""
        require(self._trained, "model must be fitted before scoring")
        require(len(text) > 0, "text must not be empty")
        padded = _START * (self.order - 1) + text.lower() + _END
        score = 0.0
        for pos in range(self.order - 1, len(padded)):
            history = padded[pos - self.order + 1 : pos]
            score += math.log10(self.probability(padded[pos], history))
        return score

    def normalized_score(self, text: str) -> float:
        """Length-normalized log score (log10 probability per transition).

        Long strings accumulate large negative totals regardless of how
        natural they look; normalizing by the number of scored
        transitions makes strings of different lengths comparable.
        """
        return self.log_score(text) / (len(text) + 1)

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct characters observed during training."""
        return len(self._alphabet)
