"""Domain-name scoring for DGA detection (paper Section V-C).

:class:`DomainScorer` wraps the Kneser-Ney n-gram model with the
domain-specific plumbing: a default training corpus, sub-domain
stripping (the registrable part carries the DGA signal — the paper's
``cdn.5f75b1c54f8[..]2d4.com`` hides the blob in the registered label),
and a calibrated anomaly verdict.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, List, Optional, Tuple

from repro.lm.corpus import training_corpus
from repro.lm.ngram import NgramLanguageModel
from repro.utils.validation import require

#: Multi-label public suffixes we recognize when extracting the
#: registrable domain (a small practical subset).
_MULTI_SUFFIXES = (
    "co.uk", "ac.uk", "gov.uk", "org.uk", "com.au", "net.au", "org.au",
    "co.jp", "ne.jp", "or.jp", "com.cn", "net.cn", "org.cn", "com.br",
    "com.mx", "co.in", "co.kr", "co.za",
)


def registered_domain(hostname: str) -> str:
    """The registrable part of ``hostname`` (label + public suffix).

    ``cdn.5f75b1c54f82d4.com`` -> ``5f75b1c54f82d4.com``;
    ``www.example.co.uk`` -> ``example.co.uk``.  Inputs that are already
    registrable (or bare labels / IP addresses) pass through unchanged.
    """
    require(len(hostname) > 0, "hostname must not be empty")
    hostname = hostname.strip().strip(".").lower()
    labels = hostname.split(".")
    if len(labels) <= 2:
        return hostname
    if all(label.isdigit() for label in labels):
        return hostname  # IPv4 literal
    for suffix in _MULTI_SUFFIXES:
        if hostname.endswith("." + suffix):
            n_suffix = suffix.count(".") + 1
            return ".".join(labels[-(n_suffix + 1):])
    return ".".join(labels[-2:])


class DomainScorer:
    """Score domain names under a popular-domain language model.

    ``score`` mirrors the paper's ``S = log P(D)``: the paper reports
    google.com at about -7.4 and a 22-character DGA at about -45.  The
    absolute values depend on the corpus; what the pipeline consumes is
    the *normalized* score (per character transition) and the large gap
    between human-chosen and algorithmic names.
    """

    def __init__(
        self,
        corpus: Optional[Iterable[str]] = None,
        *,
        order: int = 3,
        strip_subdomains: bool = True,
    ) -> None:
        self.model = NgramLanguageModel(order=order)
        if corpus is None:
            corpus = training_corpus()
        self.model.fit(corpus)
        self.strip_subdomains = strip_subdomains

    def _target(self, domain: str) -> str:
        return registered_domain(domain) if self.strip_subdomains else domain.lower()

    def score(self, domain: str) -> float:
        """``log10 P(domain)``; lower = more DGA-like."""
        return self.model.log_score(self._target(domain))

    def normalized_score(self, domain: str) -> float:
        """Per-transition log score; comparable across lengths."""
        return self.model.normalized_score(self._target(domain))

    def score_many(self, domains: Iterable[str]) -> List[Tuple[str, float]]:
        """Score a batch; returns (domain, normalized_score), lowest first."""
        scored = [(d, self.normalized_score(d)) for d in domains]
        scored.sort(key=lambda item: item[1])
        return scored

    def is_suspicious(self, domain: str, threshold: float = -2.2) -> bool:
        """Anomaly verdict on the normalized score.

        The default threshold sits between the benign corpus (typically
        above -2) and random-character DGA names (typically below -2.5);
        calibrate per deployment with :meth:`calibrate_threshold`.
        """
        return self.normalized_score(domain) < threshold

    def calibrate_threshold(
        self,
        benign_sample: Iterable[str],
        *,
        target_fpr: float = 0.001,
    ) -> float:
        """A suspicion threshold hitting ``target_fpr`` on benign names.

        Scores the benign sample and returns the quantile below which
        only a ``target_fpr`` fraction of benign names fall — use the
        deployment's own observed destinations as the sample so the
        threshold adapts to local naming conventions.
        """
        import numpy as np

        from repro.utils.validation import require, require_probability

        require_probability(target_fpr, "target_fpr")
        scores = [self.normalized_score(d) for d in benign_sample]
        require(len(scores) >= 10, "need at least 10 benign samples")
        return float(np.quantile(scores, target_fpr))


@lru_cache(maxsize=1)
def default_scorer() -> DomainScorer:
    """A process-wide scorer trained on the bundled corpus (cached)."""
    return DomainScorer()
