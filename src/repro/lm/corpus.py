"""Popular-domain training corpus.

The paper trains its 3-gram model on the Alexa top 1 million domain
names, which is no longer distributed.  We substitute a deterministic
corpus built from (a) a few hundred globally popular real domain names
and (b) a systematic expansion composing common English words into
plausible domain names — enough data for a 3-gram model to learn which
character transitions occur in human-chosen names.  The qualitative
property the pipeline relies on is preserved: English-like names score
orders of magnitude higher than random-character DGA names.
"""

from __future__ import annotations

from typing import List

from repro.utils.validation import require

#: A sample of globally popular, human-chosen domain names.
POPULAR_DOMAINS: tuple = (
    "google.com", "youtube.com", "facebook.com", "wikipedia.org",
    "twitter.com", "instagram.com", "amazon.com", "yahoo.com",
    "reddit.com", "netflix.com", "linkedin.com", "microsoft.com",
    "apple.com", "bing.com", "ebay.com", "pinterest.com",
    "wordpress.com", "tumblr.com", "paypal.com", "blogspot.com",
    "imgur.com", "stackoverflow.com", "adobe.com", "dropbox.com",
    "github.com", "bbc.com", "cnn.com", "nytimes.com",
    "theguardian.com", "washingtonpost.com", "forbes.com", "bloomberg.com",
    "reuters.com", "wsj.com", "usatoday.com", "espn.com",
    "weather.com", "accuweather.com", "booking.com", "tripadvisor.com",
    "expedia.com", "airbnb.com", "uber.com", "spotify.com",
    "soundcloud.com", "vimeo.com", "twitch.tv", "dailymotion.com",
    "flickr.com", "shutterstock.com", "gettyimages.com", "walmart.com",
    "target.com", "bestbuy.com", "homedepot.com", "costco.com",
    "aliexpress.com", "alibaba.com", "etsy.com", "wayfair.com",
    "zillow.com", "realtor.com", "craigslist.org", "indeed.com",
    "glassdoor.com", "monster.com", "salesforce.com", "oracle.com",
    "ibm.com", "intel.com", "nvidia.com", "amd.com",
    "dell.com", "hp.com", "lenovo.com", "samsung.com",
    "sony.com", "lg.com", "panasonic.com", "toshiba.com",
    "cisco.com", "vmware.com", "redhat.com", "ubuntu.com",
    "debian.org", "python.org", "java.com", "php.net",
    "mysql.com", "postgresql.org", "mongodb.com", "redis.io",
    "docker.com", "kubernetes.io", "gitlab.com", "bitbucket.org",
    "sourceforge.net", "slashdot.org", "wired.com", "techcrunch.com",
    "engadget.com", "arstechnica.com", "theverge.com", "cnet.com",
    "zdnet.com", "pcmag.com", "tomshardware.com", "anandtech.com",
    "gsmarena.com", "xda-developers.com", "androidcentral.com", "imore.com",
    "macrumors.com", "9to5mac.com", "appleinsider.com", "windowscentral.com",
    "howtogeek.com", "lifehacker.com", "makeuseof.com", "digitaltrends.com",
    "gizmodo.com", "kotaku.com", "polygon.com", "ign.com",
    "gamespot.com", "steampowered.com", "epicgames.com", "riotgames.com",
    "blizzard.com", "ea.com", "ubisoft.com", "nintendo.com",
    "playstation.com", "xbox.com", "minecraft.net", "roblox.com",
    "chess.com", "duolingo.com", "coursera.org", "udemy.com",
    "edx.org", "khanacademy.org", "mit.edu", "stanford.edu",
    "harvard.edu", "berkeley.edu", "cornell.edu", "princeton.edu",
    "yale.edu", "columbia.edu", "ox.ac.uk", "cam.ac.uk",
    "nature.com", "sciencemag.org", "ieee.org", "acm.org",
    "arxiv.org", "researchgate.net", "springer.com", "elsevier.com",
    "wiley.com", "jstor.org", "scholar.google.com", "pubmed.gov",
    "nih.gov", "cdc.gov", "who.int", "un.org",
    "europa.eu", "gov.uk", "irs.gov", "usps.com",
    "fedex.com", "ups.com", "dhl.com", "chase.com",
    "bankofamerica.com", "wellsfargo.com", "citibank.com", "hsbc.com",
    "barclays.com", "americanexpress.com", "visa.com", "mastercard.com",
    "fidelity.com", "vanguard.com", "schwab.com", "robinhood.com",
    "coinbase.com", "binance.com", "kraken.com", "etrade.com",
    "mint.com", "turbotax.com", "hrblock.com", "quickbooks.com",
    "xero.com", "zendesk.com", "freshdesk.com", "intercom.com",
    "hubspot.com", "mailchimp.com", "constantcontact.com", "sendgrid.com",
    "twilio.com", "stripe.com", "squareup.com", "shopify.com",
    "bigcommerce.com", "magento.com", "woocommerce.com", "wix.com",
    "squarespace.com", "godaddy.com", "namecheap.com", "cloudflare.com",
    "akamai.com", "fastly.com", "digitalocean.com", "linode.com",
    "heroku.com", "netlify.com", "vercel.com", "firebase.google.com",
    "azure.microsoft.com", "aws.amazon.com", "slack.com", "zoom.us",
    "skype.com", "discord.com", "telegram.org", "whatsapp.com",
    "signal.org", "viber.com", "wechat.com", "line.me",
    "snapchat.com", "tiktok.com", "vk.com", "weibo.com",
    "baidu.com", "qq.com", "taobao.com", "jd.com",
    "rakuten.com", "yandex.ru", "mail.ru", "naver.com",
    "daum.net", "nicovideo.jp", "pixiv.net", "flipkart.com",
    "snapdeal.com", "myntra.com", "zomato.com", "swiggy.com",
    "grubhub.com", "doordash.com", "ubereats.com", "instacart.com",
    "postmates.com", "deliveroo.com", "opentable.com", "yelp.com",
    "foursquare.com", "groupon.com", "livingsocial.com", "ticketmaster.com",
    "stubhub.com", "eventbrite.com", "meetup.com", "patreon.com",
    "kickstarter.com", "indiegogo.com", "gofundme.com", "change.org",
    "surveymonkey.com", "typeform.com", "doodle.com", "calendly.com",
    "evernote.com", "notion.so", "trello.com", "asana.com",
    "monday.com", "airtable.com", "basecamp.com", "atlassian.com",
    "medium.com", "substack.com", "quora.com", "stackexchange.com",
    "wikihow.com", "britannica.com", "dictionary.com", "thesaurus.com",
    "merriam-webster.com", "translate.google.com", "deepl.com", "grammarly.com",
    "goodreads.com", "audible.com", "scribd.com", "archive.org",
    "gutenberg.org", "imdb.com", "rottentomatoes.com", "metacritic.com",
    "fandango.com", "hulu.com", "disneyplus.com", "hbomax.com",
    "peacocktv.com", "paramountplus.com", "crunchyroll.com", "funimation.com",
    "pandora.com", "iheart.com", "tunein.com", "bandcamp.com",
    "last.fm", "genius.com", "billboard.com", "rollingstone.com",
    "pitchfork.com", "nme.com", "mtv.com", "vh1.com",
    "nba.com", "nfl.com", "mlb.com", "nhl.com",
    "fifa.com", "uefa.com", "skysports.com", "goal.com",
    "bleacherreport.com", "cbssports.com", "foxsports.com", "nbcsports.com",
    "ausopen.com", "wimbledon.com", "rolandgarros.com", "usopen.org",
    "olympics.com", "espncricinfo.com", "cricbuzz.com", "formula1.com",
    "nascar.com", "motogp.com", "golfdigest.com", "pgatour.com",
    "runnersworld.com", "bodybuilding.com", "myfitnesspal.com", "fitbit.com",
    "strava.com", "garmin.com", "allrecipes.com", "foodnetwork.com",
    "epicurious.com", "seriouseats.com", "bonappetit.com", "tasty.co",
    "delish.com", "cooking.nytimes.com", "webmd.com", "mayoclinic.org",
    "healthline.com", "medlineplus.gov", "drugs.com", "goodrx.com",
    "zocdoc.com", "teladoc.com", "psychologytoday.com", "verywellmind.com",
    "investopedia.com", "nerdwallet.com", "bankrate.com", "creditkarma.com",
    "experian.com", "equifax.com", "transunion.com", "kbb.com",
    "edmunds.com", "caranddriver.com", "motortrend.com", "autotrader.com",
    "cars.com", "carmax.com", "carvana.com", "tesla.com",
    "ford.com", "toyota.com", "honda.com", "bmw.com",
    "mercedes-benz.com", "audi.com", "volkswagen.com", "nissanusa.com",
    "hyundai.com", "kia.com", "subaru.com", "mazda.com",
)

#: Common English words used to compose additional plausible domains.
_WORDS: tuple = (
    "able", "access", "account", "active", "air", "all", "app", "art",
    "auto", "baby", "back", "bank", "base", "bay", "beach", "best",
    "big", "bike", "bit", "black", "blog", "blue", "board", "book",
    "box", "brain", "brand", "bright", "build", "business", "buy", "cafe",
    "call", "camp", "car", "card", "care", "cart", "case", "cash",
    "cast", "cat", "center", "chat", "check", "chef", "city", "class",
    "clean", "clear", "click", "client", "climb", "cloud", "club", "coach",
    "code", "coffee", "coin", "color", "connect", "cook", "cool", "core",
    "corner", "craft", "create", "crew", "cross", "crowd", "cube", "cup",
    "cut", "daily", "dance", "dash", "data", "day", "deal", "deep",
    "design", "desk", "dev", "digital", "direct", "dish", "doc", "dog",
    "door", "dot", "draft", "dream", "drive", "drop", "earth", "easy",
    "eat", "edge", "edit", "energy", "engine", "event", "expert", "express",
    "eye", "face", "fact", "family", "fan", "farm", "fast", "feed",
    "field", "file", "film", "find", "fine", "fire", "first", "fish",
    "fit", "five", "flash", "flat", "flex", "flight", "flow", "fly",
    "focus", "folk", "food", "force", "forest", "form", "forum", "four",
    "fox", "frame", "free", "fresh", "friend", "fun", "fund", "future",
    "game", "garden", "gate", "gear", "gem", "gift", "give", "glass",
    "globe", "goal", "gold", "golf", "good", "grand", "graph", "great",
    "green", "grid", "group", "grow", "guide", "hand", "happy", "head",
    "heart", "help", "hero", "high", "hill", "hive", "holiday", "home",
    "hook", "hope", "host", "hot", "house", "hub", "idea", "image",
    "inbox", "info", "ink", "inn", "insight", "instant", "iron", "island",
    "jet", "job", "join", "joy", "jump", "just", "key", "kid",
    "kind", "king", "kit", "kitchen", "lab", "lake", "land", "lane",
    "large", "last", "launch", "law", "lead", "leaf", "learn", "lens",
    "level", "life", "light", "like", "line", "link", "lion", "list",
    "little", "live", "local", "lock", "log", "logic", "long", "look",
    "loop", "love", "magic", "mail", "main", "make", "map", "mark",
    "market", "master", "match", "mate", "max", "media", "meet", "mega",
    "memo", "menu", "merge", "metro", "micro", "mind", "mine", "mini",
    "mint", "mix", "mobile", "mode", "model", "modern", "moon", "more",
    "motion", "mountain", "move", "movie", "music", "name", "nation", "native",
    "nest", "net", "new", "news", "next", "nice", "night", "node",
    "north", "note", "now", "ocean", "offer", "office", "one", "open",
    "orbit", "order", "page", "paint", "pal", "panel", "paper", "park",
    "part", "pass", "path", "pay", "peak", "pen", "people", "pet",
    "phone", "photo", "pick", "pilot", "pin", "pixel", "place", "plan",
    "planet", "plant", "play", "plus", "pocket", "point", "pool", "pop",
    "port", "post", "power", "press", "prime", "print", "pro", "pulse",
    "pure", "push", "quest", "quick", "radio", "rain", "ranch", "range",
    "rank", "rapid", "reach", "read", "ready", "real", "record", "red",
    "rent", "report", "rest", "ride", "right", "ring", "rise", "river",
    "road", "rock", "room", "root", "rose", "round", "route", "run",
    "safe", "sail", "sale", "salt", "save", "scale", "scan", "school",
    "score", "scout", "screen", "sea", "search", "seat", "second", "secure",
    "seed", "sell", "send", "sense", "serve", "set", "seven", "shape",
    "share", "sharp", "shelf", "shift", "shine", "ship", "shop", "short",
    "shot", "show", "side", "sign", "silver", "simple", "site", "six",
    "size", "sky", "sleep", "slice", "smart", "smile", "snap", "snow",
    "social", "soft", "solar", "solid", "solve", "song", "sound", "source",
    "south", "space", "spark", "speed", "spin", "sport", "spot", "spring",
    "square", "stack", "staff", "stage", "star", "start", "state", "station",
    "stay", "steel", "step", "stock", "stone", "stop", "store", "storm",
    "story", "stream", "street", "strong", "studio", "study", "style", "sugar",
    "summit", "sun", "super", "sure", "surf", "sweet", "swift", "table",
    "tag", "take", "talk", "tap", "task", "taste", "team", "tech",
    "ten", "term", "test", "text", "theme", "think", "three", "tide",
    "tiger", "time", "tiny", "tip", "today", "tool", "top", "total",
    "touch", "tour", "town", "track", "trade", "trail", "train", "travel",
    "tree", "trend", "trip", "true", "trust", "turbo", "turn", "twin",
    "two", "ultra", "union", "unit", "up", "urban", "use", "user",
    "value", "vault", "verse", "video", "view", "village", "vine", "vision",
    "visit", "vista", "vital", "voice", "wall", "watch", "water", "wave",
    "way", "web", "well", "west", "wide", "wild", "win", "wind",
    "window", "wing", "wire", "wise", "wish", "wolf", "wood", "word",
    "work", "world", "yard", "year", "yellow", "yes", "zen", "zero",
    "zone", "zoom",
)

_EXPANSION_TLDS = (".com", ".net", ".org", ".io", ".co")


def expand_corpus(target_size: int = 20_000) -> List[str]:
    """Compose English words into a deterministic synthetic corpus.

    Pairs of common words (plus single words) are joined into plausible
    domain names (``cloudkitchen.com``, ``fasttrack.net``...), cycling
    deterministically through word pairs and TLDs until ``target_size``
    names exist.  No randomness: the same corpus is produced everywhere.
    """
    require(target_size >= 1, "target_size must be positive")
    corpus: List[str] = []
    n_words = len(_WORDS)
    # Single words first, then pairs in a fixed stride pattern.
    for index, word in enumerate(_WORDS):
        corpus.append(word + _EXPANSION_TLDS[index % len(_EXPANSION_TLDS)])
        if len(corpus) >= target_size:
            return corpus
    stride = 7  # co-prime with the word count to spread pairings widely
    pair_index = 0
    while len(corpus) < target_size:
        first = _WORDS[pair_index % n_words]
        second = _WORDS[(pair_index * stride + pair_index // n_words) % n_words]
        tld = _EXPANSION_TLDS[pair_index % len(_EXPANSION_TLDS)]
        if first != second:
            corpus.append(first + second + tld)
        pair_index += 1
    return corpus


def training_corpus(expanded_size: int = 20_000) -> List[str]:
    """The full LM training corpus: real popular domains + expansion."""
    return list(POPULAR_DOMAINS) + expand_corpus(expanded_size)
