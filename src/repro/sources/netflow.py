"""NetFlow source (paper Section X).

NetFlow "only provides connection level information, i.e., no domain
names or additional content information": the communication pair is
(source IP, destination IP:port), the token filter has no URLs to look
at, and the language-model indicator does not apply — rank with
``RankingWeights(lm=0, lm_extreme_bonus=0)``.

- :class:`NetflowRecord` — one flow record,
- :func:`netflow_records_to_summaries` — per-pair summaries keyed by
  ``dst_ip:dst_port``,
- :func:`netflow_view_of_proxy` — derive a flow view from a proxy-log
  trace through a deterministic domain -> IP resolution.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.timeseries import ActivitySummary
from repro.sources.proxy import ProxyLogRecord
from repro.utils.validation import require


@dataclass(frozen=True)
class NetflowRecord:
    """One (unidirectional) flow record."""

    timestamp: float
    src_ip: str
    dst_ip: str
    dst_port: int = 443
    protocol: str = "tcp"
    bytes_sent: int = 0
    packets: int = 1

    def to_line(self) -> str:
        """Serialize to a tab-separated log line."""
        return "\t".join(
            (
                f"{self.timestamp:.3f}", self.src_ip, self.dst_ip,
                str(self.dst_port), self.protocol,
                str(self.bytes_sent), str(self.packets),
            )
        )

    @classmethod
    def from_line(cls, line: str) -> "NetflowRecord":
        """Parse a tab-separated log line."""
        parts = line.rstrip("\n").split("\t")
        require(len(parts) == 7, f"malformed NetFlow line: {line!r}")
        return cls(
            timestamp=float(parts[0]),
            src_ip=parts[1],
            dst_ip=parts[2],
            dst_port=int(parts[3]),
            protocol=parts[4],
            bytes_sent=int(parts[5]),
            packets=int(parts[6]),
        )

    @property
    def destination(self) -> str:
        """The pair's destination endpoint, ``ip:port``."""
        return f"{self.dst_ip}:{self.dst_port}"


def netflow_records_to_summaries(
    records: Iterable[NetflowRecord],
    *,
    time_scale: float = 1.0,
) -> List[ActivitySummary]:
    """Group flows into per-(src_ip, dst_ip:port) activity summaries."""
    grouped: Dict[Tuple[str, str], List[float]] = {}
    for record in records:
        grouped.setdefault(
            (record.src_ip, record.destination), []
        ).append(record.timestamp)
    summaries = [
        ActivitySummary.from_timestamps(
            src, dst, timestamps, time_scale=time_scale
        )
        for (src, dst), timestamps in grouped.items()
    ]
    summaries.sort(key=lambda s: s.pair)
    return summaries


def resolve_domain(domain: str, *, subnet: str = "203.0.113") -> str:
    """Deterministic fake resolution of a domain to a test-net IP.

    Stable across processes (CRC-based), so the same domain always maps
    to the same address — enough to correlate a flow view with its
    proxy view in experiments.
    """
    digest = zlib.crc32(domain.lower().encode("utf-8"))
    return f"{subnet}.{digest % 254 + 1}"


def netflow_view_of_proxy(
    records: Iterable[ProxyLogRecord],
    *,
    dst_port: int = 443,
) -> List[NetflowRecord]:
    """The flow-collector view of a proxy-log trace.

    Every request becomes one flow from the client's IP to the
    deterministically resolved destination IP; domain names and URLs are
    lost, exactly as with real NetFlow.
    """
    out = [
        NetflowRecord(
            timestamp=record.timestamp,
            src_ip=record.source_ip,
            dst_ip=resolve_domain(record.destination),
            dst_port=dst_port,
            bytes_sent=record.bytes_sent,
        )
        for record in records
    ]
    out.sort(key=lambda r: (r.timestamp, r.src_ip, r.dst_ip))
    return out
